"""repro — reproduction of "Is In-Context Learning Feasible for HPC
Performance Autotuning?" (IPPS 2025).

The package is organized by subsystem (see DESIGN.md for the full map):

* :mod:`repro.dataset` — the syr2k configuration space and performance data;
* :mod:`repro.gbt` — from-scratch gradient-boosted trees (XGBoost stand-in);
* :mod:`repro.llm` — tokenizer, surrogate LM with full logit access,
  generation engine;
* :mod:`repro.prompts` — LLAMBO-style prompt construction and parsing;
* :mod:`repro.core` — the discriminative-surrogate experiment pipeline;
* :mod:`repro.serve` — batched, cached surrogate-inference serving;
* :mod:`repro.analysis` — metrics, decoding-tree enumeration, haystack
  search, copy/prefix analyses;
* :mod:`repro.tuning` — classic autotuners plus the LLM candidate sampler.

Quickstart::

    from repro import generate_dataset, DiscriminativeSurrogate, Syr2kTask

    ds = generate_dataset("SM")
    surrogate = DiscriminativeSurrogate(Syr2kTask("SM"))
    examples = [(ds.config(i), float(ds.runtimes[i])) for i in range(10)]
    pred = surrogate.predict(examples, ds.config(42), seed=1)
    print(pred.value, "vs truth", ds.runtimes[42])
"""

from repro.analysis import (
    HaystackReport,
    aggregate_metric,
    enumerate_value_decodings,
    mare,
    msre,
    needle_fractions,
    r2_score,
    score_predictions,
    token_position_table,
)
from repro.core import (
    DiscriminativeSurrogate,
    ExperimentSpec,
    build_report,
    paper_grid,
    quick_grid,
    run_grid,
)
from repro.dataset import (
    ConfigSpace,
    PerformanceDataset,
    Syr2kPerformanceModel,
    Syr2kTask,
    generate_dataset,
    syr2k_space,
)
from repro.errors import ReproError
from repro.gbt import (
    FeatureEncoder,
    GradientBoostingRegressor,
    RandomizedSearch,
    TargetTransform,
)
from repro.llm import (
    GenerationEngine,
    LMConfig,
    SamplingParams,
    SurrogateLM,
    Tokenizer,
)
from repro.prompts import PromptBuilder, extract_prediction
from repro.serve import PredictionService, Request, Response, ServiceStats
from repro.tuning import (
    BayesianOptTuner,
    HillClimbTuner,
    LLMCandidateTuner,
    RandomSearchTuner,
    compare_tuners,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # dataset
    "ConfigSpace",
    "Syr2kTask",
    "syr2k_space",
    "Syr2kPerformanceModel",
    "PerformanceDataset",
    "generate_dataset",
    # gbt
    "FeatureEncoder",
    "TargetTransform",
    "GradientBoostingRegressor",
    "RandomizedSearch",
    # llm
    "Tokenizer",
    "SurrogateLM",
    "LMConfig",
    "SamplingParams",
    "GenerationEngine",
    # prompts
    "PromptBuilder",
    "extract_prediction",
    # core
    "DiscriminativeSurrogate",
    "ExperimentSpec",
    "paper_grid",
    "quick_grid",
    "run_grid",
    "build_report",
    # serve
    "PredictionService",
    "Request",
    "Response",
    "ServiceStats",
    # analysis
    "score_predictions",
    "r2_score",
    "mare",
    "msre",
    "aggregate_metric",
    "enumerate_value_decodings",
    "token_position_table",
    "needle_fractions",
    "HaystackReport",
    # tuning
    "RandomSearchTuner",
    "HillClimbTuner",
    "BayesianOptTuner",
    "LLMCandidateTuner",
    "compare_tuners",
]
