"""Bayesian optimization with a GP surrogate and expected improvement.

The classic autotuning loop the paper cites (ytopt/GPTune family):
initialize with random evaluations, then repeatedly fit a GP to the
log-runtimes observed so far, score a random candidate pool with Expected
Improvement, and evaluate the maximizer.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.dataset.space import ConfigSpace
from repro.errors import TuningError
from repro.tuning.base import Tuner, TuningHistory
from repro.tuning.gp import GaussianProcess, GPParams
from repro.utils.rng import rng_from

__all__ = ["BayesianOptTuner"]


class BayesianOptTuner(Tuner):
    """GP-EI Bayesian optimization over a finite configuration space.

    Parameters
    ----------
    space:
        The configuration space.
    seed:
        Randomness for initialization and candidate pools.
    n_init:
        Random evaluations before the first GP fit.
    pool_size:
        Candidate pool scored by EI each iteration.
    gp_params:
        Kernel hyperparameters (lengthscale is in standardized-feature
        units).
    """

    name = "gp-bo"

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        n_init: int = 8,
        pool_size: int = 512,
        gp_params: GPParams | None = None,
    ):
        super().__init__(space, seed)
        if n_init < 2:
            raise TuningError(f"n_init must be >= 2, got {n_init}")
        if pool_size < 1:
            raise TuningError(f"pool_size must be >= 1, got {pool_size}")
        self.n_init = n_init
        self.pool_size = pool_size
        self.gp_params = gp_params or GPParams(
            lengthscale=1.2, noise_variance=1e-3
        )
        # Feature standardization constants over the whole space.
        digits = space.ordinal_matrix()
        self._feat_mean = digits.mean(axis=0)
        self._feat_std = digits.std(axis=0)
        self._feat_std[self._feat_std == 0] = 1.0
        self.reset()

    def reset(self) -> None:
        self._rng = rng_from(self.seed, "gp-bo")

    def _features(self, indices: np.ndarray) -> np.ndarray:
        digits = self.space.ordinal_matrix(indices)
        return (digits - self._feat_mean) / self._feat_std

    def propose(self, history: TuningHistory) -> int:
        seen = history.evaluated
        if len(history) < self.n_init or len(seen) >= self.space.size:
            while True:
                idx = int(self._rng.integers(self.space.size))
                if idx not in seen or len(seen) >= self.space.size:
                    return idx

        x = self._features(np.asarray(history.indices))
        y = np.log(np.asarray(history.runtimes))
        gp = GaussianProcess(self.gp_params).fit(x, y)

        pool = self._rng.choice(self.space.size, size=self.pool_size, replace=False)
        pool = np.asarray([i for i in pool if int(i) not in seen], dtype=np.int64)
        if pool.size == 0:
            return int(self._rng.integers(self.space.size))
        mean, std = gp.predict(self._features(pool), return_std=True)

        best = float(np.min(y))
        # Expected improvement for minimization of log-runtime.
        gamma = (best - mean) / std
        ei = std * (gamma * stats.norm.cdf(gamma) + stats.norm.pdf(gamma))
        return int(pool[int(np.argmax(ei))])
