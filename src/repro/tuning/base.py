"""Tuner abstractions: histories, budgets, and the proposal protocol.

A tuner proposes configuration *indices*; the harness evaluates them on
the performance model (one "empirical measurement" each) and feeds the
observation back.  Tuners never see the model internals — configurations
and measured runtimes only, like a real autotuner on a real machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataset.space import ConfigSpace
from repro.errors import TuningError

__all__ = ["TuningHistory", "TuningResult", "EvaluationBudget", "Tuner"]


@dataclass
class TuningHistory:
    """Observations made so far: parallel index/runtime lists."""

    indices: list[int] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)

    def record(self, index: int, runtime: float) -> None:
        """Append one observation."""
        if not np.isfinite(runtime) or runtime <= 0:
            raise TuningError(f"runtime must be positive/finite, got {runtime}")
        self.indices.append(int(index))
        self.runtimes.append(float(runtime))

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def best_runtime(self) -> float:
        if not self.runtimes:
            raise TuningError("no observations yet")
        return min(self.runtimes)

    @property
    def best_index(self) -> int:
        if not self.runtimes:
            raise TuningError("no observations yet")
        return self.indices[int(np.argmin(self.runtimes))]

    @property
    def evaluated(self) -> set[int]:
        return set(self.indices)

    def best_so_far_curve(self) -> np.ndarray:
        """Running minimum of runtimes after each evaluation."""
        if not self.runtimes:
            return np.empty(0)
        return np.minimum.accumulate(np.asarray(self.runtimes))


@dataclass(frozen=True)
class EvaluationBudget:
    """How many empirical evaluations a tuner may spend."""

    n_evaluations: int

    def __post_init__(self):
        if self.n_evaluations < 1:
            raise TuningError(
                f"budget must be >= 1 evaluation, got {self.n_evaluations}"
            )


class Tuner:
    """Base class: propose the next configuration index to evaluate.

    Subclasses implement :meth:`propose`; the harness guarantees that
    ``history`` contains every prior observation in order.  A tuner may
    re-propose an evaluated index (the measurement is then a fresh noisy
    repetition), but most avoid it via ``history.evaluated``.
    """

    #: Short name used in comparison tables.
    name = "tuner"

    def __init__(self, space: ConfigSpace, seed: int = 0):
        self.space = space
        self.seed = int(seed)

    def reset(self) -> None:
        """Clear internal state before a fresh run (default: nothing)."""

    def propose(self, history: TuningHistory) -> int:
        """Return the configuration index to evaluate next."""
        raise NotImplementedError


@dataclass
class TuningResult:
    """Outcome of one tuner run."""

    tuner_name: str
    history: TuningHistory
    best_index: int
    best_runtime: float
    n_evaluations: int

    def best_so_far_curve(self) -> np.ndarray:
        return self.history.best_so_far_curve()
