"""Autotuning substrate: the search algorithms the paper's domain motivates.

Performance autotuning is the application context of the whole study
(Section I): intelligent search over configuration spaces using a limited
budget of empirical evaluations.  This package implements the classic
approaches the paper cites as background — random search, local search,
and Bayesian optimization with a Gaussian-process surrogate (the ytopt /
GPTune family) — plus the LLAMBO-style LLM candidate-sampling tuner, all
against the syr2k performance model as the "machine" being measured.
"""

from repro.tuning.base import EvaluationBudget, Tuner, TuningHistory, TuningResult
from repro.tuning.random_search import RandomSearchTuner
from repro.tuning.hill_climb import HillClimbTuner
from repro.tuning.gp import GaussianProcess, GPParams
from repro.tuning.bo import BayesianOptTuner
from repro.tuning.llm_sampler import LLMCandidateTuner
from repro.tuning.copula import CopulaTransferTuner, GaussianCopula
from repro.tuning.harness import TunerComparison, compare_tuners, run_tuner

__all__ = [
    "Tuner",
    "TuningHistory",
    "TuningResult",
    "EvaluationBudget",
    "RandomSearchTuner",
    "HillClimbTuner",
    "GaussianProcess",
    "GPParams",
    "BayesianOptTuner",
    "LLMCandidateTuner",
    "GaussianCopula",
    "CopulaTransferTuner",
    "run_tuner",
    "compare_tuners",
    "TunerComparison",
]
