"""Gaussian-copula transfer-learning sampler (Randall et al., ICS'23).

The performance data this paper evaluates on was collected for
"Transfer-Learning-Based Autotuning Using Gaussian Copula" [5] — the
technique the introduction cites as reducing autotuning cost using data
from related tasks.  This module implements that substrate:

1. fit empirical marginals for every tunable parameter and the objective
   on *source-task* data, mapped to normal scores;
2. estimate the Gaussian-copula correlation among them;
3. to propose candidates for the *target* task, condition the copula on a
   low objective quantile and sample parameter normal scores from the
   conditional Gaussian, mapping them back through the inverse marginals.

Because the copula captures which parameter combinations co-occur with
fast runtimes — and those relationships transfer across input sizes far
better than absolute runtimes do — a handful of conditional samples lands
near the target optimum without any target evaluations.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, stats

from repro.dataset.generate import PerformanceDataset
from repro.dataset.space import ConfigSpace
from repro.errors import TuningError
from repro.tuning.base import Tuner, TuningHistory
from repro.utils.rng import rng_from

__all__ = ["GaussianCopula", "CopulaTransferTuner"]


class _OrdinalMarginal:
    """Empirical marginal of one ordinal column with normal-score maps."""

    def __init__(self, values: np.ndarray, cardinality: int):
        values = np.asarray(values, dtype=np.int64)
        counts = np.bincount(values, minlength=cardinality).astype(float)
        n = counts.sum()
        if n == 0:
            raise TuningError("cannot fit a marginal on zero observations")
        # Laplace smoothing keeps unseen levels reachable.
        counts += 0.5
        n = counts.sum()
        self.probs = counts / n
        self.cum = np.cumsum(self.probs)
        # Midpoint CDF value per level (the normal score of that level).
        mid = self.cum - self.probs / 2.0
        self.z_of_level = stats.norm.ppf(np.clip(mid, 1e-6, 1 - 1e-6))

    def to_z(self, levels: np.ndarray) -> np.ndarray:
        return self.z_of_level[np.asarray(levels, dtype=np.int64)]

    def from_z(self, z: np.ndarray) -> np.ndarray:
        u = stats.norm.cdf(np.asarray(z, dtype=float))
        return np.searchsorted(self.cum, u, side="left").clip(
            0, self.probs.size - 1
        )


class GaussianCopula:
    """Copula over (parameters, objective) fitted on one dataset."""

    def __init__(self, dataset: PerformanceDataset):
        if len(dataset) < 10:
            raise TuningError(
                f"need >= 10 source observations, got {len(dataset)}"
            )
        self.space: ConfigSpace = dataset.space
        digits = dataset.ordinal_features()
        self._marginals = [
            _OrdinalMarginal(digits[:, j], p.cardinality)
            for j, p in enumerate(self.space.parameters)
        ]
        z_params = np.column_stack(
            [m.to_z(digits[:, j]) for j, m in enumerate(self._marginals)]
        )
        # Objective: empirical normal scores of the runtimes.
        ranks = stats.rankdata(dataset.runtimes, method="average")
        u = (ranks - 0.5) / len(dataset)
        z_obj = stats.norm.ppf(np.clip(u, 1e-6, 1 - 1e-6))
        self._runtimes_sorted = np.sort(dataset.runtimes)

        z = np.column_stack([z_params, z_obj])
        cov = np.cov(z, rowvar=False)
        # Regularize toward identity for numerical stability.
        cov = 0.98 * cov + 0.02 * np.eye(cov.shape[0])
        self._cov = cov
        d = z_params.shape[1]
        self._sigma_pp = cov[:d, :d]
        self._sigma_py = cov[:d, d]
        self._sigma_yy = float(cov[d, d])
        cond_cov = self._sigma_pp - np.outer(
            self._sigma_py, self._sigma_py
        ) / self._sigma_yy
        # Symmetrize + jitter before Cholesky.
        cond_cov = (cond_cov + cond_cov.T) / 2.0
        cond_cov[np.diag_indices_from(cond_cov)] += 1e-8
        self._cond_chol = linalg.cholesky(cond_cov, lower=True)

    @property
    def objective_correlations(self) -> np.ndarray:
        """Copula correlation of each parameter with the objective."""
        d = self._sigma_py.size
        diag = np.sqrt(np.diag(self._sigma_pp))
        return self._sigma_py / (diag * np.sqrt(self._sigma_yy))

    def sample_conditioned(
        self,
        rng: np.random.Generator,
        quantile: float,
        n: int = 1,
    ) -> np.ndarray:
        """Sample configuration indices conditioned on a fast objective.

        Parameters
        ----------
        quantile:
            Target objective quantile in (0, 1); e.g. 0.05 asks for
            configurations whose runtime sits in the fastest 5%.
        n:
            Number of samples.
        """
        if not 0.0 < quantile < 1.0:
            raise TuningError(f"quantile must be in (0,1), got {quantile}")
        if n < 1:
            raise TuningError(f"n must be >= 1, got {n}")
        z_y = float(stats.norm.ppf(quantile))
        mean = self._sigma_py * (z_y / self._sigma_yy)
        eps = rng.standard_normal((n, mean.size))
        z = mean[None, :] + eps @ self._cond_chol.T
        digits = np.column_stack(
            [m.from_z(z[:, j]) for j, m in enumerate(self._marginals)]
        )
        # Mixed-radix composition back to indices.
        place = np.ones(len(self.space.parameters), dtype=np.int64)
        cards = [p.cardinality for p in self.space.parameters]
        for i in range(len(cards) - 2, -1, -1):
            place[i] = place[i + 1] * cards[i + 1]
        return (digits * place[None, :]).sum(axis=1).astype(np.int64)


class CopulaTransferTuner(Tuner):
    """Transfer-learning tuner: propose copula samples from source data.

    Parameters
    ----------
    space:
        Target-task configuration space (must match the source space).
    source:
        Source-task performance dataset (e.g. the SM table when tuning XL).
    quantile:
        Objective quantile the proposals are conditioned on.
    source_fraction:
        Fit the copula on only the fastest fraction of the source rows.
        Tile/packing effects are non-monotone over the full space, which a
        Gaussian copula cannot represent; restricting to the promising
        region concentrates the marginals where they transfer (the ICS'23
        method similarly models the high-performing region).
    """

    name = "copula-transfer"

    def __init__(
        self,
        space: ConfigSpace,
        source: PerformanceDataset,
        seed: int = 0,
        quantile: float = 0.05,
        source_fraction: float = 0.25,
    ):
        super().__init__(space, seed)
        if source.space.parameter_names != space.parameter_names:
            raise TuningError("source dataset space does not match target")
        if not 0.0 < source_fraction <= 1.0:
            raise TuningError(
                f"source_fraction must be in (0,1], got {source_fraction}"
            )
        if source_fraction < 1.0:
            keep = max(10, int(round(source_fraction * len(source))))
            fastest = np.argsort(source.runtimes)[:keep]
            source = source.subset(fastest)
        self.copula = GaussianCopula(source)
        self.quantile = quantile
        self.reset()

    def reset(self) -> None:
        self._rng = rng_from(self.seed, "copula-transfer")

    def propose(self, history: TuningHistory) -> int:
        seen = history.evaluated
        for _ in range(32):
            idx = int(
                self.copula.sample_conditioned(self._rng, self.quantile, 1)[0]
            )
            if idx not in seen:
                return idx
        # Copula keeps re-proposing known-good configs: fall back random.
        for _ in range(64):
            idx = int(self._rng.integers(self.space.size))
            if idx not in seen:
                return idx
        return int(self._rng.integers(self.space.size))
