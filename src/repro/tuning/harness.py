"""Tuner execution and comparison harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.perfmodel import Syr2kPerformanceModel
from repro.errors import TuningError
from repro.tuning.base import EvaluationBudget, Tuner, TuningHistory, TuningResult
from repro.utils.rng import derive_seed

__all__ = ["run_tuner", "TunerComparison", "compare_tuners"]


def run_tuner(
    tuner: Tuner,
    model: Syr2kPerformanceModel,
    budget: EvaluationBudget | int,
    *,
    seed: int | None = None,
) -> TuningResult:
    """Drive one tuner against the performance model.

    Each evaluation is a fresh noisy measurement (``rep`` = evaluation
    ordinal), so repeated proposals see run-to-run variance like a real
    machine.

    ``seed`` makes the whole run an explicit pure function: the tuner is
    re-seeded with ``derive_seed(seed, "tuner", tuner.name)`` (restored
    afterwards) and each measurement's ``rep`` derives from
    ``(seed, "measure", step)`` instead of the bare ordinal — two calls
    with the same seed produce identical histories, different seeds
    decorrelate both the search and the noise.  ``None`` keeps the
    legacy behaviour (tuner's own seed, ``rep = step + 1``), which is
    equally deterministic but couples runs to ambient tuner state.
    """
    if isinstance(budget, int):
        budget = EvaluationBudget(budget)
    if tuner.space.size != model.space.size:
        raise TuningError("tuner and model spaces differ")
    saved_seed = tuner.seed
    if seed is not None:
        tuner.seed = derive_seed(seed, "tuner", tuner.name)
    try:
        tuner.reset()
        history = TuningHistory()
        for step in range(budget.n_evaluations):
            try:
                index = tuner.propose(history)
            except TuningError as exc:
                raise TuningError(
                    f"tuner {tuner.name!r} propose() failed at evaluation "
                    f"{step}: {exc}"
                ) from exc
            except Exception as exc:
                raise TuningError(
                    f"tuner {tuner.name!r} propose() raised "
                    f"{type(exc).__name__} at evaluation {step}: {exc}"
                ) from exc
            if not 0 <= index < model.space.size:
                raise TuningError(
                    f"{tuner.name} proposed out-of-range index {index}"
                )
            rep = (
                step + 1
                if seed is None
                else max(1, derive_seed(seed, "measure", step))
            )
            runtime = float(model.measure([index], rep=rep)[0])
            history.record(index, runtime)
    finally:
        tuner.seed = saved_seed
    return TuningResult(
        tuner_name=tuner.name,
        history=history,
        best_index=history.best_index,
        best_runtime=history.best_runtime,
        n_evaluations=len(history),
    )


@dataclass
class TunerComparison:
    """Side-by-side results of several tuners on one task."""

    results: dict[str, list[TuningResult]]
    global_optimum: float

    def mean_best(self, name: str) -> float:
        """Mean best-found runtime across repetitions of one tuner."""
        runs = self.results[name]
        return float(np.mean([r.best_runtime for r in runs]))

    def mean_regret(self, name: str) -> float:
        """Mean relative gap to the global optimum."""
        best = self.mean_best(name)
        return (best - self.global_optimum) / self.global_optimum

    def mean_curve(self, name: str) -> np.ndarray:
        """Mean best-so-far curve across repetitions."""
        curves = [r.best_so_far_curve() for r in self.results[name]]
        return np.mean(np.stack(curves), axis=0)

    def ranking(self) -> list[tuple[str, float]]:
        """Tuners sorted by mean best runtime (ascending: winner first)."""
        return sorted(
            ((name, self.mean_best(name)) for name in self.results),
            key=lambda kv: kv[1],
        )


def compare_tuners(
    tuners: list[Tuner],
    model: Syr2kPerformanceModel,
    budget: int,
    repetitions: int = 3,
    *,
    seed: int | None = None,
) -> TunerComparison:
    """Run each tuner ``repetitions`` times under the same budget.

    Without an explicit ``seed``, tuner seeds are varied per repetition
    by re-seeding deterministically (``tuner.seed + 1000 * rep``) so
    repetitions differ but the whole comparison is reproducible given
    the tuners' ambient seeds.  With ``seed``, every repetition runs
    ``run_tuner(..., seed=derive_seed(seed, "rep", rep))`` — the
    comparison is then a pure function of ``seed`` alone, independent
    of how the tuner instances were seeded at construction.
    """
    if repetitions < 1:
        raise TuningError(f"repetitions must be >= 1, got {repetitions}")
    results: dict[str, list[TuningResult]] = {}
    for tuner in tuners:
        runs = []
        base_seed = tuner.seed
        try:
            for rep in range(repetitions):
                if seed is None:
                    tuner.seed = base_seed + 1000 * rep
                    runs.append(run_tuner(tuner, model, budget))
                else:
                    runs.append(
                        run_tuner(
                            tuner,
                            model,
                            budget,
                            seed=derive_seed(seed, "rep", rep),
                        )
                    )
        finally:
            tuner.seed = base_seed
        results[tuner.name] = runs
    noiseless = model.noiseless_runtimes()
    return TunerComparison(
        results=results, global_optimum=float(noiseless.min())
    )
