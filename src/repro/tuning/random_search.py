"""Uniform random search — the canonical autotuning baseline."""

from __future__ import annotations

from repro.dataset.space import ConfigSpace
from repro.tuning.base import Tuner, TuningHistory
from repro.utils.rng import rng_from

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(Tuner):
    """Propose uniformly random, not-yet-evaluated configurations."""

    name = "random"

    def __init__(self, space: ConfigSpace, seed: int = 0):
        super().__init__(space, seed)
        self.reset()

    def reset(self) -> None:
        self._rng = rng_from(self.seed, "random-search")

    def propose(self, history: TuningHistory) -> int:
        seen = history.evaluated
        if len(seen) >= self.space.size:
            # Space exhausted: repeat measurements of a random config.
            return int(self._rng.integers(self.space.size))
        while True:
            idx = int(self._rng.integers(self.space.size))
            if idx not in seen:
                return idx
