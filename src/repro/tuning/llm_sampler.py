"""LLAMBO candidate sampling: ask the LM for a configuration.

LLAMBO's third prompting mode (Section II-B) "inverts the discriminative
relationship by proposing a configuration expected to produce a given
performance value".  Each iteration shows the LM the observations so far
and a target slightly better than the incumbent, and asks it to propose a
configuration.  Generations that do not parse into a complete, in-domain
configuration (a frequent failure mode, consistent with the paper's
format-deviation findings) fall back to a random proposal; the fallback
rate is tracked and reported by the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.generate import PerformanceDataset
from repro.dataset.space import ConfigSpace
from repro.dataset.syr2k import Syr2kTask
from repro.errors import ParseError, TuningError
from repro.llm.engine import GenerationEngine
from repro.llm.model import SurrogateLM
from repro.llm.tokenizer import Tokenizer
from repro.prompts.builder import PromptBuilder
from repro.prompts.parser import extract_configuration
from repro.tuning.base import Tuner, TuningHistory
from repro.utils.rng import derive_seed, rng_from

__all__ = ["LLMCandidateTuner"]


class LLMCandidateTuner(Tuner):
    """Configuration proposals via LM candidate-sampling prompts.

    Parameters
    ----------
    task:
        The syr2k task (needed for prompt construction).
    seed:
        Randomness root (generation seeds and random fallbacks).
    target_ratio:
        Target performance = incumbent best * this ratio (< 1 asks the LM
        to beat the incumbent).
    max_context_examples:
        At most this many recent observations are shown in the prompt.
    n_init:
        Random evaluations before the LM is first consulted.
    """

    name = "llm-sampler"

    def __init__(
        self,
        space: ConfigSpace,
        task: Syr2kTask,
        seed: int = 0,
        target_ratio: float = 0.9,
        max_context_examples: int = 20,
        n_init: int = 4,
    ):
        super().__init__(space, seed)
        if not 0 < target_ratio <= 1:
            raise TuningError(
                f"target_ratio must be in (0, 1], got {target_ratio}"
            )
        if n_init < 1:
            raise TuningError(f"n_init must be >= 1, got {n_init}")
        self.task = task
        self.target_ratio = target_ratio
        self.max_context_examples = max_context_examples
        self.n_init = n_init
        self.tokenizer = Tokenizer()
        self.model = SurrogateLM(self.tokenizer.vocab)
        # Proposing a configuration needs a full line of tokens, not a
        # short value string.
        self.engine = GenerationEngine(self.model, max_new_tokens=96)
        self.builder = PromptBuilder(task, self.tokenizer)
        self.n_fallbacks = 0
        self.n_proposals = 0
        self.reset()

    def reset(self) -> None:
        self._rng = rng_from(self.seed, "llm-sampler")
        self.n_fallbacks = 0
        self.n_proposals = 0

    def _random_unseen(self, history: TuningHistory) -> int:
        seen = history.evaluated
        for _ in range(64):
            idx = int(self._rng.integers(self.space.size))
            if idx not in seen:
                return idx
        return int(self._rng.integers(self.space.size))

    def propose(self, history: TuningHistory) -> int:
        if len(history) < self.n_init:
            return self._random_unseen(history)

        recent = list(zip(history.indices, history.runtimes))[
            -self.max_context_examples :
        ]
        examples = [
            (self.space.from_index(idx), runtime) for idx, runtime in recent
        ]
        target = history.best_runtime * self.target_ratio
        parts = self.builder.candidate_sampling(examples, target)
        gen_seed = derive_seed(self.seed, "llm-proposal", len(history))
        trace = self.engine.generate(parts.ids, seed=gen_seed)
        text = trace.generated_text(self.tokenizer.vocab)
        self.n_proposals += 1
        try:
            config = extract_configuration(text, self.space)
        except ParseError:
            self.n_fallbacks += 1
            return self._random_unseen(history)
        index = self.space.to_index(config)
        if index in history.evaluated:
            # Re-proposing an observed config wastes budget; perturb.
            self.n_fallbacks += 1
            return self._random_unseen(history)
        return index

    @property
    def fallback_rate(self) -> float:
        """Share of LM proposals that failed to parse or repeated."""
        if self.n_proposals == 0:
            return 0.0
        return self.n_fallbacks / self.n_proposals
