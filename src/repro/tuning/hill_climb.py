"""Stochastic hill climbing with random restarts.

The climber walks the Hamming-1 neighbourhood of its incumbent: it
evaluates unvisited neighbours in a random order, moves whenever an
improvement is found, and restarts from a random configuration when the
entire neighbourhood has been exhausted without improvement (a local
minimum under measurement noise).
"""

from __future__ import annotations

from repro.dataset.space import ConfigSpace
from repro.tuning.base import Tuner, TuningHistory
from repro.utils.rng import rng_from

__all__ = ["HillClimbTuner"]


class HillClimbTuner(Tuner):
    """First-improvement hill climbing over the Hamming-1 neighbourhood."""

    name = "hill-climb"

    def __init__(self, space: ConfigSpace, seed: int = 0):
        super().__init__(space, seed)
        self.reset()

    def reset(self) -> None:
        self._rng = rng_from(self.seed, "hill-climb")
        self._incumbent: int | None = None
        self._incumbent_runtime = float("inf")
        self._frontier: list[int] = []

    def _restart(self, history: TuningHistory) -> int:
        seen = history.evaluated
        for _ in range(64):
            idx = int(self._rng.integers(self.space.size))
            if idx not in seen:
                break
        self._incumbent = None
        self._incumbent_runtime = float("inf")
        self._frontier = []
        return idx

    def _rebuild_frontier(self, history: TuningHistory) -> None:
        assert self._incumbent is not None
        seen = history.evaluated
        neighbors = [
            n for n in self.space.neighbors(self._incumbent) if n not in seen
        ]
        self._rng.shuffle(neighbors)
        self._frontier = neighbors

    def propose(self, history: TuningHistory) -> int:
        if len(history) == 0:
            return self._restart(history)

        last_index = history.indices[-1]
        last_runtime = history.runtimes[-1]
        if last_runtime < self._incumbent_runtime:
            # Move (or adopt the very first observation as incumbent).
            self._incumbent = last_index
            self._incumbent_runtime = last_runtime
            self._rebuild_frontier(history)

        while self._frontier:
            candidate = self._frontier.pop()
            if candidate not in history.evaluated:
                return candidate
        # Local minimum: restart.
        return self._restart(history)
