"""Gaussian-process regression from scratch (the BO surrogate).

A standard zero-mean GP with a squared-exponential (RBF) kernel plus a
noise nugget, fitted by Cholesky factorization.  Inputs are expected
pre-normalized (the BO tuner feeds standardized ordinal features); targets
are standardized internally so the unit-variance kernel priors are
sensible regardless of runtime magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg

from repro.errors import ModelNotFittedError, TuningError

__all__ = ["GPParams", "GaussianProcess"]


@dataclass(frozen=True)
class GPParams:
    """Kernel hyperparameters."""

    lengthscale: float = 1.0
    signal_variance: float = 1.0
    noise_variance: float = 1e-4

    def __post_init__(self):
        if self.lengthscale <= 0:
            raise TuningError(f"lengthscale must be > 0, got {self.lengthscale}")
        if self.signal_variance <= 0:
            raise TuningError(
                f"signal_variance must be > 0, got {self.signal_variance}"
            )
        if self.noise_variance < 0:
            raise TuningError(
                f"noise_variance must be >= 0, got {self.noise_variance}"
            )


def _sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, vectorized."""
    a2 = np.sum(a * a, axis=1)[:, None]
    b2 = np.sum(b * b, axis=1)[None, :]
    return np.maximum(a2 + b2 - 2.0 * (a @ b.T), 0.0)


class GaussianProcess:
    """Exact GP regression with an RBF kernel."""

    def __init__(self, params: GPParams | None = None):
        self.params = params or GPParams()
        self._x: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        p = self.params
        d2 = _sq_dists(a, b)
        return p.signal_variance * np.exp(-0.5 * d2 / (p.lengthscale**2))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit on ``(n, d)`` inputs and ``(n,)`` targets."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise TuningError(
                f"need x (n, d) and y (n,), got {x.shape} and {y.shape}"
            )
        if x.shape[0] < 1:
            raise TuningError("cannot fit a GP on zero observations")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        z = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x)
        k[np.diag_indices_from(k)] += self.params.noise_variance + 1e-10
        self._chol = linalg.cholesky(k, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), z)
        self._x = x
        return self

    def predict(
        self, x_new: np.ndarray, return_std: bool = False
    ):
        """Posterior mean (and optionally std) at new inputs."""
        if self._x is None:
            raise ModelNotFittedError("GaussianProcess used before fit()")
        x_new = np.asarray(x_new, dtype=float)
        k_star = self._kernel(x_new, self._x)
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, k_star.T, lower=True)
        var = self.params.signal_variance - np.sum(v * v, axis=0)
        var = np.maximum(var, 1e-12)
        return mean, np.sqrt(var) * self._y_std

    def log_marginal_likelihood(self) -> float:
        """Log evidence of the fitted data (model-selection diagnostic)."""
        if self._chol is None or self._alpha is None or self._x is None:
            raise ModelNotFittedError("GaussianProcess used before fit()")
        n = self._x.shape[0]
        z_alpha = self._alpha
        # z was standardized; reconstruct z from alpha: K alpha = z.
        k = self._kernel(self._x, self._x)
        k[np.diag_indices_from(k)] += self.params.noise_variance + 1e-10
        z = k @ z_alpha
        return float(
            -0.5 * z @ z_alpha
            - np.sum(np.log(np.diag(self._chol)))
            - 0.5 * n * np.log(2 * np.pi)
        )
