"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError`` from misuse still propagates
as-is where it indicates a caller bug at the Python level).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigSpaceError",
    "UnknownParameterError",
    "InvalidConfigurationError",
    "DatasetError",
    "ModelNotFittedError",
    "TokenizationError",
    "VocabularyError",
    "GenerationError",
    "PromptError",
    "ParseError",
    "ExperimentError",
    "AnalysisError",
    "TuningError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigSpaceError(ReproError):
    """A configuration space was constructed or used inconsistently."""


class UnknownParameterError(ConfigSpaceError, KeyError):
    """A parameter name was requested that the space does not define."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        msg = f"unknown parameter {name!r}"
        if known:
            msg += f"; space defines {', '.join(known)}"
        super().__init__(msg)


class InvalidConfigurationError(ConfigSpaceError, ValueError):
    """A configuration assigns a value outside a parameter's domain."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or split as requested."""


class ModelNotFittedError(ReproError, RuntimeError):
    """A predictive model was used before :meth:`fit` was called."""


class TokenizationError(ReproError, ValueError):
    """Text could not be tokenized or token ids could not be decoded."""


class VocabularyError(ReproError, ValueError):
    """A vocabulary was constructed or queried inconsistently."""


class GenerationError(ReproError, RuntimeError):
    """The language-model generation engine failed to produce output."""


class PromptError(ReproError, ValueError):
    """A prompt could not be constructed from the given pieces."""


class ParseError(ReproError, ValueError):
    """Model output could not be parsed into the expected structure."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment grid or runner was configured inconsistently."""


class AnalysisError(ReproError, ValueError):
    """An analysis routine received data it cannot analyse."""


class TuningError(ReproError, RuntimeError):
    """An autotuning search was configured or driven inconsistently."""
