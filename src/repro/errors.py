"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError`` from misuse still propagates
as-is where it indicates a caller bug at the Python level).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigSpaceError",
    "UnknownParameterError",
    "InvalidConfigurationError",
    "DatasetError",
    "ModelNotFittedError",
    "TokenizationError",
    "VocabularyError",
    "GenerationError",
    "PromptError",
    "ParseError",
    "ExperimentError",
    "AnalysisError",
    "TuningError",
    "SessionError",
    "LoadgenError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "RequestTimeoutError",
    "InjectedFaultError",
    "CircuitOpenError",
    "ShardError",
    "ShardCrashError",
    "ShardFailedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigSpaceError(ReproError):
    """A configuration space was constructed or used inconsistently."""


class UnknownParameterError(ConfigSpaceError, KeyError):
    """A parameter name was requested that the space does not define."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        msg = f"unknown parameter {name!r}"
        if known:
            msg += f"; space defines {', '.join(known)}"
        super().__init__(msg)


class InvalidConfigurationError(ConfigSpaceError, ValueError):
    """A configuration assigns a value outside a parameter's domain."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or split as requested."""


class ModelNotFittedError(ReproError, RuntimeError):
    """A predictive model was used before :meth:`fit` was called."""


class TokenizationError(ReproError, ValueError):
    """Text could not be tokenized or token ids could not be decoded."""


class VocabularyError(ReproError, ValueError):
    """A vocabulary was constructed or queried inconsistently."""


class GenerationError(ReproError, RuntimeError):
    """The language-model generation engine failed to produce output."""


class PromptError(ReproError, ValueError):
    """A prompt could not be constructed from the given pieces."""


class ParseError(ReproError, ValueError):
    """Model output could not be parsed into the expected structure."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment grid or runner was configured inconsistently."""


class AnalysisError(ReproError, ValueError):
    """An analysis routine received data it cannot analyse."""


class TuningError(ReproError, RuntimeError):
    """An autotuning search was configured or driven inconsistently."""


class SessionError(ReproError, RuntimeError):
    """A tuning session or session manager was configured or driven
    inconsistently (invalid lifecycle transition, duplicate session id,
    corrupt or diverging event log)."""


class LoadgenError(ReproError, ValueError):
    """A load-generation spec (arrival process, workload mix, SLO policy)
    was invalid or internally inconsistent."""


class ServiceError(ReproError, RuntimeError):
    """Base class for failures of the :mod:`repro.serve` inference service."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded request queue is full (backpressure).

    Callers should retry with backoff or shed load; both the capacity and
    the observed queue depth are reported so retry/backoff policies can
    size their delays (depth ≈ capacity means sustained saturation).
    """

    def __init__(self, capacity: int, depth: int | None = None):
        self.capacity = capacity
        self.depth = depth
        queued = capacity if depth is None else depth
        super().__init__(
            f"request queue full ({queued}/{capacity} queued); retry later"
        )

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` with args set
        # to the rendered message, which would rebuild this error with a
        # string capacity (or crash for multi-field errors).  The sharded
        # backend ships typed errors across process boundaries, so every
        # structured ServiceError pickles by its real constructor fields.
        return (type(self), (self.capacity, self.depth))


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is draining or shut down."""


class RequestTimeoutError(ServiceError, TimeoutError):
    """A request did not complete within its per-request timeout.

    The underlying work may still finish in the background; the response
    is discarded once the caller has given up.
    """

    def __init__(self, timeout_s: float):
        self.timeout_s = timeout_s
        super().__init__(f"request timed out after {timeout_s:.3f}s")

    def __reduce__(self):
        return (type(self), (self.timeout_s,))


class InjectedFaultError(ServiceError):
    """A transient fault injected deterministically by :mod:`repro.faults`.

    Represents the recoverable failure class (a worker dying mid-request,
    a flaky backend): retry policies treat it as retryable, and chaos
    drills count how many of them the resilience layer absorbed.
    """

    def __init__(self, site: str, key: object):
        self.site = site
        self.key = key
        super().__init__(
            f"injected transient fault at {site!r} (key {key!r})"
        )

    def __reduce__(self):
        return (type(self), (self.site, self.key))


class CircuitOpenError(ServiceError):
    """A route's circuit breaker is open: the service is failing fast.

    Raised only when graceful degradation is disabled (or yields
    nothing); otherwise an open breaker produces a degraded response.
    """

    def __init__(self, route: str):
        self.route = route
        super().__init__(
            f"circuit breaker open for route {route!r}; failing fast"
        )

    def __reduce__(self):
        return (type(self), (self.route,))


class ShardError(ServiceError):
    """Base class for failures of the sharded multi-process backend."""


class ShardCrashError(ShardError):
    """A shard worker process died while requests were in flight.

    The in-flight tickets are failed with this error; the shard itself is
    respawned (up to the restart cap) so subsequent requests routed to it
    succeed.  Retryable: the retry policy treats a crashed shard like any
    other transient worker fault.
    """

    def __init__(self, shard: int, exitcode: int | None = None):
        self.shard = shard
        self.exitcode = exitcode
        detail = "" if exitcode is None else f" (exit code {exitcode})"
        super().__init__(
            f"shard {shard} died with requests in flight{detail}"
        )

    def __reduce__(self):
        return (type(self), (self.shard, self.exitcode))


class ShardFailedError(ShardError):
    """A shard exhausted its restart budget and is permanently down.

    Not retryable within the same service: requests whose prompt keys
    route to a failed shard keep failing until the service is rebuilt.
    """

    def __init__(self, shard: int, restarts: int):
        self.shard = shard
        self.restarts = restarts
        super().__init__(
            f"shard {shard} failed permanently after {restarts} restarts"
        )

    def __reduce__(self):
        return (type(self), (self.shard, self.restarts))
