"""Deterministic, seedable fault injection for the serving stack.

A :class:`FaultPlan` is a frozen schedule of failure modes — transient
worker exceptions, latency spikes, cache-eviction storms, queue stalls,
and grid-cell faults — whose decisions are *pure functions* of
``(plan seed, site, key)`` via :func:`repro.utils.rng.derive_seed`.  Hook
points in the stack (``MicroBatcher._flush``,
``PredictionService._serve_one``, :func:`repro.core.runner.run_spec`)
pass their natural keys (flush index, request id, cell key), so a given
plan + seed reproduces the exact same fault sequence run after run: the
chaos drills in ``repro chaos`` and the resilience tests are
bit-reproducible, not flaky.

A :class:`FaultInjector` binds a plan to runtime effects (sleeping,
raising :class:`~repro.errors.InjectedFaultError`, clearing caches) and
counts every injected fault in a thread-safe :class:`FaultStats`.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from dataclasses import dataclass

from repro.errors import InjectedFaultError
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FaultyFile",
    "DEFAULT_FAULT_PLAN",
    "DISK_FAULT_PLAN",
]

#: ``derive_seed`` yields uniform 63-bit ints; dividing by 2**63 maps them
#: onto [0, 1) for rate thresholds.
_SCALE = float(1 << 63)

_RATE_FIELDS = (
    "transient_error_rate",
    "latency_spike_rate",
    "eviction_storm_rate",
    "queue_stall_rate",
    "cell_error_rate",
    "shard_kill_rate",
    "torn_write_rate",
    "bitflip_rate",
    "enospc_rate",
    "fsync_fail_rate",
    "telemetry_drop_rate",
    "telemetry_dup_rate",
)
_DURATION_FIELDS = ("latency_spike_s", "queue_stall_s")
_DISK_RATE_FIELDS = (
    "torn_write_rate",
    "bitflip_rate",
    "enospc_rate",
    "fsync_fail_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injectable failure modes.

    Attributes
    ----------
    seed:
        Root of the fault-decision hash; two plans with equal fields make
        identical decisions everywhere.
    transient_error_rate:
        Per-request probability that the batch worker raises
        :class:`~repro.errors.InjectedFaultError` before executing.
    latency_spike_rate, latency_spike_s:
        Per-request probability/duration of an added service delay.
    eviction_storm_rate:
        Per-request probability that both service caches are cleared
        first (a cold-cache storm).
    queue_stall_rate, queue_stall_s:
        Per-flush probability/duration of a scheduler stall before the
        batch is dispatched.
    cell_error_rate:
        Per-cell probability that :func:`repro.core.runner.run_spec`
        fails before running any probes (grid-level crash simulation).
    shard_kill_rate:
        Per-dispatch probability that the sharded backend SIGKILLs the
        target worker process *before* enqueueing the ticket — the
        abrupt-shard-death drill (the ticket and any in-flight peers
        fail with :class:`~repro.errors.ShardCrashError`, then the
        shard respawns).  Ignored by the in-process backend.
    torn_write_rate:
        Per-write probability that a storage write lands only a prefix
        of its payload and then "crashes" (raises
        :class:`~repro.errors.InjectedFaultError` after flushing the
        torn bytes) — the classic kill-9-mid-append signature.
    bitflip_rate:
        Per-write probability that one character of the payload is
        silently corrupted *before* hitting disk while the write still
        reports success — media rot that only a checksum can catch.
    enospc_rate:
        Per-write probability of ``OSError(ENOSPC)`` before any byte
        lands (a full disk).
    fsync_fail_rate:
        Per-fsync probability of ``OSError(EIO)`` — durability was
        requested but the device refused.
    telemetry_drop_rate:
        Per-sample probability that the telemetry sampler loses a sample
        before it reaches the timeline (a scrape thread dying or an
        exporter crash) — downstream loaders must report the gap.
    telemetry_dup_rate:
        Per-sample probability that a sample is recorded twice (an
        at-least-once exporter retry) — loaders must dedupe by payload
        sequence number, not trust the file.
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_s: float = 0.01
    eviction_storm_rate: float = 0.0
    queue_stall_rate: float = 0.0
    queue_stall_s: float = 0.005
    cell_error_rate: float = 0.0
    shard_kill_rate: float = 0.0
    torn_write_rate: float = 0.0
    bitflip_rate: float = 0.0
    enospc_rate: float = 0.0
    fsync_fail_rate: float = 0.0
    telemetry_drop_rate: float = 0.0
    telemetry_dup_rate: float = 0.0

    def __post_init__(self):
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in _DURATION_FIELDS:
            duration = getattr(self, name)
            if duration < 0:
                raise ValueError(f"{name} must be >= 0, got {duration}")

    # ------------------------------------------------------------------ #
    def fires(self, site: str, key: object, rate: float) -> bool:
        """Pure fault decision for ``(site, key)`` at ``rate``."""
        if rate <= 0.0:
            return False
        return derive_seed(self.seed, "fault", site, key) / _SCALE < rate

    def transient_error(self, key: object) -> bool:
        return self.fires("transient-error", key, self.transient_error_rate)

    def latency_spike(self, key: object) -> float:
        """Added latency in seconds for this key (0.0 when no spike)."""
        if self.fires("latency-spike", key, self.latency_spike_rate):
            return self.latency_spike_s
        return 0.0

    def eviction_storm(self, key: object) -> bool:
        return self.fires("eviction-storm", key, self.eviction_storm_rate)

    def queue_stall(self, key: object) -> float:
        """Scheduler stall in seconds for this flush (0.0 when none)."""
        if self.fires("queue-stall", key, self.queue_stall_rate):
            return self.queue_stall_s
        return 0.0

    def cell_fault(self, key: object) -> bool:
        return self.fires("cell-error", key, self.cell_error_rate)

    def shard_kill(self, key: object) -> bool:
        return self.fires("shard-kill", key, self.shard_kill_rate)

    def torn_write(self, key: object) -> bool:
        return self.fires("torn-write", key, self.torn_write_rate)

    def torn_cut(self, key: object, length: int) -> int:
        """How many characters of a torn write land (strict prefix)."""
        if length <= 1:
            return 0
        return derive_seed(self.seed, "fault", "torn-cut", key) % length

    def bitflip(self, key: object) -> bool:
        return self.fires("bitflip", key, self.bitflip_rate)

    def bitflip_site(self, key: object, length: int) -> tuple[int, int]:
        """(character index, bit index) to corrupt in a payload."""
        pos = derive_seed(self.seed, "fault", "bitflip-pos", key) % length
        bit = derive_seed(self.seed, "fault", "bitflip-bit", key) % 6
        return pos, bit

    def enospc(self, key: object) -> bool:
        return self.fires("enospc", key, self.enospc_rate)

    def fsync_fails(self, key: object) -> bool:
        return self.fires("fsync-fail", key, self.fsync_fail_rate)

    def telemetry_drop(self, key: object) -> bool:
        return self.fires("telemetry-drop", key, self.telemetry_drop_rate)

    def telemetry_dup(self, key: object) -> bool:
        return self.fires("telemetry-dup", key, self.telemetry_dup_rate)

    @property
    def active(self) -> bool:
        """Whether any failure mode has a non-zero rate."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @property
    def disk_active(self) -> bool:
        """Whether any *storage* failure mode has a non-zero rate."""
        return any(getattr(self, name) > 0.0 for name in _DISK_RATE_FIELDS)


#: The ``repro chaos`` default: a realistically hostile mix — ~8% of
#: requests fail transiently, 5% see a latency spike, caches are stormed
#: on 2% of requests, and 5% of flushes stall.  Under the default
#: :class:`~repro.serve.resilience.RetryPolicy` this keeps availability
#: >= 99% (pinned by ``benchmarks/test_serve_chaos.py``).
DEFAULT_FAULT_PLAN = FaultPlan(
    seed=20250806,
    transient_error_rate=0.08,
    latency_spike_rate=0.05,
    latency_spike_s=0.01,
    eviction_storm_rate=0.02,
    queue_stall_rate=0.05,
    queue_stall_s=0.005,
)

#: The ``repro chaos --disk`` default: hostile storage.  Roughly a third
#: of writes tear mid-payload, half of the survivors take a silent
#: bitflip, and occasionally the disk is full or fsync lies — every one
#: of which must be caught by the CRC framing and accounted for in the
#: :class:`~repro.core.storage.RecoveryReport` (no silent data loss).
DISK_FAULT_PLAN = FaultPlan(
    seed=20250808,
    torn_write_rate=0.30,
    bitflip_rate=0.50,
    enospc_rate=0.10,
    fsync_fail_rate=0.05,
)


class FaultStats:
    """Thread-safe counters of injected faults (one per failure mode)."""

    _KINDS = (
        "transient_errors",
        "latency_spikes",
        "evictions",
        "stalls",
        "cell_faults",
        "shard_kills",
        "torn_writes",
        "bitflips",
        "enospc",
        "fsync_failures",
        "telemetry_drops",
        "telemetry_dups",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {kind: 0 for kind in self._KINDS}

    def record(self, kind: str) -> None:
        if kind not in self._counts:
            raise ValueError(f"unknown fault kind {kind!r}")
        with self._lock:
            self._counts[kind] += 1

    def add(self, kind: str, n: int) -> None:
        """Bulk-add ``n`` faults of one kind (merging shard snapshots)."""
        if kind not in self._counts:
            raise ValueError(f"unknown fault kind {kind!r}")
        if n < 0:
            raise ValueError(f"fault counts only go up; got add({n})")
        with self._lock:
            self._counts[kind] += n

    def snapshot(self) -> dict[str, int]:
        """Copy of the current counters."""
        with self._lock:
            return dict(self._counts)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def render(self, title: str = "injected faults") -> str:
        """ASCII table of the counters (the chaos report body)."""
        snap = self.snapshot()
        t = Table(["fault", "count"], title=title)
        t.add_row(["transient worker errors", snap["transient_errors"]])
        t.add_row(["latency spikes", snap["latency_spikes"]])
        t.add_row(["cache-eviction storms", snap["evictions"]])
        t.add_row(["queue stalls", snap["stalls"]])
        t.add_row(["grid-cell faults", snap["cell_faults"]])
        t.add_row(["shard kills", snap["shard_kills"]])
        t.add_row(["torn writes", snap["torn_writes"]])
        t.add_row(["bitflips after ack", snap["bitflips"]])
        t.add_row(["ENOSPC writes", snap["enospc"]])
        t.add_row(["fsync failures", snap["fsync_failures"]])
        t.add_row(["telemetry samples dropped", snap["telemetry_drops"]])
        t.add_row(["telemetry samples duplicated", snap["telemetry_dups"]])
        return t.render()


class FaultyFile:
    """A write-path double that injects disk faults deterministically.

    Wraps a text-mode file handle on the storage append/snapshot paths
    (installed via :func:`repro.core.storage.set_fault_injector`).  Each
    ``write`` is keyed by ``(name, byte position)`` so the fault
    sequence is a pure function of the plan seed and what was written —
    a crashed-and-resumed run replays identically.

    Fault order per write: ENOSPC (nothing lands), torn write (a strict
    prefix lands, is flushed, then :class:`InjectedFaultError` simulates
    the crash), bitflip (one character corrupted, write still "succeeds")
    — mirroring how a real device fails before, during, and after the
    syscall.  ``fsync`` may raise ``OSError(EIO)`` on its own schedule.
    """

    def __init__(self, fh, plan: FaultPlan, stats: FaultStats,
                 site: str, name: str):
        self._fh = fh
        self._plan = plan
        self._stats = stats
        self._site = site
        self._name = name

    def _key(self, op: str) -> str:
        return f"{self._name}:{self._site}:{op}:{self._fh.tell()}"

    def write(self, data: str) -> int:
        plan = self._plan
        key = self._key("write")
        if plan.enospc(key):
            self._stats.record("enospc")
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if plan.torn_write(key):
            cut = plan.torn_cut(key, len(data))
            self._fh.write(data[:cut])
            self._fh.flush()
            self._stats.record("torn_writes")
            raise InjectedFaultError(self._site, key)
        if plan.bitflip(key) and data.strip():
            pos, bit = plan.bitflip_site(key, len(data))
            # Never corrupt a character into a newline: that would split
            # one record into two, which is a different failure mode.
            flipped = chr(ord(data[pos]) ^ (1 << bit))
            if flipped in ("\n", "\r") or data[pos] in ("\n", "\r"):
                flipped = "X" if data[pos] != "X" else "Y"
            data = data[:pos] + flipped + data[pos + 1:]
            self._stats.record("bitflips")
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fsync(self) -> None:
        if self._plan.fsync_fails(self._key("fsync")):
            self._stats.record("fsync_failures")
            raise OSError(errno.EIO, "injected: fsync failed")
        self._fh.flush()
        os.fsync(self._fh.fileno())


class FaultInjector:
    """Binds a :class:`FaultPlan` to runtime effects at the hook points.

    Parameters
    ----------
    plan:
        The fault schedule; decisions stay pure functions of its seed.
    sleep:
        Injectable sleep (tests pass a stub so stalls cost no wall time).
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep):
        self.plan = plan
        self.stats = FaultStats()
        self._sleep = sleep

    def before_request(self, key: object, caches=()) -> None:
        """Per-request hook (``PredictionService._serve_one``).

        Order matters: an eviction storm first (so this request sees the
        cold caches), then the latency spike, then the transient error —
        a spiked request can still fail, like a slow worker dying.
        """
        plan = self.plan
        if plan.eviction_storm(key):
            self.stats.record("evictions")
            for cache in caches:
                if cache is not None:
                    cache.clear()
        spike = plan.latency_spike(key)
        if spike > 0.0:
            self.stats.record("latency_spikes")
            self._sleep(spike)
        if plan.transient_error(key):
            self.stats.record("transient_errors")
            raise InjectedFaultError("serve", key)

    def before_flush(self, key: object) -> None:
        """Per-flush hook (``MicroBatcher._flush``): maybe stall."""
        stall = self.plan.queue_stall(key)
        if stall > 0.0:
            self.stats.record("stalls")
            self._sleep(stall)

    def before_cell(self, key: object) -> None:
        """Per-cell hook (:func:`repro.core.runner.run_spec`)."""
        if self.plan.cell_fault(key):
            self.stats.record("cell_faults")
            raise InjectedFaultError("run_spec", key)

    def on_telemetry_sample(self, key: object) -> str:
        """Telemetry-sampler hook: fate of one sample.

        Returns ``"drop"`` (the sample never reaches the timeline),
        ``"dup"`` (it is recorded twice), or ``"keep"``.  Drop wins when
        both fire — a dropped sample cannot also be duplicated.
        """
        plan = self.plan
        if plan.telemetry_drop(key):
            self.stats.record("telemetry_drops")
            return "drop"
        if plan.telemetry_dup(key):
            self.stats.record("telemetry_dups")
            return "dup"
        return "keep"

    def wrap_file(self, fh, site: str, name: str):
        """Storage-write hook: wrap a file handle in a :class:`FaultyFile`.

        Returns ``fh`` unwrapped when the plan has no disk faults, so
        the healthy write path costs one attribute check.
        """
        if not self.plan.disk_active:
            return fh
        return FaultyFile(fh, self.plan, self.stats, site, name)
