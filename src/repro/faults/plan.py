"""Deterministic, seedable fault injection for the serving stack.

A :class:`FaultPlan` is a frozen schedule of failure modes — transient
worker exceptions, latency spikes, cache-eviction storms, queue stalls,
and grid-cell faults — whose decisions are *pure functions* of
``(plan seed, site, key)`` via :func:`repro.utils.rng.derive_seed`.  Hook
points in the stack (``MicroBatcher._flush``,
``PredictionService._serve_one``, :func:`repro.core.runner.run_spec`)
pass their natural keys (flush index, request id, cell key), so a given
plan + seed reproduces the exact same fault sequence run after run: the
chaos drills in ``repro chaos`` and the resilience tests are
bit-reproducible, not flaky.

A :class:`FaultInjector` binds a plan to runtime effects (sleeping,
raising :class:`~repro.errors.InjectedFaultError`, clearing caches) and
counts every injected fault in a thread-safe :class:`FaultStats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import InjectedFaultError
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["FaultPlan", "FaultInjector", "FaultStats", "DEFAULT_FAULT_PLAN"]

#: ``derive_seed`` yields uniform 63-bit ints; dividing by 2**63 maps them
#: onto [0, 1) for rate thresholds.
_SCALE = float(1 << 63)

_RATE_FIELDS = (
    "transient_error_rate",
    "latency_spike_rate",
    "eviction_storm_rate",
    "queue_stall_rate",
    "cell_error_rate",
)
_DURATION_FIELDS = ("latency_spike_s", "queue_stall_s")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injectable failure modes.

    Attributes
    ----------
    seed:
        Root of the fault-decision hash; two plans with equal fields make
        identical decisions everywhere.
    transient_error_rate:
        Per-request probability that the batch worker raises
        :class:`~repro.errors.InjectedFaultError` before executing.
    latency_spike_rate, latency_spike_s:
        Per-request probability/duration of an added service delay.
    eviction_storm_rate:
        Per-request probability that both service caches are cleared
        first (a cold-cache storm).
    queue_stall_rate, queue_stall_s:
        Per-flush probability/duration of a scheduler stall before the
        batch is dispatched.
    cell_error_rate:
        Per-cell probability that :func:`repro.core.runner.run_spec`
        fails before running any probes (grid-level crash simulation).
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_s: float = 0.01
    eviction_storm_rate: float = 0.0
    queue_stall_rate: float = 0.0
    queue_stall_s: float = 0.005
    cell_error_rate: float = 0.0

    def __post_init__(self):
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in _DURATION_FIELDS:
            duration = getattr(self, name)
            if duration < 0:
                raise ValueError(f"{name} must be >= 0, got {duration}")

    # ------------------------------------------------------------------ #
    def fires(self, site: str, key: object, rate: float) -> bool:
        """Pure fault decision for ``(site, key)`` at ``rate``."""
        if rate <= 0.0:
            return False
        return derive_seed(self.seed, "fault", site, key) / _SCALE < rate

    def transient_error(self, key: object) -> bool:
        return self.fires("transient-error", key, self.transient_error_rate)

    def latency_spike(self, key: object) -> float:
        """Added latency in seconds for this key (0.0 when no spike)."""
        if self.fires("latency-spike", key, self.latency_spike_rate):
            return self.latency_spike_s
        return 0.0

    def eviction_storm(self, key: object) -> bool:
        return self.fires("eviction-storm", key, self.eviction_storm_rate)

    def queue_stall(self, key: object) -> float:
        """Scheduler stall in seconds for this flush (0.0 when none)."""
        if self.fires("queue-stall", key, self.queue_stall_rate):
            return self.queue_stall_s
        return 0.0

    def cell_fault(self, key: object) -> bool:
        return self.fires("cell-error", key, self.cell_error_rate)

    @property
    def active(self) -> bool:
        """Whether any failure mode has a non-zero rate."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)


#: The ``repro chaos`` default: a realistically hostile mix — ~8% of
#: requests fail transiently, 5% see a latency spike, caches are stormed
#: on 2% of requests, and 5% of flushes stall.  Under the default
#: :class:`~repro.serve.resilience.RetryPolicy` this keeps availability
#: >= 99% (pinned by ``benchmarks/test_serve_chaos.py``).
DEFAULT_FAULT_PLAN = FaultPlan(
    seed=20250806,
    transient_error_rate=0.08,
    latency_spike_rate=0.05,
    latency_spike_s=0.01,
    eviction_storm_rate=0.02,
    queue_stall_rate=0.05,
    queue_stall_s=0.005,
)


class FaultStats:
    """Thread-safe counters of injected faults (one per failure mode)."""

    _KINDS = (
        "transient_errors",
        "latency_spikes",
        "evictions",
        "stalls",
        "cell_faults",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {kind: 0 for kind in self._KINDS}

    def record(self, kind: str) -> None:
        if kind not in self._counts:
            raise ValueError(f"unknown fault kind {kind!r}")
        with self._lock:
            self._counts[kind] += 1

    def snapshot(self) -> dict[str, int]:
        """Copy of the current counters."""
        with self._lock:
            return dict(self._counts)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def render(self, title: str = "injected faults") -> str:
        """ASCII table of the counters (the chaos report body)."""
        snap = self.snapshot()
        t = Table(["fault", "count"], title=title)
        t.add_row(["transient worker errors", snap["transient_errors"]])
        t.add_row(["latency spikes", snap["latency_spikes"]])
        t.add_row(["cache-eviction storms", snap["evictions"]])
        t.add_row(["queue stalls", snap["stalls"]])
        t.add_row(["grid-cell faults", snap["cell_faults"]])
        return t.render()


class FaultInjector:
    """Binds a :class:`FaultPlan` to runtime effects at the hook points.

    Parameters
    ----------
    plan:
        The fault schedule; decisions stay pure functions of its seed.
    sleep:
        Injectable sleep (tests pass a stub so stalls cost no wall time).
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep):
        self.plan = plan
        self.stats = FaultStats()
        self._sleep = sleep

    def before_request(self, key: object, caches=()) -> None:
        """Per-request hook (``PredictionService._serve_one``).

        Order matters: an eviction storm first (so this request sees the
        cold caches), then the latency spike, then the transient error —
        a spiked request can still fail, like a slow worker dying.
        """
        plan = self.plan
        if plan.eviction_storm(key):
            self.stats.record("evictions")
            for cache in caches:
                if cache is not None:
                    cache.clear()
        spike = plan.latency_spike(key)
        if spike > 0.0:
            self.stats.record("latency_spikes")
            self._sleep(spike)
        if plan.transient_error(key):
            self.stats.record("transient_errors")
            raise InjectedFaultError("serve", key)

    def before_flush(self, key: object) -> None:
        """Per-flush hook (``MicroBatcher._flush``): maybe stall."""
        stall = self.plan.queue_stall(key)
        if stall > 0.0:
            self.stats.record("stalls")
            self._sleep(stall)

    def before_cell(self, key: object) -> None:
        """Per-cell hook (:func:`repro.core.runner.run_spec`)."""
        if self.plan.cell_fault(key):
            self.stats.record("cell_faults")
            raise InjectedFaultError("run_spec", key)
