"""repro.faults — deterministic fault injection for chaos testing.

Every failure mode the serving stack must survive (transient worker
errors, latency spikes, cache-eviction storms, queue stalls, grid-cell
crashes) is injectable through a seeded :class:`FaultPlan`, so resilience
behaviour is bit-reproducible instead of flaky.  See
:mod:`repro.serve.resilience` for the policies that absorb these faults
and ``repro chaos`` for the CLI drill.
"""

from repro.faults.plan import (
    DEFAULT_FAULT_PLAN,
    FaultInjector,
    FaultPlan,
    FaultStats,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "DEFAULT_FAULT_PLAN",
]
