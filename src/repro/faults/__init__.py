"""repro.faults — deterministic fault injection for chaos testing.

Every failure mode the serving stack must survive (transient worker
errors, latency spikes, cache-eviction storms, queue stalls, grid-cell
crashes, torn writes, bitflips, full disks, lying fsyncs) is injectable
through a seeded :class:`FaultPlan`, so resilience behaviour is
bit-reproducible instead of flaky.  See :mod:`repro.serve.resilience`
for the policies that absorb the service faults,
:mod:`repro.core.storage` for the durability layer the disk faults
exercise, and ``repro chaos`` / ``repro chaos --disk`` for the CLI
drills.
"""

from repro.faults.plan import (
    DEFAULT_FAULT_PLAN,
    DISK_FAULT_PLAN,
    FaultInjector,
    FaultPlan,
    FaultStats,
    FaultyFile,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FaultyFile",
    "DEFAULT_FAULT_PLAN",
    "DISK_FAULT_PLAN",
]
