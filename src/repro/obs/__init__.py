"""repro.obs — zero-dependency observability for the serving stack.

Five pieces, all in-process and stdlib+numpy only:

* :class:`Tracer` / :class:`Span` (:mod:`repro.obs.tracer`) — nested
  spans with monotonic start/duration, span/parent ids, and structured
  attributes; thread-safe collection; CRC-framed JSONL export.  Spans
  cross process boundaries: shard workers run their own tracer in a
  namespaced id block (:func:`~repro.obs.tracer.worker_id_start`) and
  ship buffered spans back over the result pipe, where the parent
  :meth:`~repro.obs.tracer.Tracer.absorb`\\ s them into one coherent
  tree.  **Off by default**: the global tracer is a disabled singleton
  until :func:`set_tracer` / :func:`use_tracer` installs a live one, so
  instrumented hot paths cost one attribute check when tracing is off.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — named counters /
  gauges / histograms with label sets, one ``snapshot()``/``render()``
  over what ``StatsRecorder``, ``LRUCache``, ``FaultInjector.stats`` and
  ``CircuitBreaker.trips`` each count separately
  (:func:`collect_service_metrics` does the mapping, idempotently).
* continuous telemetry (:mod:`repro.obs.telemetry`) — a background
  :class:`TelemetrySampler` scraping every registered collector on a
  cadence into a ring-buffer timeline with multi-window SLO burn-rate
  alerts, exported as a CRC-framed, fsck-able artifact.
* trace analysis (:mod:`repro.obs.summary`) — reload an exported trace,
  reconstruct the span tree, and print a per-stage latency breakdown
  (``repro trace summarize``); flame export (:mod:`repro.obs.flame`)
  turns the same trace into folded stacks and speedscope JSON
  (``repro trace flame``).
* the live dashboard (:mod:`repro.obs.dashboard`) — ``repro top``
  renders a timeline into one screen of qps, latency/queue-wait
  percentiles, hit rates, breaker/shard health, fairness, and alerts.

The span taxonomy wired through the stack is documented in DESIGN.md
§Observability and §14 (cross-process propagation); ``repro serve-bench
--trace out.jsonl`` produces a stitched trace end to end.
"""

from repro.obs.dashboard import render_dashboard
from repro.obs.flame import (
    folded_stacks,
    speedscope_document,
    write_folded,
    write_speedscope,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_service_metrics,
    collect_storage_metrics,
)
from repro.obs.summary import (
    TraceSummary,
    load_spans,
    render_span_tree,
    span_children,
    span_depths,
    summarize_spans,
)
from repro.obs.telemetry import (
    TELEMETRY_EVENT_KIND,
    BurnRatePolicy,
    TelemetrySampler,
    deterministic_fields,
    load_telemetry,
    max_sample_gap_s,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_EVENT_KIND,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
    worker_id_start,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "TRACE_EVENT_KIND",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "worker_id_start",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_service_metrics",
    "collect_storage_metrics",
    "TraceSummary",
    "load_spans",
    "summarize_spans",
    "render_span_tree",
    "span_children",
    "span_depths",
    "TELEMETRY_EVENT_KIND",
    "BurnRatePolicy",
    "TelemetrySampler",
    "deterministic_fields",
    "load_telemetry",
    "max_sample_gap_s",
    "render_dashboard",
    "folded_stacks",
    "speedscope_document",
    "write_folded",
    "write_speedscope",
]
