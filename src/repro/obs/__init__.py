"""repro.obs — zero-dependency observability for the serving stack.

Three pieces, all in-process and stdlib+numpy only:

* :class:`Tracer` / :class:`Span` (:mod:`repro.obs.tracer`) — nested
  spans with monotonic start/duration, span/parent ids, and structured
  attributes; thread-safe collection; JSONL export.  **Off by default**:
  the global tracer is a disabled singleton until :func:`set_tracer` /
  :func:`use_tracer` installs a live one, so instrumented hot paths cost
  one attribute check when tracing is off.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — named counters /
  gauges / histograms with label sets, one ``snapshot()``/``render()``
  over what ``StatsRecorder``, ``LRUCache``, ``FaultInjector.stats`` and
  ``CircuitBreaker.trips`` each count separately
  (:func:`collect_service_metrics` does the mapping).
* trace analysis (:mod:`repro.obs.summary`) — reload an exported trace,
  reconstruct the span tree, and print a per-stage latency breakdown
  (``repro trace summarize``).

The span taxonomy wired through the stack is documented in DESIGN.md
§Observability; ``repro serve-bench --trace out.jsonl`` produces a trace
end to end.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_service_metrics,
    collect_storage_metrics,
)
from repro.obs.summary import (
    TraceSummary,
    load_spans,
    render_span_tree,
    summarize_spans,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_service_metrics",
    "collect_storage_metrics",
    "TraceSummary",
    "load_spans",
    "summarize_spans",
    "render_span_tree",
]
