"""A labelled metrics registry: counters, gauges, histograms.

The serving stack already counts things in four unrelated places —
:class:`~repro.serve.stats.StatsRecorder` (request/latency counters),
:class:`~repro.serve.cache.LRUCache` (hit/miss), ``FaultInjector.stats``
(injected faults), and ``CircuitBreaker.trips`` — each with its own ad-hoc
snapshot and render.  :class:`MetricsRegistry` is the single vocabulary
over all of them: named instruments with label sets, one ``snapshot()``
(plain dict, JSON-friendly) and one ``render()`` (ASCII table).
:func:`collect_service_metrics` maps a live service (and optionally its
resilience wrapper) onto that vocabulary at a point in time.

Metric names are dotted, labels identify the sub-stream::

    registry.counter("cache.lookups", level="result", outcome="hit").inc()
    registry.histogram("serve.latency_s").observe(0.012)
"""

from __future__ import annotations

import threading

import numpy as np

from repro.utils.tables import Table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_service_metrics",
]


def _label_suffix(labels: tuple) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class _Instrument:
    """Shared identity: a name plus a frozen, sorted label set."""

    kind = "instrument"

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        """Render key: ``name{label=value,...}``."""
        return self.name + _label_suffix(self.labels)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got inc({n})")
        with self._lock:
            self._value += n

    def set_absolute(self, value: int) -> None:
        """Set the counter to an externally-maintained cumulative total.

        Collectors scrape sources that own their own cumulative counts
        (``ServiceStats``, ``FaultStats``, cache snapshots); ``inc``
        would compound the source total on every scrape, so periodic
        sampling writes the absolute value instead — scraping twice is
        the same as scraping once.
        """
        if value < 0:
            raise ValueError(
                f"counters cannot be negative; got set_absolute({value})"
            )
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A point-in-time value (set, not accumulated)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """A distribution of observations with exact percentiles.

    Observations are kept in full (registry lifetimes here are bench and
    drill runs, not months), so ``percentile`` matches
    ``np.percentile`` on the raw samples exactly.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: tuple):
        super().__init__(name, labels)
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def sum(self) -> float:
        with self._lock:
            return float(sum(self._values))

    @property
    def mean(self) -> float:
        with self._lock:
            return float(np.mean(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile of the observations (0.0 when empty)."""
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.percentile(np.asarray(self._values, float), q))

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)


class MetricsRegistry:
    """Get-or-create registry of labelled instruments.

    The same ``(name, labels)`` pair always returns the same instrument;
    requesting it as a different kind is an error (one name, one meaning).
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}

    def _get(self, kind: str, name: str, labels: dict):
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        cls = self._KINDS[kind]
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = self._instruments[key] = cls(name, key[1])
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {inst.key!r} already registered as a "
                    f"{inst.kind}, not a {kind}"
                )
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    def instruments(self) -> list[_Instrument]:
        """All instruments, sorted by render key."""
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.key)

    def snapshot(self) -> dict[str, object]:
        """Freeze every instrument into a plain, JSON-friendly dict.

        Counters and gauges map to their value; histograms to a
        ``{count, mean, p50, p95, sum}`` sub-dict.
        """
        out: dict[str, object] = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                out[inst.key] = {
                    "count": inst.count,
                    "mean": inst.mean,
                    "p50": inst.percentile(50),
                    "p95": inst.percentile(95),
                    "sum": inst.sum,
                }
            else:
                out[inst.key] = inst.value
        return out

    def render(self, title: str = "metrics") -> str:
        """ASCII table of the registry (one row per instrument)."""
        t = Table(["metric", "kind", "value"], title=title)
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                value = (
                    f"n={inst.count} mean={inst.mean:.6g} "
                    f"p50={inst.percentile(50):.6g} "
                    f"p95={inst.percentile(95):.6g}"
                )
            elif isinstance(inst, Gauge):
                value = f"{inst.value:.6g}"
            else:
                value = str(inst.value)
            t.add_row([inst.key, inst.kind, value])
        return t.render()


def collect_service_metrics(
    service, resilient=None, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Unify a live service's scattered counters into one registry.

    Maps :class:`~repro.serve.stats.ServiceStats` (request outcomes,
    latency percentiles, resilience counters), both
    :class:`~repro.serve.cache.LRUCache` levels, the fault injector's
    :class:`~repro.faults.FaultStats`, and — when the ``resilient``
    wrapper is given — per-route circuit-breaker state onto labelled
    instruments.  Idempotent: counters are written as absolute values
    from the sources' own cumulative counts, so the telemetry sampler
    can scrape the same registry every interval without compounding.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stats = service.stats()

    for event, count in (
        ("submitted", stats.n_submitted),
        ("completed", stats.n_completed),
        ("failed", stats.n_failed),
        ("rejected_overload", stats.n_rejected),
        ("rejected_closed", stats.n_closed_rejects),
        ("timeout", stats.n_timeouts),
        ("late_discard", stats.n_late_discards),
    ):
        registry.counter("serve.requests", event=event).set_absolute(count)
    registry.counter("serve.batches").set_absolute(stats.n_batches)
    registry.gauge("serve.batch_occupancy").set(stats.batch_occupancy)
    registry.gauge("serve.throughput_rps").set(stats.throughput_rps)
    registry.gauge("serve.latency_s", quantile="p50").set(stats.p50_latency_s)
    registry.gauge("serve.latency_s", quantile="p95").set(stats.p95_latency_s)
    registry.gauge("serve.queue_wait_s", quantile="p50").set(
        stats.p50_queue_wait_s
    )
    registry.gauge("serve.queue_wait_s", quantile="p95").set(
        stats.p95_queue_wait_s
    )

    for level, cache in (
        ("prepare", service.prepare_cache),
        ("result", service.result_cache),
    ):
        if cache is None:
            continue
        # One locked snapshot per level: reading hits and misses as two
        # separate calls can tear around a concurrent lookup and report
        # a hit rate above 1.0.
        hits, misses, size = cache.snapshot()
        registry.counter(
            "cache.lookups", level=level, outcome="hit"
        ).set_absolute(hits)
        registry.counter(
            "cache.lookups", level=level, outcome="miss"
        ).set_absolute(misses)
        registry.gauge("cache.entries", level=level).set(size)
        registry.gauge("cache.capacity", level=level).set(cache.capacity)

    # Prefix-reuse layer: snapshot cache hit/miss plus decode grouping.
    if stats.prefix_hits or stats.prefix_misses:
        registry.counter(
            "cache.lookups", level="prefix", outcome="hit"
        ).set_absolute(stats.prefix_hits)
        registry.counter(
            "cache.lookups", level="prefix", outcome="miss"
        ).set_absolute(stats.prefix_misses)
    if stats.n_groups:
        registry.counter("serve.prefix_groups").set_absolute(stats.n_groups)
        registry.counter("serve.grouped_requests").set_absolute(
            stats.n_group_served
        )
        registry.gauge("serve.mean_group_width").set(stats.mean_group_width)

    if service.faults is not None:
        for kind, count in service.faults.stats.snapshot().items():
            registry.counter("faults.injected", kind=kind).set_absolute(count)

    # Sharded backend: topology and worker-death accounting (duck-typed;
    # the single-process service has no shard_info attribute).
    shard_info = getattr(service, "shard_info", None)
    if shard_info is not None:
        registry.gauge("serve.shards").set(shard_info["n_shards"])
        registry.gauge("serve.shards_failed").set(shard_info["failed"])
        registry.counter("serve.shard_respawns").set_absolute(
            shard_info["respawns"]
        )
        registry.counter("serve.shard_crashed_tickets").set_absolute(
            shard_info["crashed_tickets"]
        )

    for name, count in (
        ("logical", stats.n_logical),
        ("retries", stats.n_retries),
        ("breaker_trips", stats.n_breaker_trips),
        ("degraded", stats.n_degraded),
        ("unavailable", stats.n_unavailable),
    ):
        registry.counter(f"resilience.{name}").set_absolute(count)
    registry.gauge("resilience.availability").set(stats.availability)

    if resilient is not None:
        for route, breaker in resilient.breakers.items():
            registry.counter("breaker.trips", route=route).set_absolute(
                breaker.trips
            )
            registry.gauge("breaker.open", route=route).set(
                1.0 if breaker.state == "open" else 0.0
            )

    collect_storage_metrics(registry)
    return registry


def collect_storage_metrics(
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Map the process-wide storage-integrity counters onto the registry.

    ``storage.crc_failures`` (frames whose checksum did not verify),
    ``storage.records_quarantined`` (lines copied to ``.quarantine``
    sidecars), and ``storage.recoveries`` (tolerant loads or repairs
    that found damage).  All zero on a healthy node — any non-zero value
    is an alarm, not noise.
    """
    # Imported lazily: storage pulls in the runner/obs stack and the
    # metrics module must stay importable on its own.
    from repro.core.storage import integrity_counters

    registry = registry if registry is not None else MetricsRegistry()
    for name, count in integrity_counters().items():
        registry.counter(f"storage.{name}").set_absolute(count)
    return registry
