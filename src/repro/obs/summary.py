"""Trace-file analysis: reconstruct the span tree, break down latency.

``repro trace summarize out.jsonl`` is built on this module: it loads the
spans exported by :meth:`~repro.obs.tracer.Tracer.export_jsonl`,
reconstructs parent/child structure, and aggregates per stage (span name)
— count, total, mean, p50/p95, and share of the traced wall time.  Stage
rows are indented by their depth in the reconstructed tree, so the table
reads as the span taxonomy itself::

    stage                  | count | total | mean | p50 | p95 | share
    serve.request          |    48 | ...
      serve.queue_wait     |    48 | ...
      serve.prepare        |    10 | ...
      serve.generate       |    10 | ...
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.obs.tracer import Span
from repro.utils.tables import Table
from repro.utils.timing import format_duration

__all__ = ["load_spans", "span_children", "span_depths", "TraceSummary",
           "summarize_spans", "render_span_tree"]


def _is_framed_trace(path) -> bool:
    """True when the file opens with a storage-v2 events header."""
    try:
        with open(Path(path), "rb") as fh:
            first = fh.readline(4096)
        header = json.loads(first.decode("utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return False
    return isinstance(header, dict) and "format" in header and "version" in header


def load_spans(path) -> list[Span]:
    """Read a trace file back into :class:`Span` records.

    Current exports are CRC-framed storage-v2 event snapshots (kind
    ``"trace"``, detected from the header line and verified frame by
    frame); legacy bare-line JSONL traces from earlier releases are
    still read.  Blank lines are skipped; a malformed legacy line raises
    ``ValueError`` with its line number (trace files are written
    atomically per line, so damage means the file is not a trace, not a
    crashed run).
    """
    if _is_framed_trace(path):
        # Lazy import: repro.core.storage imports repro.obs at module
        # level, so the obs side must not import it back at import time.
        from repro.core.storage import load_events_jsonl

        from repro.obs.tracer import TRACE_EVENT_KIND

        records = load_events_jsonl(Path(path), kind=TRACE_EVENT_KIND)
        try:
            return [Span.from_dict(rec) for rec in records]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: not a span record ({exc})") from None
    spans: list[Span] = []
    with open(Path(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a span record ({exc})"
                ) from None
    return spans


def span_children(spans: list[Span]) -> dict[int | None, list[Span]]:
    """Parent-id → children map (roots and orphans under ``None``).

    An orphan — a span whose parent id never appears, e.g. when a trace
    was truncated — is treated as a root rather than dropped.
    """
    known = {span.span_id for span in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in known else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_s, s.span_id))
    return children


def span_depths(spans: list[Span]) -> dict[int, int]:
    """span_id → depth in the reconstructed tree (roots at 0)."""
    known = {span.span_id: span for span in spans}
    depths: dict[int, int] = {}

    def depth(span: Span) -> int:
        got = depths.get(span.span_id)
        if got is not None:
            return got
        parent = known.get(span.parent_id)
        d = 0 if parent is None else depth(parent) + 1
        depths[span.span_id] = d
        return d

    for span in spans:
        depth(span)
    return depths


class TraceSummary:
    """Per-stage aggregation of one trace, renderable as a table."""

    def __init__(self, spans: list[Span]):
        self.spans = spans
        self.children = span_children(spans)
        depths = span_depths(spans)
        roots = self.children.get(None, [])
        self.n_roots = len(roots)
        #: Wall time actually covered by roots: the denominator of shares.
        self.wall_s = float(sum(span.duration_s for span in roots))

        stages: dict[str, dict] = {}
        for span in spans:
            stage = stages.setdefault(
                span.name,
                {"durations": [], "depth": depths[span.span_id],
                 "first": span.start_s},
            )
            stage["durations"].append(span.duration_s)
            stage["depth"] = min(stage["depth"], depths[span.span_id])
            stage["first"] = min(stage["first"], span.start_s)
        self.stages = stages

    def rows(self) -> list[dict]:
        """One aggregate row per stage, in (depth, first-seen) order."""
        out = []
        for name, stage in sorted(
            self.stages.items(),
            key=lambda kv: (kv[1]["depth"], kv[1]["first"], kv[0]),
        ):
            d = np.asarray(stage["durations"], dtype=float)
            total = float(d.sum())
            out.append({
                "stage": name,
                "depth": stage["depth"],
                "count": int(d.size),
                "total_s": total,
                "mean_s": float(d.mean()),
                "p50_s": float(np.percentile(d, 50)),
                "p95_s": float(np.percentile(d, 95)),
                "share": (total / self.wall_s) if self.wall_s > 0 else 0.0,
            })
        return out

    def render(self, title: str = "") -> str:
        """The per-stage latency breakdown table."""
        if not title:
            title = (
                f"trace summary ({len(self.spans)} spans, "
                f"{self.n_roots} roots, "
                f"wall {format_duration(self.wall_s)})"
            )
        t = Table(
            ["stage", "count", "total", "mean", "p50", "p95", "share"],
            title=title,
        )
        for row in self.rows():
            t.add_row([
                "  " * row["depth"] + row["stage"],
                row["count"],
                format_duration(row["total_s"]),
                format_duration(row["mean_s"]),
                format_duration(row["p50_s"]),
                format_duration(row["p95_s"]),
                f"{row['share']:.0%}",
            ])
        return t.render()


def summarize_spans(spans: list[Span]) -> TraceSummary:
    """Aggregate loaded spans into a :class:`TraceSummary`."""
    return TraceSummary(spans)


def render_span_tree(spans: list[Span], max_roots: int = 1) -> str:
    """Render the first ``max_roots`` reconstructed trees, one span per line.

    A concrete sample to read alongside the aggregate table — e.g. one
    request's ``serve.request → queue_wait/prepare/generate`` breakdown.
    An orphaned subtree — spans whose parent id never arrived, e.g. when
    a SIGKILLed shard lost its buffered spans — still renders, rooted at
    the orphan and marked ``!orphan(parent=N lost)`` instead of being
    dropped or crashing the walk.
    """
    children = span_children(spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = ""
        if span.attributes:
            attrs = " " + " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
        mark = ""
        if depth == 0 and span.parent_id is not None:
            mark = f" !orphan(parent={span.parent_id} lost)"
        lines.append(
            f"{'  ' * depth}{span.name} "
            f"[{format_duration(span.duration_s)}]{mark}{attrs}"
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, [])[:max_roots]:
        walk(root, 0)
    return "\n".join(lines)
