"""The ``repro top`` dashboard: one screen of truth from a timeline.

Renders the operator view of a telemetry timeline (the ring exported by
:class:`~repro.obs.telemetry.TelemetrySampler`): current qps and latency
percentiles, queue wait, cache and prefix hit rates, circuit-breaker
state, shard health, tenant fairness, storage integrity, and the most
recent SLO burn alerts.  Pure rendering — the CLI owns the read/refresh
loop, this module turns ``records -> str`` so tests can pin the output
without a terminal.

Rates are computed two ways on purpose: *qps* is a windowed delta of the
completed-requests counter (what is happening **now**), while hit rates
are ratios of the cumulative counters (what the run has done so far) —
a windowed hit rate on a quiet cache is just noise.
"""

from __future__ import annotations

import re

from repro.utils.tables import Table
from repro.utils.timing import format_duration

__all__ = ["render_dashboard"]

_LABELLED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")


def _labelled(metrics: dict, name: str) -> dict[str, float]:
    """All entries of ``name{...}`` keyed by their label suffix."""
    out: dict[str, float] = {}
    for key, value in metrics.items():
        m = _LABELLED.match(key)
        if m and m.group("name") == name and isinstance(value, (int, float)):
            out[m.group("labels")] = float(value)
    return out


def _num(metrics: dict, key: str, default: float = 0.0) -> float:
    value = metrics.get(key, default)
    return float(value) if isinstance(value, (int, float)) else default


def _window_rate(records: list[dict], key: str, window_s: float) -> float:
    """Delta of a cumulative counter over the trailing window, per second."""
    samples = [r for r in records if r.get("type") == "sample"]
    if len(samples) < 2:
        return 0.0
    newest = samples[-1]
    cutoff = float(newest["t_mono"]) - window_s
    oldest = next(
        (r for r in samples if float(r["t_mono"]) >= cutoff), samples[0]
    )
    dt = float(newest["t_mono"]) - float(oldest["t_mono"])
    if oldest is newest or dt <= 0:
        return 0.0
    delta = _num(newest["metrics"], key) - _num(oldest["metrics"], key)
    return max(delta, 0.0) / dt


def _hit_rate(metrics: dict, level: str) -> float | None:
    hits = _num(metrics, f"cache.lookups{{level={level},outcome=hit}}")
    misses = _num(metrics, f"cache.lookups{{level={level},outcome=miss}}")
    total = hits + misses
    return (hits / total) if total else None


def render_dashboard(
    records: list[dict],
    *,
    window_s: float = 10.0,
    title: str = "repro top",
) -> str:
    """Render the dashboard for a timeline (most recent sample wins)."""
    samples = [r for r in records if r.get("type") == "sample"]
    if not samples:
        return f"{title}: no samples yet"
    last = samples[-1]
    m = last["metrics"]

    t = Table(["signal", "value"], title=(
        f"{title} — sample #{last['seq']} "
        f"({len(samples)} samples in window)"
    ))
    t.add_row([
        "qps (completed)",
        f"{_window_rate(records, 'serve.requests{event=completed}', window_s):.1f}",
    ])
    t.add_row([
        "latency p50 / p95",
        f"{format_duration(_num(m, 'serve.latency_s{quantile=p50}'))} / "
        f"{format_duration(_num(m, 'serve.latency_s{quantile=p95}'))}",
    ])
    t.add_row([
        "queue wait p50 / p95",
        f"{format_duration(_num(m, 'serve.queue_wait_s{quantile=p50}'))} / "
        f"{format_duration(_num(m, 'serve.queue_wait_s{quantile=p95}'))}",
    ])
    for level in ("prepare", "result", "prefix"):
        rate = _hit_rate(m, level)
        if rate is not None:
            t.add_row([f"{level}-cache hit rate", f"{rate:.0%}"])

    open_routes = [
        labels for labels, value in _labelled(m, "breaker.open").items()
        if value >= 1.0
    ]
    trips = sum(_labelled(m, "breaker.trips").values())
    if open_routes:
        t.add_row(["breaker state", "OPEN: " + ", ".join(sorted(open_routes))])
    elif trips or _labelled(m, "breaker.open"):
        t.add_row(["breaker state", f"closed ({int(trips)} trips)"])

    if "serve.shards" in m:
        n = int(_num(m, "serve.shards"))
        failed = int(_num(m, "serve.shards_failed"))
        respawns = int(_num(m, "serve.shard_respawns"))
        t.add_row([
            "shards healthy",
            f"{n - failed}/{n} ({respawns} respawns)",
        ])

    if "sessions.fairness_jain" in m:
        t.add_row([
            "tenant fairness (Jain)",
            f"{_num(m, 'sessions.fairness_jain'):.3f}",
        ])
    unavailable = _num(m, "resilience.unavailable")
    logical = _num(m, "resilience.logical")
    if logical:
        t.add_row([
            "availability",
            f"{1.0 - unavailable / logical:.2%}",
        ])

    integrity = sum(
        _num(m, f"storage.{name}")
        for name in ("crc_failures", "records_quarantined", "recoveries")
    )
    t.add_row([
        "storage integrity",
        "clean" if integrity == 0 else f"DAMAGE ({int(integrity)} events)",
    ])

    alerts = [r for r in records if r.get("type") == "alert"]
    for alert in alerts[-3:]:
        t.add_row([
            f"alert #{alert['seq']}",
            f"{alert.get('alert', '?')} "
            f"short={alert.get('short_burn', 0.0):.1f}x "
            f"long={alert.get('long_burn', 0.0):.1f}x",
        ])
    if not alerts:
        t.add_row(["alerts", "none"])
    return t.render()
