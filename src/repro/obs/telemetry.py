"""Continuous telemetry: a sampler thread, a ring-buffer timeline, alerts.

Point-in-time collectors (:func:`~repro.obs.metrics.collect_service_metrics`
and friends) answer "what is the system doing *now*"; this module answers
"what has it been doing" — the question a nightly soak or a chaos drill
actually asks.  A :class:`TelemetrySampler` scrapes every registered
collector into a fresh :class:`~repro.obs.metrics.MetricsRegistry` at a
fixed cadence and appends one **sample** record to a bounded in-memory
ring buffer:

    {"type": "sample", "seq": N, "t_wall": ..., "t_mono": ..., "metrics": {...}}

``seq`` is the sampler's own contiguous payload sequence — distinct from
the storage framing sequence — so a timeline loaded back from disk can
prove it is complete (no dropped samples) and honest (duplicates from an
at-least-once exporter are detected and deduped, see
:func:`load_telemetry`).  The ``repro chaos`` telemetry drill drives both
failure modes through the deterministic fault plan
(``telemetry_drop_rate`` / ``telemetry_dup_rate``).

Each sample also feeds a multi-window **SLO burn-rate** evaluation
(:class:`BurnRatePolicy`): the error-budget burn is computed over a short
and a long trailing window, and when *both* exceed the alert threshold an
**alert** record lands in the same timeline on the rising edge — fast
enough to catch a sudden cliff, slow enough not to page on one blip.

Timelines export as CRC-framed storage-v2 JSONL (kind ``"telemetry"``),
so ``repro fsck`` verifies and repairs them like every other artifact.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TELEMETRY_EVENT_KIND",
    "BurnRatePolicy",
    "TimelineReport",
    "TelemetrySampler",
    "deterministic_fields",
    "load_telemetry",
    "max_sample_gap_s",
]

#: Event-journal kind tag for telemetry timelines (``repro fsck``).
TELEMETRY_EVENT_KIND = "telemetry"

#: Metric-key prefixes whose final values are pure functions of the run's
#: seeds (fault plans, schedules) — the fields the chaos drill pins
#: bit-identical across runs.  Availability is excluded (a ratio over
#: wall-clock-dependent totals on some paths), and so are the telemetry
#: drop/dup fault counts: each *decision* is seed-deterministic per
#: sample seq, but how many samples a run takes is wall-clock.
_DETERMINISTIC_PREFIXES = ("faults.injected", "resilience.")
_DETERMINISTIC_EXCLUDE = (
    "resilience.availability",
    "faults.injected{kind=telemetry_drops}",
    "faults.injected{kind=telemetry_dups}",
)


@dataclass(frozen=True)
class BurnRatePolicy:
    """Multi-window error-budget burn alerting (the SRE workbook shape).

    ``objective`` is the error budget: the fraction of requests allowed
    to fail (0.01 = a 99% availability objective).  The burn rate over a
    window is ``(error rate in window) / objective`` — 1.0 means the
    budget is being spent exactly as fast as it accrues.  An alert fires
    when the burn exceeds ``threshold`` in **both** the short and the
    long window: the long window proves the burn is sustained, the short
    window makes the alert reset quickly once the incident ends.
    """

    objective: float = 0.01
    short_window_s: float = 5.0
    long_window_s: float = 60.0
    threshold: float = 2.0
    #: Counter key charged against the budget.
    error_key: str = "resilience.unavailable"
    #: Counter key of the request total the budget is a fraction of.
    total_key: str = "serve.requests{event=submitted}"

    def __post_init__(self):
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(
                f"objective must be in (0, 1], got {self.objective}"
            )
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError(
                "short_window_s must not exceed long_window_s "
                f"({self.short_window_s} > {self.long_window_s})"
            )
        if self.threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")


class TelemetrySampler:
    """Scrape registered collectors on a cadence into a ring of samples.

    Parameters
    ----------
    interval_s:
        Sampler cadence.  The background thread re-arms off a monotonic
        deadline, so a slow scrape does not stretch the period.
    capacity:
        Ring-buffer bound (oldest samples fall off; the exported file
        holds whatever the ring holds at export time).
    policy:
        Burn-rate alerting policy, or ``None`` to disable alerts.
    injector:
        Optional :class:`~repro.faults.FaultInjector` whose
        ``on_telemetry_sample`` hook decides each sample's fate in
        drills (keep / drop / duplicate).

    Collectors are callables taking the scrape registry; bind sources
    with closures::

        sampler.add_collector(
            "service", lambda reg: collect_service_metrics(s, registry=reg)
        )
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        *,
        capacity: int = 4096,
        policy: BurnRatePolicy | None = None,
        injector=None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.policy = policy
        self._injector = injector
        self._collectors: list[tuple[str, object]] = []
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._seq = itertools.count()
        self._scrape_errors = 0
        self._burning = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- wiring --------------------------------------------------------- #
    def add_collector(self, name: str, fn) -> None:
        """Register ``fn(registry)`` to run on every scrape."""
        with self._lock:
            self._collectors.append((name, fn))

    @property
    def scrape_errors(self) -> int:
        """Scrapes in which at least one collector raised."""
        with self._lock:
            return self._scrape_errors

    # -- sampling ------------------------------------------------------- #
    def sample(self) -> dict | None:
        """Take one sample now; returns the record (None when dropped).

        Runs every collector into a fresh registry (collectors are
        idempotent absolute-value writers, but a fresh registry also
        drops instruments that stopped being reported).  A collector
        that raises is skipped and counted — one sick source must not
        blind the whole timeline.
        """
        registry = MetricsRegistry()
        with self._lock:
            collectors = list(self._collectors)
        failed = 0
        for _name, fn in collectors:
            try:
                fn(registry)
            except Exception:
                failed += 1
        seq = next(self._seq)
        record = {
            "type": "sample",
            "seq": seq,
            "t_wall": time.time(),
            "t_mono": time.monotonic(),
            "metrics": registry.snapshot(),
        }
        copies = 1
        if self._injector is not None:
            fate = self._injector.on_telemetry_sample(seq)
            if fate == "drop":
                # The payload seq is consumed: the timeline carries a
                # provable gap instead of silently renumbering.
                with self._lock:
                    self._scrape_errors += failed
                return None
            if fate == "dup":
                copies = 2
        with self._lock:
            self._scrape_errors += failed
            for _ in range(copies):
                self._records.append(record)
            alert = self._evaluate_burn_locked(record)
            if alert is not None:
                self._records.append(alert)
            del self._records[: -self.capacity]
        return record

    def _evaluate_burn_locked(self, sample: dict) -> dict | None:
        """Burn-rate check against the ring; rising-edge alert record."""
        policy = self.policy
        if policy is None:
            return None
        short = self._window_burn_locked(policy, policy.short_window_s)
        long_ = self._window_burn_locked(policy, policy.long_window_s)
        burning = (
            short is not None and long_ is not None
            and short > policy.threshold and long_ > policy.threshold
        )
        was_burning, self._burning = self._burning, burning
        if not burning or was_burning:
            return None
        return {
            "type": "alert",
            "seq": next(self._seq),
            "t_wall": sample["t_wall"],
            "t_mono": sample["t_mono"],
            "alert": "slo-burn",
            "short_burn": short,
            "long_burn": long_,
            "objective": policy.objective,
            "threshold": policy.threshold,
        }

    def _window_burn_locked(
        self, policy: BurnRatePolicy, window_s: float
    ) -> float | None:
        """Budget burn over the trailing window (None: not enough data)."""
        samples = [r for r in self._records if r["type"] == "sample"]
        if len(samples) < 2:
            return None
        newest = samples[-1]
        cutoff = newest["t_mono"] - window_s
        oldest = None
        for rec in samples:
            if rec["t_mono"] >= cutoff:
                oldest = rec
                break
        if oldest is None or oldest is newest:
            return None

        def read(rec: dict, key: str) -> float:
            value = rec["metrics"].get(key, 0)
            return float(value) if isinstance(value, (int, float)) else 0.0

        d_err = read(newest, policy.error_key) - read(oldest, policy.error_key)
        d_total = (
            read(newest, policy.total_key) - read(oldest, policy.total_key)
        )
        if d_total <= 0:
            return 0.0
        return (max(d_err, 0.0) / d_total) / policy.objective

    # -- background thread ---------------------------------------------- #
    def start(self) -> "TelemetrySampler":
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, final_sample: bool = True) -> None:
        """Stop the thread; take one last sample so the end state lands."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        if final_sample:
            self.sample()

    def _run(self) -> None:
        deadline = time.monotonic()
        while True:
            self.sample()
            deadline += self.interval_s
            delay = deadline - time.monotonic()
            if delay <= 0:
                # Scrape overran the interval: re-anchor instead of
                # bursting catch-up samples.
                deadline = time.monotonic()
                continue
            if self._stop.wait(delay):
                return

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- access & export ------------------------------------------------ #
    def records(self) -> list[dict]:
        """Snapshot of the ring (samples and alerts, in arrival order)."""
        with self._lock:
            return list(self._records)

    def export_jsonl(self, path) -> int:
        """Write the timeline as a CRC-framed v2 snapshot; record count."""
        # Lazy import: repro.core.storage imports repro.obs at module
        # level, so the obs side must not import it back at import time.
        from repro.core.storage import save_events_jsonl

        records = self.records()
        save_events_jsonl(records, Path(path), kind=TELEMETRY_EVENT_KIND)
        return len(records)


# ---------------------------------------------------------------------- #
# Loading & integrity accounting
# ---------------------------------------------------------------------- #
@dataclass
class TimelineReport:
    """What :func:`load_telemetry` found in one timeline file.

    ``n_dropped`` counts payload-sequence gaps (samples that never made
    it into the timeline); ``n_duplicates`` counts records that appeared
    more than once and were deduped.  Both are judged on the sampler's
    own ``seq`` field, independent of the storage framing — a timeline
    that frames perfectly can still have lost samples.
    """

    n_samples: int = 0
    n_alerts: int = 0
    n_dropped: int = 0
    n_duplicates: int = 0
    max_gap_s: float = 0.0


class Timeline(list):
    """A loaded timeline; carries its :class:`TimelineReport` as ``.report``."""

    report: TimelineReport


def load_telemetry(path, *, tolerate_partial: bool = False) -> Timeline:
    """Read a telemetry timeline; dedupe and account for lost samples.

    Returns the records in payload-sequence order with duplicates
    removed, carrying a :class:`TimelineReport` as ``.report``.
    """
    from repro.core.storage import load_events_jsonl

    raw = load_events_jsonl(
        Path(path),
        kind=TELEMETRY_EVENT_KIND,
        tolerate_partial=tolerate_partial,
    )
    report = TimelineReport()
    by_seq: dict[int, dict] = {}
    for rec in raw:
        seq = int(rec.get("seq", -1))
        if seq in by_seq:
            report.n_duplicates += 1
            continue
        by_seq[seq] = rec
    records = [by_seq[seq] for seq in sorted(by_seq)]
    if by_seq:
        expected = max(by_seq) - min(by_seq) + 1
        report.n_dropped = expected - len(by_seq)
    report.n_samples = sum(1 for r in records if r.get("type") == "sample")
    report.n_alerts = sum(1 for r in records if r.get("type") == "alert")
    report.max_gap_s = max_sample_gap_s(records)
    out = Timeline(records)
    out.report = report
    return out


def max_sample_gap_s(records: list[dict]) -> float:
    """Largest per-tick monotonic gap between consecutive samples.

    The chaos drill's liveness bound: with the sampler at interval ``i``,
    a healthy timeline never gaps past ``2 * i`` even while shards are
    being killed — telemetry must survive what it observes.

    An *injected* drop consumes a payload seq, so the hole it leaves is
    provable; the time gap across it is divided by the number of sampler
    ticks it spans (seq distance, minus alert records, which also
    consume seqs).  That keeps the metric about the sampler's own
    cadence: a dropped export is the fault injector's doing, a stretched
    tick is a stall.
    """
    samples = sorted(
        (int(r.get("seq", -1)), float(r["t_mono"]))
        for r in records
        if r.get("type") == "sample"
    )
    if len(samples) < 2:
        return 0.0
    alert_seqs = [
        int(r.get("seq", -1)) for r in records if r.get("type") == "alert"
    ]
    worst = 0.0
    for (seq_a, t_a), (seq_b, t_b) in zip(samples, samples[1:]):
        if seq_b == seq_a:  # duplicate delivery of the same sample
            continue
        alerts_between = sum(1 for s in alert_seqs if seq_a < s < seq_b)
        ticks = max(seq_b - seq_a - alerts_between, 1)
        worst = max(worst, (t_b - t_a) / ticks)
    return worst


def deterministic_fields(records: list[dict]) -> dict[str, float]:
    """The final sample's seed-determined metric subset.

    Chaos drills compare this dict bit-for-bit across runs: injected
    fault counts and resilience outcomes are pure functions of the fault
    plan and schedule seeds, while throughputs and latencies are not.
    """
    last: dict | None = None
    for rec in records:
        if rec.get("type") == "sample":
            last = rec
    if last is None:
        return {}
    out: dict[str, float] = {}
    for key, value in last["metrics"].items():
        if not isinstance(value, (int, float)):
            continue
        if key in _DETERMINISTIC_EXCLUDE:
            continue
        if any(key.startswith(prefix) for prefix in _DETERMINISTIC_PREFIXES):
            out[key] = value
    return out
