"""Zero-dependency span tracing for the serving stack.

A :class:`Tracer` produces nested :class:`Span` records — monotonic start
time, duration, span-id/parent-id, structured attributes — collected in a
thread-safe in-memory buffer and exportable as CRC-framed JSONL.
Nesting is tracked per thread: spans opened on the same thread parent
implicitly to the innermost open span; work that hops threads (the
microbatcher hands tickets from the caller thread to batch workers)
passes the parent id explicitly instead.

Traces can span processes.  A shard worker runs its own tracer seeded
with a disjoint ``id_start`` range, parents its spans to parent-process
span ids carried in the request messages, and periodically
:meth:`~Tracer.drain`\\ s its buffers back over the result pipe; the
parent :meth:`~Tracer.absorb`\\ s them (with a clock-offset correction,
since ``time.monotonic`` is per-process) into one coherent tree.

Tracing is **off by default**.  The process-global tracer returned by
:func:`get_tracer` starts as the disabled :data:`NULL_TRACER`, whose
``span()`` returns a shared no-op context manager — instrumented hot
paths pay one attribute check and an empty ``with`` block, nothing else.
Install a live tracer with :func:`set_tracer` or the scoped
:func:`use_tracer`:

    tracer = Tracer()
    with use_tracer(tracer):
        service.submit_many(workload)
    tracer.export_jsonl("trace.jsonl")
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic as _monotonic

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "TRACE_EVENT_KIND",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "worker_id_start",
]

#: Event-journal kind tag for framed trace files (``repro fsck``).
TRACE_EVENT_KIND = "trace"


def worker_id_start(shard_id: int, generation: int) -> int:
    """First span id for a shard worker's tracer.

    Each (shard, spawn-generation) pair gets a disjoint 2^28-id block
    well above any realistic parent-process allocation, so worker spans
    can reference parent span ids directly and absorbed traces never
    collide — including across respawns of the same shard.
    """
    return ((shard_id + 1) << 44) | (generation << 28)

#: Sentinel distinguishing "no parent given: use the thread's innermost
#: open span" from an explicit ``parent=None`` (force a root span).
_IMPLICIT = object()


@dataclass
class Span:
    """One finished span: a named, timed slice of work.

    ``start_s`` is on the :func:`time.monotonic` clock — comparable to
    other spans of the same process/trace, not to wall time.
    """

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    duration_s: float
    attributes: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_dict(self) -> dict:
        """JSON-serializable form (the trace-file line format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "Span":
        return cls(
            name=str(obj["name"]),
            span_id=int(obj["span_id"]),
            parent_id=(
                None if obj.get("parent_id") is None else int(obj["parent_id"])
            ),
            start_s=float(obj["start_s"]),
            duration_s=float(obj["duration_s"]),
            attributes=dict(obj.get("attributes") or {}),
        )


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> None:
        """Discard attributes (tracing is off)."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """An open span: context manager that finalizes into a :class:`Span`.

    Finished spans are buffered as plain tuples (``Span`` objects are
    materialized lazily by :meth:`Tracer.spans`), and the per-thread
    (stack, buffer) pair is fetched once per span — both measurable wins
    on the serving hot path, where a request's work is a few hundred
    microseconds and each span used to cost ~5us.
    """

    __slots__ = ("_tracer", "_parent", "_stack", "_buffer", "name",
                 "span_id", "parent_id", "start_s", "attributes")

    def __init__(self, tracer, name, parent, start_s, attributes):
        self._tracer = tracer
        self._parent = parent
        self.name = name
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.start_s = start_s
        self.attributes = attributes

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack, buffer = tracer._thread_state()
        self._stack = stack
        self._buffer = buffer
        self.span_id = span_id = next(tracer._ids)
        parent = self._parent
        if parent is _IMPLICIT:
            self.parent_id = stack[-1] if stack else None
        else:
            self.parent_id = tracer._resolve_parent(parent)
        if self.start_s is None:
            self.start_s = _monotonic()
        stack.append(span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = _monotonic()
        stack = self._stack
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        start = self.start_s
        self._buffer.append(
            (self.name, self.span_id, self.parent_id, start,
             end - start if end > start else 0.0, self.attributes)
        )
        return False

    def set(self, **attributes) -> None:
        """Attach attributes to the span (merged into any set at open)."""
        self.attributes.update(attributes)


class Tracer:
    """Collect nested spans in memory; export them as JSONL.

    Parameters
    ----------
    enabled:
        When False every ``span()`` returns the shared no-op span and
        nothing is recorded.  The process-global default tracer is a
        disabled singleton, so instrumentation costs ~nothing until a
        live tracer is installed.
    id_start:
        First span id this tracer allocates.  Cross-process stitching
        gives each shard worker a disjoint id range (derived from its
        shard id and spawn generation) so worker span ids can parent
        directly to parent-process ids without remapping.
    """

    def __init__(self, enabled: bool = True, id_start: int = 1):
        self.enabled = bool(enabled)
        self._ids = itertools.count(id_start)
        self._lock = threading.Lock()
        # Finished spans land in per-thread tuple buffers (registered once
        # per thread under the lock, then appended to lock-free):
        # collection is on the serving hot path, and both a single
        # contended list and eager Span construction were measurable
        # slices of tracing overhead.
        self._buffers: list[list[tuple]] = []
        self._tls = threading.local()

    # -- span creation -------------------------------------------------- #
    def span(self, name: str, *, parent=_IMPLICIT, start_s: float | None = None,
             **attributes):
        """Open a span as a context manager.

        ``parent`` defaults to the calling thread's innermost open span;
        pass a span (or id) to parent across threads, or ``None`` to
        force a root.  ``start_s`` backdates the span's start (monotonic
        clock) — the request root uses its admission timestamp so the
        span covers queue wait too.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, parent, start_s, attributes)

    def record_span(self, name: str, start_s: float, end_s: float, *,
                    parent=_IMPLICIT, **attributes) -> None:
        """Record an already-timed span retroactively (e.g. queue wait).

        Buffers the raw tuple only; the :class:`Span` appears when
        :meth:`spans` materializes the buffer.
        """
        if not self.enabled:
            return
        start = float(start_s)
        duration = float(end_s) - start
        _, buffer = self._thread_state()
        buffer.append(
            (name, next(self._ids), self._resolve_parent(parent), start,
             duration if duration > 0.0 else 0.0, attributes)
        )

    def current_span_id(self) -> int | None:
        """Id of the calling thread's innermost open span (None outside)."""
        state = getattr(self._tls, "state", None)
        if state is None:
            return None
        stack = state[0]
        return stack[-1] if stack else None

    # -- collection ----------------------------------------------------- #
    def spans(self) -> list[Span]:
        """Snapshot of all finished spans, in span-id (creation) order."""
        with self._lock:
            merged = [rec for buf in self._buffers for rec in list(buf)]
        merged.sort(key=lambda rec: rec[1])
        return [
            Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start_s=start_s,
                duration_s=duration_s,
                attributes=attributes,
            )
            for name, span_id, parent_id, start_s, duration_s, attributes
            in merged
        ]

    def drain(self) -> list[tuple]:
        """Atomically snapshot and clear all finished-span buffers.

        Returns the raw record tuples — the wire form a shard worker
        ships back over its result pipe for the parent to
        :meth:`absorb`.  Span ids keep counting up across drains.
        """
        with self._lock:
            merged = [rec for buf in self._buffers for rec in buf]
            for buf in self._buffers:
                buf.clear()
        merged.sort(key=lambda rec: rec[1])
        return merged

    def absorb(self, records, offset_s: float = 0.0) -> int:
        """Merge span records drained from another tracer into this one.

        ``records`` are the tuples (or lists, after pickling) returned
        by :meth:`drain`; ``offset_s`` is added to each start time to
        map the foreign process's monotonic clock onto this one.
        Returns the number of spans absorbed.  Absorbed ids are taken
        as-is — callers guarantee disjoint ``id_start`` ranges.
        """
        if not self.enabled:
            return 0
        cleaned = [
            (str(name), int(span_id),
             None if parent_id is None else int(parent_id),
             float(start_s) + offset_s, float(duration_s),
             dict(attributes or {}))
            for name, span_id, parent_id, start_s, duration_s, attributes
            in records
        ]
        with self._lock:
            buf: list[tuple] = []
            self._buffers.append(buf)
            buf.extend(cleaned)
        return len(cleaned)

    def clear(self) -> None:
        """Drop collected spans (span ids keep counting up)."""
        with self._lock:
            for buf in self._buffers:
                buf.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(buf) for buf in self._buffers)

    def export_jsonl(self, path) -> int:
        """Write the trace as CRC-framed JSONL; returns the span count.

        The file is a storage-v2 event snapshot (kind ``"trace"``), so
        ``repro fsck`` verifies and repairs it like any other artifact.
        :func:`~repro.obs.summary.load_spans` reads both this framing
        and the legacy bare-line format of earlier releases.
        """
        # Lazy import: repro.core.storage imports repro.obs at module
        # level for its own tracing, so the obs side must not import it
        # back at import time.
        from repro.core.storage import save_events_jsonl

        spans = self.spans()
        save_events_jsonl(
            [span.to_dict() for span in spans], Path(path),
            kind=TRACE_EVENT_KIND,
        )
        return len(spans)

    # -- internals ------------------------------------------------------ #
    def _next_id(self) -> int:
        return next(self._ids)

    def _resolve_parent(self, parent) -> int | None:
        if parent is _IMPLICIT:
            return self.current_span_id()
        if parent is None:
            return None
        span_id = getattr(parent, "span_id", parent)
        return None if span_id is None else int(span_id)

    def _thread_state(self) -> tuple[list, list]:
        """The calling thread's ``(open-span stack, finished buffer)`` pair.

        Registered once per thread under the lock; afterwards a single
        thread-local attribute fetch per span.
        """
        state = getattr(self._tls, "state", None)
        if state is None:
            buf: list[tuple] = []
            with self._lock:
                self._buffers.append(buf)
            state = self._tls.state = ([], buf)
        return state


#: The disabled default: instrumented code paths run against this until a
#: live tracer is installed.
NULL_TRACER = Tracer(enabled=False)

_active: Tracer = NULL_TRACER
_active_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer (the disabled default until installed)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the disabled default);
    returns the previously installed tracer."""
    global _active
    with _active_lock:
        previous = _active
        _active = tracer if tracer is not None else NULL_TRACER
        return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scope a global tracer install: restores the previous one on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
