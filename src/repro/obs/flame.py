"""Flame-graph export: folded stacks and speedscope documents.

``repro trace flame`` turns an exported trace into the two interchange
formats profiler UIs actually read:

* **folded stacks** — one line per unique call path,
  ``root;child;grandchild <self-time-us>``, the input format of
  Brendan Gregg's ``flamegraph.pl`` and most "paste your stacks here"
  viewers.  Values are *self* time (span duration minus the time covered
  by its children), so the totals the viewer re-derives by summation
  match the trace instead of double-counting nested spans.
* **speedscope** — an evented-profile JSON document for
  https://www.speedscope.app, one profile per trace root, so a
  multi-request trace opens as a profile-per-request picker.

Spans within a parent may overlap or spill past the parent window (clock
offsets across processes, spans recorded retroactively, cross-process
parents like ``shard.worker`` that return before their subtree finishes);
both exporters walk the same *sequenced* view of the tree — each span's
window first widened to cover its whole subtree, then children sorted by
start, clamped into the parent window, and begun no earlier than the
previous sibling ended — which keeps the open/close event stream strictly
nested, as both formats require, without truncating real work.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.summary import span_children
from repro.obs.tracer import Span

__all__ = [
    "folded_stacks",
    "speedscope_document",
    "write_folded",
    "write_speedscope",
]


def _effective_ends(children: dict) -> dict[int, float]:
    """span_id → end time widened to cover the span's whole subtree.

    A parent that returned before its children finished (the worker-side
    ``shard.worker`` span closes at submit time while ``serve.request``
    completes later on a batch thread) would otherwise clamp its subtree
    to nothing.
    """
    ends: dict[int, float] = {}

    def rec(span: Span) -> float:
        got = ends.get(span.span_id)
        if got is not None:
            return got
        # Pre-seed with the span's own end so a pathological self-cycle
        # terminates instead of recursing forever.
        end = ends[span.span_id] = span.start_s + span.duration_s
        for child in children.get(span.span_id, []):
            if child.span_id != span.span_id:
                end = max(end, rec(child))
        ends[span.span_id] = end
        return end

    for root in children.get(None, []):
        rec(root)
    return ends


def _sequenced_children(
    span: Span, start_s: float, end_s: float, children: dict, ends: dict
) -> list[tuple[Span, float, float]]:
    """Children of ``span`` clamped into ``[start_s, end_s]``, non-overlapping.

    Each child is begun no earlier than its previous sibling ended and
    truncated at the parent's (already subtree-widened) end, so the
    resulting intervals nest strictly — a child rendered wider than its
    parent is a rendering bug, not insight.
    """
    out: list[tuple[Span, float, float]] = []
    cursor = start_s
    for child in children.get(span.span_id, []):
        s = max(child.start_s, cursor)
        e = max(s, min(ends.get(child.span_id, s), end_s))
        out.append((child, s, e))
        cursor = e
    return out


def folded_stacks(spans: list[Span]) -> list[str]:
    """Collapse a trace into folded-stack lines with self-time values.

    Values are integer microseconds of *self* time; call paths that
    occur more than once (every request walks the same taxonomy) are
    merged by summing.  Zero-self-time paths are kept when the span
    itself had zero duration but dropped when children covered the whole
    window — a purely structural frame adds nothing to a flame graph.
    """
    children = span_children(spans)
    ends = _effective_ends(children)
    totals: dict[str, int] = {}

    def walk(span: Span, start_s: float, end_s: float, path: str) -> None:
        stacked = path + span.name if not path else f"{path};{span.name}"
        seq = _sequenced_children(span, start_s, end_s, children, ends)
        covered = sum(e - s for _, s, e in seq)
        self_us = int(round(max((end_s - start_s) - covered, 0.0) * 1e6))
        if self_us > 0 or not seq:
            totals[stacked] = totals.get(stacked, 0) + self_us
        for child, s, e in seq:
            walk(child, s, e, stacked)

    for root in children.get(None, []):
        walk(root, root.start_s, ends[root.span_id], "")
    return [f"{path} {value}" for path, value in sorted(totals.items())]


def speedscope_document(
    spans: list[Span], *, name: str = "repro trace"
) -> dict:
    """Build a speedscope evented-profile document, one profile per root."""
    children = span_children(spans)
    ends = _effective_ends(children)
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def frame(span_name: str) -> int:
        idx = frame_index.get(span_name)
        if idx is None:
            idx = frame_index[span_name] = len(frames)
            frames.append({"name": span_name})
        return idx

    profiles: list[dict] = []
    for root in children.get(None, []):
        events: list[dict] = []

        def walk(span: Span, start_s: float, end_s: float) -> None:
            idx = frame(span.name)
            events.append({"type": "O", "frame": idx, "at": start_s})
            for child, s, e in _sequenced_children(
                span, start_s, end_s, children, ends
            ):
                walk(child, s, e)
            events.append({"type": "C", "frame": idx, "at": end_s})

        root_end = ends[root.span_id]
        walk(root, root.start_s, root_end)
        profiles.append({
            "type": "evented",
            "name": f"{root.name} #{root.span_id}",
            "unit": "seconds",
            "startValue": root.start_s,
            "endValue": root_end,
            "events": events,
        })

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "exporter": "repro trace flame",
    }


def write_folded(spans: list[Span], path) -> int:
    """Write folded stacks to ``path``; returns the line count."""
    lines = folded_stacks(spans)
    Path(path).write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )
    return len(lines)


def write_speedscope(
    spans: list[Span], path, *, name: str = "repro trace"
) -> int:
    """Write a speedscope document to ``path``; returns the profile count."""
    doc = speedscope_document(spans, name=name)
    Path(path).write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return len(doc["profiles"])
