"""Benchmark regression gating (the CI bench job's comparison logic)."""

from repro.bench.regression import (
    BaselineMetric,
    Regression,
    collect_metrics,
    compare,
    load_baseline,
    load_report,
    parse_loadtest_goodput,
    parse_percent,
    parse_ratio,
    render_report,
    write_report,
)

__all__ = [
    "BaselineMetric",
    "Regression",
    "collect_metrics",
    "compare",
    "load_baseline",
    "load_report",
    "parse_loadtest_goodput",
    "parse_percent",
    "parse_ratio",
    "render_report",
    "write_report",
]
