"""Benchmark regression gating: parse, compare, and report ratio metrics.

The CI bench job runs the gated slow benchmarks, harvests the
machine-independent **ratio** metrics they emit (speedup factors, overhead
fractions — never absolute req/s or wall seconds, which vary with runner
hardware), writes them to a ``BENCH_<sha>.json`` report, and compares the
report against the committed ``benchmarks/baseline.json``.  A metric that
worsens by more than the tolerance (default 20% relative) fails the job.

The pieces:

* :func:`parse_ratio` / :func:`parse_percent` — extract the ``speedup:
  2.52x`` / ``overhead: 3.7%`` trailer lines the benchmarks emit.
* :func:`collect_metrics` — harvest all gated metrics from a
  ``benchmarks/results/`` directory.
* :class:`BaselineMetric` / :func:`load_baseline` — the committed
  baseline: expected value, direction of goodness, optional absolute
  slack, and a per-metric gate switch.
* :func:`compare` — the pure comparison (pinned by
  ``tests/test_bench_regression.py``); :func:`render_report` formats the
  outcome for the job log.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import ExperimentError
from repro.utils.tables import Table

__all__ = [
    "BaselineMetric",
    "Regression",
    "collect_metrics",
    "compare",
    "load_baseline",
    "load_report",
    "parse_loadtest_goodput",
    "parse_percent",
    "parse_ratio",
    "render_report",
    "write_report",
]


def parse_ratio(text: str, label: str = "speedup") -> float:
    """Extract ``<label>: 2.52x`` from a benchmark report body."""
    match = re.search(rf"{re.escape(label)}:\s*([0-9]+(?:\.[0-9]+)?)x", text)
    if match is None:
        raise ExperimentError(f"no '{label}: <value>x' line in report")
    return float(match.group(1))


def parse_percent(text: str, label: str = "overhead") -> float:
    """Extract ``<label>: 3.7%`` as a fraction (0.037)."""
    match = re.search(
        rf"{re.escape(label)}:\s*(-?[0-9]+(?:\.[0-9]+)?)%", text
    )
    if match is None:
        raise ExperimentError(f"no '{label}: <value>%' line in report")
    return float(match.group(1)) / 100.0


def parse_loadtest_goodput(text: str) -> float:
    """Goodput fraction from a ``repro loadtest --report-json`` file.

    The loadtest report is canonical JSON, not a trailer-line text
    report; goodput (ok / offered) is its dimensionless health ratio.
    """
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"loadtest report is not valid JSON: {exc}")
    try:
        return float(obj["goodput"])
    except (KeyError, TypeError, ValueError):
        raise ExperimentError("loadtest report has no numeric 'goodput'")


#: Gated metric -> (results file, extractor).  Only dimensionless ratios:
#: absolute throughputs depend on the runner and would gate on hardware.
REPORT_SOURCES: dict[str, tuple[str, Callable[[str], float]]] = {
    "serve_caching_speedup": ("serve_throughput.txt", parse_ratio),
    "serve_tracing_overhead": ("serve_tracing_overhead.txt", parse_percent),
    "prefix_reuse_speedup": ("llm_prefix_cache.txt", parse_ratio),
    "sessions_throughput": ("sessions_throughput.txt", parse_ratio),
}

#: Metrics whose benchmarks legitimately skip on some hosts (the
#: shard-throughput speedup needs >= 4 cores), so a missing report is
#: tolerated and the metric simply omitted.  Pair these with
#: ``"gate": false`` baseline entries: :func:`compare` treats a *gated*
#: baseline metric absent from the report as a regression.
OPTIONAL_REPORT_SOURCES: dict[str, tuple[str, Callable[[str], float]]] = {
    "shard_throughput_speedup": ("shard_throughput.txt", parse_ratio),
    "loadtest_goodput": ("loadtest_report.json", parse_loadtest_goodput),
}


def collect_metrics(results_dir: str | Path) -> dict[str, float]:
    """Harvest every gated metric from a ``benchmarks/results`` directory."""
    results_dir = Path(results_dir)
    metrics: dict[str, float] = {}
    for name, (filename, extract) in REPORT_SOURCES.items():
        path = results_dir / filename
        if not path.exists():
            raise ExperimentError(
                f"missing benchmark report {path} for metric {name!r} "
                "(run the slow benchmarks first)"
            )
        metrics[name] = extract(path.read_text())
    for name, (filename, extract) in OPTIONAL_REPORT_SOURCES.items():
        path = results_dir / filename
        if path.exists():
            metrics[name] = extract(path.read_text())
    return metrics


@dataclass(frozen=True)
class BaselineMetric:
    """One committed baseline entry.

    ``direction`` says which way is good ("higher" for speedups, "lower"
    for overheads); ``abs_slack`` widens the allowance by an absolute
    amount (for near-zero metrics where relative tolerance is
    meaningless); ``gate=False`` records the metric without failing on
    it.
    """

    value: float
    direction: str = "higher"
    abs_slack: float = 0.0
    gate: bool = True

    def __post_init__(self):
        if self.direction not in ("higher", "lower"):
            raise ExperimentError(
                f"direction must be 'higher' or 'lower', got "
                f"{self.direction!r}"
            )
        if self.value <= 0 and self.direction == "higher":
            raise ExperimentError(
                f"'higher' baseline value must be > 0, got {self.value}"
            )
        if self.abs_slack < 0:
            raise ExperimentError(
                f"abs_slack must be >= 0, got {self.abs_slack}"
            )

    def floor(self, tolerance: float) -> float:
        """Worst acceptable value under ``tolerance`` relative worsening."""
        if self.direction == "higher":
            return self.value * (1.0 - tolerance) - self.abs_slack
        return self.value * (1.0 + tolerance) + self.abs_slack

    def is_regression(self, current: float, tolerance: float) -> bool:
        if self.direction == "higher":
            return current < self.floor(tolerance)
        return current > self.floor(tolerance)


@dataclass(frozen=True)
class Regression:
    """One gated metric that worsened past tolerance (or went missing)."""

    name: str
    baseline: float
    current: float | None
    allowed: float

    def describe(self) -> str:
        if self.current is None:
            return f"{self.name}: metric missing from the current report"
        return (
            f"{self.name}: {self.current:.4g} vs baseline "
            f"{self.baseline:.4g} (allowed {self.allowed:.4g})"
        )


def compare(
    current: Mapping[str, float],
    baseline: Mapping[str, BaselineMetric],
    tolerance: float = 0.2,
) -> list[Regression]:
    """Gated baseline metrics that regressed beyond ``tolerance``.

    A baseline metric absent from ``current`` is itself a regression
    (the benchmark silently stopped reporting); extra metrics in
    ``current`` are ignored (new benchmarks do not fail old baselines).
    """
    if not 0 <= tolerance < 1:
        raise ExperimentError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: list[Regression] = []
    for name, entry in baseline.items():
        if not entry.gate:
            continue
        allowed = entry.floor(tolerance)
        value = current.get(name)
        if value is None or entry.is_regression(float(value), tolerance):
            failures.append(
                Regression(
                    name=name,
                    baseline=entry.value,
                    current=None if value is None else float(value),
                    allowed=allowed,
                )
            )
    return failures


def render_report(
    current: Mapping[str, float],
    baseline: Mapping[str, BaselineMetric],
    regressions: list[Regression],
    tolerance: float = 0.2,
) -> str:
    """ASCII comparison table plus a pass/fail trailer (the job log body)."""
    failed = {r.name for r in regressions}
    t = Table(
        ["metric", "current", "baseline", "allowed", "gate", "status"],
        title=f"benchmark regression check (tolerance {tolerance:.0%})",
    )
    for name, entry in baseline.items():
        value = current.get(name)
        status = "FAIL" if name in failed else "ok"
        t.add_row([
            name,
            "missing" if value is None else round(float(value), 4),
            round(entry.value, 4),
            round(entry.floor(tolerance), 4),
            "on" if entry.gate else "off",
            status if entry.gate else "recorded",
        ])
    verdict = (
        f"{len(regressions)} regression(s) past tolerance"
        if regressions
        else "all gated metrics within tolerance"
    )
    return t.render() + "\n" + verdict


def load_baseline(path: str | Path) -> dict[str, BaselineMetric]:
    """Parse ``benchmarks/baseline.json`` into :class:`BaselineMetric`s."""
    obj = json.loads(Path(path).read_text())
    return {
        name: BaselineMetric(
            value=float(spec["value"]),
            direction=str(spec.get("direction", "higher")),
            abs_slack=float(spec.get("abs_slack", 0.0)),
            gate=bool(spec.get("gate", True)),
        )
        for name, spec in obj.items()
    }


def write_report(
    path: str | Path, metrics: Mapping[str, float], sha: str | None = None
) -> None:
    """Write a ``BENCH_<sha>.json`` report (the uploaded CI artifact)."""
    payload = {"sha": sha, "metrics": dict(metrics)}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict[str, float]:
    """Read a report written by :func:`write_report` back to metrics."""
    obj = json.loads(Path(path).read_text())
    metrics = obj.get("metrics", obj)
    return {str(k): float(v) for k, v in metrics.items()}
