"""Consolidated full-text report over a grid run.

Combines every analysis the paper performs — prediction quality (IV-A),
token-position variability (IV-B / Table II), and the haystack search
(IV-C) — into one renderable report, so the CLI and notebooks can get the
whole picture from a single call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.decoding import (
    DecodingAlternatives,
    enumerate_value_decodings,
    token_position_table,
)
from repro.analysis.haystack import DEFAULT_BOUNDS, HaystackReport
from repro.core.records import GridReport, build_report
from repro.core.runner import ProbeResult
from repro.errors import AnalysisError
from repro.utils.tables import Table

__all__ = ["FullReport", "analyze_grid"]


@dataclass
class FullReport:
    """Everything the paper reports, computed from one probe list."""

    quality: GridReport
    position_rows: list
    permutation_row: object
    haystack: HaystackReport

    def render(self) -> str:
        """Render all sections as one text report."""
        sections = []

        q = Table(["statistic", "value"], title="Prediction quality (IV-A)")
        q.add_row(["experiments", len(self.quality.cells)])
        q.add_row(["best R2", self.quality.best_r2])
        q.add_row(["mean R2", self.quality.mean_r2])
        q.add_row(["std R2", self.quality.std_r2])
        q.add_row(["non-negative R2 share", self.quality.frac_nonnegative_r2])
        q.add_row(["mean MARE", self.quality.mare.mean])
        q.add_row(["mean MSRE", self.quality.msre.mean])
        q.add_row(["ICL copy rate", self.quality.copy_rate])
        q.add_row(["parse rate", self.quality.parse_rate])
        sections.append(q.render())

        t2 = Table(
            ["position", "mean #", "std #", "n"],
            title="Selectable-token variability (Table II)",
        )
        for r in self.position_rows[:9]:
            t2.add_row(
                [f"token {r.position}", r.mean_possibilities,
                 r.std_possibilities, r.n_samples]
            )
        t2.add_row(
            ["permutations", self.permutation_row.mean_possibilities,
             self.permutation_row.std_possibilities,
             self.permutation_row.n_samples]
        )
        sections.append(t2.render())

        hs = Table(
            ["bound", "sampled within", "optimal decoder within"],
            title="Needles in a haystack (IV-C)",
        )
        for b in self.haystack.bounds:
            hs.add_row([f"{b:.0%}", self.haystack.sampled[b],
                        self.haystack.optimal[b]])
        sections.append(hs.render())
        return "\n\n".join(sections)


def analyze_grid(
    probes: list[ProbeResult],
    max_candidates: int = 300,
    bounds=DEFAULT_BOUNDS,
) -> FullReport:
    """Run every analysis over a grid run's probes."""
    if not probes:
        raise AnalysisError("no probes to analyse")
    quality = build_report(probes)

    alts: list[DecodingAlternatives] = []
    parsed_alts: list[DecodingAlternatives] = []
    sampled_errors: list[float] = []
    truths: list[float] = []
    for p in probes:
        if not p.value_steps:
            continue
        a = enumerate_value_decodings(p.value_steps, max_candidates=max_candidates)
        if not a.candidates:
            continue
        alts.append(a)
        if p.parsed:
            parsed_alts.append(a)
            sampled_errors.append(p.relative_error)
            truths.append(p.truth)
    if not alts:
        raise AnalysisError("no generations produced value regions")
    if not parsed_alts:
        raise AnalysisError("no parsed generations to build a haystack from")
    rows, perm = token_position_table(alts)
    haystack = HaystackReport.build(
        np.asarray(sampled_errors),
        parsed_alts,
        np.asarray(truths),
        bounds=bounds,
    )
    return FullReport(
        quality=quality,
        position_rows=rows,
        permutation_row=perm,
        haystack=haystack,
    )
