"""Prediction-quality metrics used throughout the paper.

The paper evaluates predicted runtimes with three metrics (Section III-C):

* **R^2** — coefficient of determination, ``1 - SS_res / SS_tot``;
* **MARE** — Mean Absolute Relative Error, ``mean(|pred - true| / |true|)``;
* **MSRE** — Mean Squared Relative Error, ``mean(((pred - true)/true)^2)``.

Relative metrics are preferred "to improve the comparability of our results
across all experimental settings" (runtimes differ by three orders of
magnitude between SM and XL).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_same_length

__all__ = [
    "r2_score",
    "relative_errors",
    "mare",
    "msre",
    "PredictionMetrics",
    "score_predictions",
]


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination ``1 - SS_res / SS_tot``.

    Matches the convention the paper (and scikit-learn) uses: a model can
    score arbitrarily negative, and a constant ``y_true`` gives 1.0 for a
    perfect prediction and ``-inf`` otherwise (degenerate denominator).
    """
    yt, yp = check_same_length(y_true, y_pred, "y_true", "y_pred")
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def relative_errors(y_true, y_pred) -> np.ndarray:
    """Per-sample relative errors ``|pred - true| / |true|``.

    Raises
    ------
    ValueError
        If any true value is zero (relative error undefined).
    """
    yt, yp = check_same_length(y_true, y_pred, "y_true", "y_pred")
    if np.any(yt == 0):
        raise ValueError("relative errors undefined for zero true values")
    return np.abs(yp - yt) / np.abs(yt)


def mare(y_true, y_pred) -> float:
    """Mean Absolute Relative Error."""
    return float(relative_errors(y_true, y_pred).mean())


def msre(y_true, y_pred) -> float:
    """Mean Squared Relative Error."""
    return float((relative_errors(y_true, y_pred) ** 2).mean())


@dataclass(frozen=True)
class PredictionMetrics:
    """The paper's metric triple for one prediction set."""

    r2: float
    mare: float
    msre: float
    n: int

    def as_row(self) -> tuple[float, float, float]:
        """``(R^2, MARE, MSRE)`` in the paper's column order."""
        return (self.r2, self.mare, self.msre)

    def __str__(self) -> str:
        return (
            f"R2={self.r2:.4f} MARE={self.mare:.4f} "
            f"MSRE={self.msre:.4f} (n={self.n})"
        )


def score_predictions(y_true, y_pred) -> PredictionMetrics:
    """Compute the full metric triple for a prediction set."""
    yt, yp = check_same_length(y_true, y_pred, "y_true", "y_pred")
    return PredictionMetrics(
        r2=r2_score(yt, yp),
        mare=mare(yt, yp),
        msre=msre(yt, yp),
        n=int(yt.shape[0]),
    )
