"""Variance decomposition: what actually drives prediction variability?

Section IV-A: "different seeds often produce identical token sets with
slightly altered logit probabilities, supporting the hypothesis that the
knowledge expression is primarily based on the prompt rather than a
randomizable component of the model."  This module quantifies that claim
as a variance decomposition of the predicted values:

* **within-prompt (seed) variance** — same prompt, different sampling
  seeds;
* **between-prompt variance** — different ICL material / queries.

If the paper's hypothesis holds, the prompt component dominates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.runner import ProbeResult
from repro.errors import AnalysisError

__all__ = ["VarianceDecomposition", "seed_variance_decomposition"]


@dataclass(frozen=True)
class VarianceDecomposition:
    """One-way random-effects style decomposition of log-predictions.

    Attributes
    ----------
    within_seed_var:
        Mean variance across seeds within one prompt (same size,
        selection, ICL count, set and query; only the seed differs).
    between_prompt_var:
        Variance of per-prompt means across prompts.
    n_prompts, n_total:
        Group and observation counts.
    """

    within_seed_var: float
    between_prompt_var: float
    n_prompts: int
    n_total: int

    @property
    def prompt_share(self) -> float:
        """Fraction of total variance attributable to the prompt."""
        total = self.within_seed_var + self.between_prompt_var
        if total == 0:
            return 1.0
        return self.between_prompt_var / total


def seed_variance_decomposition(
    probes: list[ProbeResult],
) -> VarianceDecomposition:
    """Decompose prediction variance into seed vs prompt components.

    Predictions are compared in log space (runtimes are multiplicative);
    probes that failed to parse or predicted non-positive values are
    skipped.  Groups are formed by everything except the sampling seed.

    Raises
    ------
    AnalysisError
        If fewer than two groups with at least two seeds each exist.
    """
    groups: dict[tuple, list[float]] = defaultdict(list)
    for p in probes:
        if not p.parsed or not p.predicted or p.predicted <= 0:
            continue
        s = p.spec
        key = (s.size, s.selection, s.n_icl, s.set_id, p.query_index)
        groups[key].append(np.log(p.predicted))
    multi = {k: v for k, v in groups.items() if len(v) >= 2}
    if len(multi) < 2:
        raise AnalysisError(
            "need >= 2 prompts observed under >= 2 seeds each"
        )
    within = float(
        np.mean([np.var(v, ddof=1) for v in multi.values()])
    )
    means = np.asarray([np.mean(v) for v in multi.values()])
    between = float(np.var(means, ddof=1))
    n_total = sum(len(v) for v in multi.values())
    return VarianceDecomposition(
        within_seed_var=within,
        between_prompt_var=between,
        n_prompts=len(multi),
        n_total=n_total,
    )
