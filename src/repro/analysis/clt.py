"""Central-Limit-Theorem aggregation of metrics across experiments.

Section III-C / IV-A: "By applying the Central Limit Theorem across all of
our experiments, we can approximate the generalized capability of the LLM
at this task" — i.e. the grand mean of a per-experiment metric converges to
the model's expected capability, with a standard error shrinking as
``1/sqrt(k)``.  This module computes those aggregates with normal-theory
confidence intervals (cf. Miller 2024, "Adding Error Bars to Evals").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.validation import check_1d

__all__ = ["CLTAggregate", "aggregate_metric"]


@dataclass(frozen=True)
class CLTAggregate:
    """Grand mean of a metric across experiments with uncertainty."""

    mean: float
    std: float
    sem: float
    n: int
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} +/- {self.sem:.4f} "
            f"(std={self.std:.4f}, n={self.n}, "
            f"{100 * self.confidence:.0f}% CI [{self.ci_low:.4f}, {self.ci_high:.4f}])"
        )


def aggregate_metric(values, confidence: float = 0.95) -> CLTAggregate:
    """Aggregate per-experiment metric values into a CLT estimate.

    Parameters
    ----------
    values:
        One metric value per experiment.  Non-finite values are rejected —
        callers must decide explicitly how to treat degenerate experiments.
    confidence:
        Two-sided confidence level for the interval (t-distribution for
        small samples).
    """
    arr = check_1d(values, "values")
    if arr.size == 0:
        raise ValueError("cannot aggregate zero experiments")
    if not np.all(np.isfinite(arr)):
        raise ValueError("metric values must be finite for CLT aggregation")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    n = int(arr.size)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    sem = std / np.sqrt(n) if n > 1 else 0.0
    if n > 1 and sem > 0:
        tcrit = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
        half = tcrit * sem
    else:
        half = 0.0
    return CLTAggregate(
        mean=mean,
        std=std,
        sem=sem,
        n=n,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )
