"""Enumeration of feasible alternative decodings of a generated value.

Section III-C: "we locally execute the model and record all generated
nonzero logit values.  This allows us to construct all 'feasible'
generation alternatives in the given scenario. ... we consider all
combinations reachable via alternative decodings of the original
generation."  Section IV-B then reports, per token position of the value
string, how many tokens were selectable (Table II), and Section IV-C
searches the resulting value "haystack".

This module is deliberately independent of the LM implementation: it
consumes plain per-step candidate records (token strings + logits + the
sampled choice), so it would work identically on logits dumped from a real
Llama run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "StepCandidates",
    "ValueCandidate",
    "DecodingAlternatives",
    "TokenPositionStats",
    "enumerate_value_decodings",
    "token_position_table",
]


@dataclass(frozen=True)
class StepCandidates:
    """The recorded nonzero-logit alternatives of one generation step."""

    tokens: tuple[str, ...]
    logits: np.ndarray
    chosen: int

    def __post_init__(self):
        logits = np.asarray(self.logits, dtype=float)
        object.__setattr__(self, "logits", logits)
        if len(self.tokens) != logits.shape[0]:
            raise AnalysisError(
                f"{len(self.tokens)} tokens but {logits.shape[0]} logits"
            )
        if not 0 <= self.chosen < len(self.tokens):
            raise AnalysisError(
                f"chosen index {self.chosen} out of range ({len(self.tokens)})"
            )

    @property
    def chosen_token(self) -> str:
        return self.tokens[self.chosen]

    def log_probs(self) -> np.ndarray:
        """Normalized log-probabilities over the recorded candidates."""
        z = self.logits - self.logits.max()
        return z - math.log(float(np.exp(z).sum()))


def _is_value_piece(token: str) -> bool:
    """Whether a token extends a decimal digit string."""
    return token != "" and all(c.isdigit() or c == "." for c in token)


def _valid_extension(prefix: str, token: str) -> bool:
    """Whether appending ``token`` keeps ``prefix`` a valid decimal prefix."""
    if not _is_value_piece(token):
        return False
    candidate = prefix + token
    return candidate.count(".") <= 1


def _parse_value(text: str) -> float | None:
    """Parse a completed value string; None when unparsable/empty."""
    if not text or text == "." or text.count(".") > 1:
        return None
    try:
        return float(text)
    except ValueError:
        return None


@dataclass(frozen=True)
class ValueCandidate:
    """One generable value with its decoding and joint log-probability."""

    text: str
    value: float
    logprob: float
    n_tokens: int


@dataclass
class DecodingAlternatives:
    """The haystack: all enumerated generable values for one generation.

    Attributes
    ----------
    candidates:
        Enumerated values, highest joint log-probability first (capped at
        the enumeration limit).
    position_counts:
        Number of *value-compatible* selectable tokens at each value token
        position of the original sample path (Table II's per-position
        possibility counts).
    naive_permutations:
        Product of ``position_counts`` — the combinatorial upper bound on
        distinct decodings the paper reports as "Permutations".
    truncated:
        True when the enumeration cap was hit (the candidate list is then
        the top slice by log-probability, not exhaustive).
    sampled_text:
        The value string actually sampled by the model.
    """

    candidates: list[ValueCandidate]
    position_counts: list[int]
    naive_permutations: int
    truncated: bool
    sampled_text: str

    @property
    def values(self) -> np.ndarray:
        """Candidate values as an array (parallel to :attr:`probs`)."""
        return np.asarray([c.value for c in self.candidates], dtype=float)

    @property
    def probs(self) -> np.ndarray:
        """Normalized candidate probabilities from joint log-probs."""
        if not self.candidates:
            return np.empty(0)
        lp = np.asarray([c.logprob for c in self.candidates], dtype=float)
        z = lp - lp.max()
        w = np.exp(z)
        return w / w.sum()


def enumerate_value_decodings(
    steps: Sequence[StepCandidates],
    max_candidates: int = 20000,
) -> DecodingAlternatives:
    """Enumerate generable values from recorded value-region steps.

    The search walks the prefix tree of per-step candidates in best-first
    (joint log-probability) order.  A branch terminates — yielding a value —
    when it picks a non-numeric token (newline, end-of-turn, ...) or when it
    exhausts the recorded steps; branches whose accumulated text is not a
    parsable decimal are discarded.

    Parameters
    ----------
    steps:
        Recorded candidates for each step of the value region, in order.
        The first step should be the first token of the value.
    max_candidates:
        Enumeration cap; the exact combinatorial count is still reported in
        ``naive_permutations``.
    """
    if not steps:
        raise AnalysisError("cannot enumerate decodings of an empty step list")
    if max_candidates < 1:
        raise AnalysisError("max_candidates must be >= 1")

    # --- Table II per-position counts along the sampled path ----------- #
    # Positions are counted while the *sampled* path is still inside the
    # numeric value; at each such step we count every selectable token.
    position_counts: list[int] = []
    sampled_text = ""
    for step in steps:
        tok = step.chosen_token
        if not _valid_extension(sampled_text, tok):
            break
        position_counts.append(len(step.tokens))
        sampled_text += tok
    if not position_counts:
        # The sample never entered a numeric region; count the first step.
        position_counts = [len(steps[0].tokens)]
    naive_permutations = int(np.prod([max(c, 1) for c in position_counts]))

    # --- best-first enumeration over the candidate prefix tree --------- #
    step_logprobs = [s.log_probs() for s in steps]
    # Heap entries: (-joint_logprob, -depth, tiebreak, step_index, text).
    # Ties on log-probability prefer deeper nodes (depth-first), so flat
    # distributions still reach complete values instead of stalling in a
    # breadth-first frontier.
    counter = itertools.count()
    heap: list[tuple[float, int, int, int, str]] = [
        (0.0, 0, next(counter), 0, "")
    ]
    out: list[ValueCandidate] = []
    seen_texts: set[str] = set()
    # Expansion budget keeps worst-case work bounded even with huge fanout.
    budget = max_candidates * 50

    while heap and len(out) < max_candidates and budget > 0:
        neg_lp, _, _, i, text = heapq.heappop(heap)
        lp = -neg_lp
        budget -= 1
        if i >= len(steps):
            value = _parse_value(text)
            if value is not None and text not in seen_texts:
                seen_texts.add(text)
                out.append(
                    ValueCandidate(
                        text=text, value=value, logprob=lp, n_tokens=i
                    )
                )
            continue
        step = steps[i]
        lps = step_logprobs[i]
        for t, token in enumerate(step.tokens):
            child_lp = lp + float(lps[t])
            if _valid_extension(text, token):
                child_text = text + token
                if i + 1 == len(steps):
                    # Last recorded step: the value completes here — emit
                    # directly rather than round-tripping through the heap
                    # (which would starve under flat distributions, where
                    # best-first degenerates to breadth-first).
                    value = _parse_value(child_text)
                    if value is not None and child_text not in seen_texts:
                        seen_texts.add(child_text)
                        out.append(
                            ValueCandidate(
                                text=child_text,
                                value=value,
                                logprob=child_lp,
                                n_tokens=i + 1,
                            )
                        )
                else:
                    heapq.heappush(
                        heap,
                        (
                            -child_lp,
                            -(i + 1),
                            next(counter),
                            i + 1,
                            child_text,
                        ),
                    )
            else:
                # Non-numeric token terminates the value here.
                value = _parse_value(text)
                if value is not None and text not in seen_texts:
                    seen_texts.add(text)
                    out.append(
                        ValueCandidate(
                            text=text, value=value, logprob=child_lp, n_tokens=i
                        )
                    )
    truncated = bool(heap) or len(out) > max_candidates

    out.sort(key=lambda c: -c.logprob)
    if len(out) > max_candidates:
        out = out[:max_candidates]
    return DecodingAlternatives(
        candidates=out,
        position_counts=position_counts,
        naive_permutations=naive_permutations,
        truncated=truncated,
        sampled_text=sampled_text,
    )


@dataclass(frozen=True)
class TokenPositionStats:
    """Table II row: selectable-token statistics for one value position."""

    position: int
    mean_possibilities: float
    std_possibilities: float
    n_samples: int


def token_position_table(
    alternatives: Sequence[DecodingAlternatives],
) -> tuple[list[TokenPositionStats], "TokenPositionStats"]:
    """Aggregate per-position possibility counts across many generations.

    Returns
    -------
    (rows, permutations_row):
        ``rows`` holds one :class:`TokenPositionStats` per value-token
        position (1-based, like Table II); ``permutations_row`` aggregates
        the per-generation ``naive_permutations`` with ``position == 0``.
    """
    if not alternatives:
        raise AnalysisError("need at least one generation to tabulate")
    max_len = max(len(a.position_counts) for a in alternatives)
    rows: list[TokenPositionStats] = []
    for pos in range(max_len):
        counts = np.asarray(
            [
                a.position_counts[pos]
                for a in alternatives
                if len(a.position_counts) > pos
            ],
            dtype=float,
        )
        rows.append(
            TokenPositionStats(
                position=pos + 1,
                mean_possibilities=float(counts.mean()),
                std_possibilities=float(counts.std(ddof=0)),
                n_samples=int(counts.size),
            )
        )
    perms = np.asarray(
        [a.naive_permutations for a in alternatives], dtype=float
    )
    perm_row = TokenPositionStats(
        position=0,
        mean_possibilities=float(perms.mean()),
        std_possibilities=float(perms.std(ddof=0)),
        n_samples=int(perms.size),
    )
    return rows, perm_row
