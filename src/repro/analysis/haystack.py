"""Needle-in-a-haystack error-bounded search over generable values.

Section IV-C-1: the distribution of generable values is a "haystack" in
which a hypothetical post-hoc decoder might find "needles" — values within
a relative error bound of the ground truth.  The paper compares, at bounds
of 50% / 10% / 1%, the fraction of LLM *sampled* values within the bound
against XGBoost's test predictions, and also asks whether *any* generable
value qualifies (the LLM's "optimal capability").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.decoding import DecodingAlternatives
from repro.errors import AnalysisError
from repro.utils.validation import check_1d

__all__ = ["HaystackReport", "needle_fractions", "best_generable_error"]

#: The paper's three relative-error thresholds.
DEFAULT_BOUNDS: tuple[float, ...] = (0.5, 0.1, 0.01)


def needle_fractions(
    relative_errors, bounds: Sequence[float] = DEFAULT_BOUNDS
) -> dict[float, float]:
    """Fraction of values whose relative error is within each bound."""
    errs = check_1d(relative_errors, "relative_errors")
    if errs.size == 0:
        raise AnalysisError("no relative errors to score")
    if np.any(errs < 0):
        raise AnalysisError("relative errors must be non-negative")
    out = {}
    for b in bounds:
        if b <= 0:
            raise AnalysisError(f"error bound must be positive, got {b}")
        out[float(b)] = float((errs <= b).mean())
    return out


def best_generable_error(
    alternatives: DecodingAlternatives, truth: float
) -> float:
    """Minimal relative error over the whole haystack of one generation.

    This is the error a *perfect* post-hoc decoder could achieve by picking
    the best value the model could have produced.
    """
    if truth == 0:
        raise AnalysisError("relative error undefined for zero ground truth")
    values = alternatives.values
    if values.size == 0:
        raise AnalysisError("empty haystack")
    return float(np.min(np.abs(values - truth) / abs(truth)))


@dataclass(frozen=True)
class HaystackReport:
    """Needle fractions for sampled values and for the optimal decoder.

    Attributes
    ----------
    bounds:
        The relative-error thresholds, descending.
    sampled:
        Fraction of experiments whose *sampled* value met each bound.
    optimal:
        Fraction whose haystack contained *any* qualifying value (the
        hypothetical post-hoc decoder's ceiling).
    n:
        Number of experiments aggregated.
    """

    bounds: tuple[float, ...]
    sampled: dict[float, float]
    optimal: dict[float, float]
    n: int

    @staticmethod
    def build(
        sampled_errors,
        haystacks: Sequence[DecodingAlternatives],
        truths,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> "HaystackReport":
        """Aggregate one experiment batch into a report.

        Parameters
        ----------
        sampled_errors:
            Relative error of the sampled value per experiment.
        haystacks:
            Enumerated decodings per experiment (aligned with ``truths``).
        truths:
            Ground-truth runtime per experiment.
        """
        errs = check_1d(sampled_errors, "sampled_errors")
        truths = check_1d(truths, "truths")
        if len(haystacks) != errs.size or truths.size != errs.size:
            raise AnalysisError(
                "sampled_errors, haystacks and truths must align"
            )
        best = np.asarray(
            [
                best_generable_error(h, t)
                for h, t in zip(haystacks, truths)
            ],
            dtype=float,
        )
        return HaystackReport(
            bounds=tuple(float(b) for b in bounds),
            sampled=needle_fractions(errs, bounds),
            optimal=needle_fractions(best, bounds),
            n=int(errs.size),
        )
