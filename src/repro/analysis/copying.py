"""ICL copy-rate and prefix-cluster analysis.

Section IV-A: "the generated values strongly cluster around the most
common ICL values, but very few exact copies are generated.  Slightly over
10% of the generated values in all experiments are directly copied from
ICL" — and Figure 3 shows generable-value probability mass peaking near
dense in-context examples.  This module quantifies both phenomena.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.decoding import DecodingAlternatives
from repro.errors import AnalysisError

__all__ = [
    "shared_prefix_len",
    "copy_rate",
    "prefix_clusters",
    "CopyReport",
    "PrefixCluster",
]


def shared_prefix_len(a: str, b: str) -> int:
    """Length of the longest common prefix of two strings."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def copy_rate(generated: Sequence[str], icl_values: Sequence[str]) -> float:
    """Fraction of generated value strings exactly equal to an ICL value.

    String equality (not numeric) is deliberate: the paper's copy analysis
    is about verbatim parroting of context substrings.
    """
    if not generated:
        raise AnalysisError("no generated values to score")
    pool = set(icl_values)
    return sum(1 for g in generated if g in pool) / len(generated)


@dataclass(frozen=True)
class PrefixCluster:
    """Probability mass of candidates sharing a prefix with an ICL value."""

    icl_value: str
    mass: float
    n_candidates: int
    icl_multiplicity: int


@dataclass(frozen=True)
class CopyReport:
    """Per-generation clustering of candidate mass around ICL values.

    Attributes
    ----------
    clusters:
        One entry per distinct ICL value string, descending by mass.
    mean_prefix_overlap:
        Probability-weighted mean over candidates of the longest shared
        prefix (in characters) with *any* ICL value, normalized by
        candidate length — 1.0 means every candidate is a full ICL copy.
    mass_on_exact_copies:
        Total probability mass on candidates whose text equals an ICL value.
    """

    clusters: list[PrefixCluster]
    mean_prefix_overlap: float
    mass_on_exact_copies: float

    @property
    def densest_cluster(self) -> PrefixCluster:
        if not self.clusters:
            raise AnalysisError("report has no clusters")
        return self.clusters[0]


def prefix_clusters(
    alternatives: DecodingAlternatives,
    icl_values: Sequence[str],
    min_prefix: int = 3,
) -> CopyReport:
    """Attribute candidate probability mass to ICL value prefix clusters.

    Each candidate is assigned to the ICL value with which it shares the
    longest prefix (at least ``min_prefix`` characters; otherwise it stays
    unclustered).  The paper's Figure 3 is exactly the observation that the
    resulting mass concentrates on the ICL values that occur most often in
    the prompt.
    """
    if not alternatives.candidates:
        raise AnalysisError("cannot cluster an empty candidate set")
    if not icl_values:
        raise AnalysisError("need at least one ICL value")
    if min_prefix < 1:
        raise AnalysisError("min_prefix must be >= 1")

    icl_list = list(icl_values)
    distinct = sorted(set(icl_list))
    multiplicity = {v: icl_list.count(v) for v in distinct}
    probs = alternatives.probs

    mass = dict.fromkeys(distinct, 0.0)
    counts = dict.fromkeys(distinct, 0)
    overlap_sum = 0.0
    exact_mass = 0.0
    for i, cand in enumerate(alternatives.candidates):
        best_v, best_len = None, 0
        for v in distinct:
            plen = shared_prefix_len(cand.text, v)
            if plen > best_len:
                best_v, best_len = v, plen
        if cand.text in multiplicity:
            exact_mass += float(probs[i])
        if best_v is not None and best_len >= min_prefix:
            mass[best_v] += float(probs[i])
            counts[best_v] += 1
        if len(cand.text) > 0:
            overlap_sum += float(probs[i]) * best_len / len(cand.text)

    clusters = [
        PrefixCluster(
            icl_value=v,
            mass=mass[v],
            n_candidates=counts[v],
            icl_multiplicity=multiplicity[v],
        )
        for v in distinct
    ]
    clusters.sort(key=lambda c: -c.mass)
    return CopyReport(
        clusters=clusters,
        mean_prefix_overlap=overlap_sum,
        mass_on_exact_copies=exact_mass,
    )
