"""Value-distribution statistics over generable decodings.

Section IV-C examines whether the *distribution* of values an LLM could
have produced carries more information than the single sampled value:

* the probability-weighted mean/median of the haystack (both turn out
  *worse* than the sample in the paper);
* bimodality induced by distinct string prefixes (Figure 4: "1.7 vs 2.7");
* near-identity of the candidate token sets across sampling seeds, with
  only small logit perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.decoding import DecodingAlternatives
from repro.errors import AnalysisError
from repro.utils.validation import check_probability_vector, check_same_length

__all__ = [
    "DistributionSummary",
    "summarize_candidates",
    "bimodality_split",
    "cross_seed_similarity",
    "SeedSimilarity",
    "mode_confidence",
]


@dataclass(frozen=True)
class DistributionSummary:
    """Moments and extremes of a weighted candidate-value distribution."""

    mean: float
    median: float
    mode: float
    minimum: float
    maximum: float
    n_candidates: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within the generable range."""
        return self.minimum <= value <= self.maximum


def summarize_candidates(
    values: Sequence[float], probs: Sequence[float]
) -> DistributionSummary:
    """Summarize a discrete value distribution.

    ``median`` is the weighted median (smallest value whose cumulative
    probability reaches 0.5); ``mode`` is the highest-probability value.
    """
    vals, p = check_same_length(values, probs, "values", "probs")
    p = check_probability_vector(p, "probs")
    order = np.argsort(vals)
    vs, ps = vals[order], p[order]
    cum = np.cumsum(ps)
    median = float(vs[np.searchsorted(cum, 0.5)])
    return DistributionSummary(
        mean=float(np.sum(vs * ps)),
        median=median,
        mode=float(vals[int(np.argmax(p))]),
        minimum=float(vs[0]),
        maximum=float(vs[-1]),
        n_candidates=int(vals.size),
    )


@dataclass(frozen=True)
class PrefixMode:
    """One prefix-defined mode of a candidate distribution."""

    prefix: str
    mass: float
    mean_value: float
    n_candidates: int


def bimodality_split(
    alternatives: DecodingAlternatives,
    prefix_len: int = 3,
    mode_threshold: float = 0.15,
) -> tuple[list[PrefixMode], bool]:
    """Group candidate values by their string prefix and detect bimodality.

    Figure 4 observes that generations form modes keyed by distinct string
    prefixes (e.g. ``1.7`` vs ``2.7``).  We group candidates by the first
    ``prefix_len`` characters of their text, sum probability mass per
    group, and report the distribution *bimodal* when at least two groups
    each hold ``mode_threshold`` of the mass.

    Returns
    -------
    (modes, is_multimodal):
        Modes sorted by descending mass.
    """
    if prefix_len < 1:
        raise AnalysisError("prefix_len must be >= 1")
    if not alternatives.candidates:
        raise AnalysisError("cannot split an empty candidate set")
    probs = alternatives.probs
    groups: dict[str, list[int]] = {}
    for i, cand in enumerate(alternatives.candidates):
        groups.setdefault(cand.text[:prefix_len], []).append(i)
    modes = []
    for prefix, idxs in groups.items():
        mass = float(probs[idxs].sum())
        vals = np.asarray([alternatives.candidates[i].value for i in idxs])
        w = probs[idxs]
        mean_value = float((vals * w).sum() / w.sum()) if w.sum() > 0 else float(
            vals.mean()
        )
        modes.append(
            PrefixMode(
                prefix=prefix,
                mass=mass,
                mean_value=mean_value,
                n_candidates=len(idxs),
            )
        )
    modes.sort(key=lambda m: -m.mass)
    is_multimodal = len(modes) >= 2 and modes[1].mass >= mode_threshold
    return modes, is_multimodal


def mode_confidence(
    alternatives: DecodingAlternatives,
    truth: float,
    prefix_len: int = 3,
) -> tuple[bool, float]:
    """Is the heaviest prefix mode the one closest to the ground truth?

    Section IV-C: "We find that the logit weights are often higher in the
    mode closer to the ground truth, but not to such a degree that this
    method resolves enough ambiguity to improve the model's response."
    This function measures exactly that: it splits the candidate
    distribution into prefix modes and reports whether the highest-mass
    mode is also the mode whose mean value is nearest the truth, plus the
    mass margin between the top two modes.

    Returns
    -------
    (top_mode_is_closest, mass_margin):
        ``mass_margin`` is the top mode's mass minus the runner-up's
        (1.0 when unimodal) — small margins are the unresolved ambiguity
        the paper describes.
    """
    if truth <= 0:
        raise AnalysisError(f"truth must be positive, got {truth}")
    modes, _ = bimodality_split(alternatives, prefix_len=prefix_len)
    if len(modes) == 1:
        return True, 1.0
    closest = min(modes, key=lambda m: abs(m.mean_value - truth))
    margin = modes[0].mass - modes[1].mass
    return closest.prefix == modes[0].prefix, float(margin)


@dataclass(frozen=True)
class SeedSimilarity:
    """How similar two same-prompt generations are across sampling seeds."""

    mean_jaccard: float
    mean_abs_logit_delta: float
    n_positions: int
    identical_support: bool


def cross_seed_similarity(a, b) -> SeedSimilarity:
    """Compare the recorded candidate sets of two seeds of one prompt.

    Parameters
    ----------
    a, b:
        Sequences of :class:`repro.analysis.decoding.StepCandidates` —
        the value-region steps of the two generations.

    Section IV-A: "different seeds often produce identical token sets with
    slightly altered logit probabilities".  For each aligned position we
    compute the Jaccard overlap of candidate-token supports and, on the
    shared tokens, the mean absolute logit difference.
    """
    n = min(len(a), len(b))
    if n == 0:
        raise AnalysisError("need at least one aligned position")
    jaccards: list[float] = []
    deltas: list[float] = []
    identical = True
    for i in range(n):
        sa = dict(zip(a[i].tokens, np.asarray(a[i].logits, dtype=float)))
        sb = dict(zip(b[i].tokens, np.asarray(b[i].logits, dtype=float)))
        inter = set(sa) & set(sb)
        union = set(sa) | set(sb)
        jaccards.append(len(inter) / len(union) if union else 1.0)
        if set(sa) != set(sb):
            identical = False
        deltas.extend(abs(sa[t] - sb[t]) for t in inter)
    return SeedSimilarity(
        mean_jaccard=float(np.mean(jaccards)),
        mean_abs_logit_delta=float(np.mean(deltas)) if deltas else 0.0,
        n_positions=n,
        identical_support=identical,
    )
