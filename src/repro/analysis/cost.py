"""Computational-cost accounting: LLM inference vs. classic learners.

Section V-C argues against fine-tuning on efficiency grounds: "we do not
expect fine-tuning and LLM inference to be more computationally efficient
than existing non-LLM-based techniques suitable to such problems."  This
module makes that argument quantitative for the *inference* side too: it
counts prompt tokens per experiment and converts them to FLOP estimates
for a dense decoder-only transformer (approximately ``2 * parameters``
FLOPs per token), against the cost of fitting and evaluating a
gradient-boosted-tree baseline on the same examples.

The point the numbers make: a single 8B-parameter forward pass over one
100-example prompt costs orders of magnitude more compute than training
the entire XGBoost baseline from scratch.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.runner import ProbeResult
from repro.errors import AnalysisError

__all__ = [
    "TransformerCostModel",
    "GBTCostModel",
    "ContextCostRow",
    "context_cost_table",
]


@dataclass(frozen=True)
class TransformerCostModel:
    """FLOPs-per-token estimate for a dense decoder-only transformer.

    The standard approximation is ``2 * n_params`` FLOPs per processed
    token (forward pass); generated tokens cost the same per step.
    Defaults describe the paper's Meta-Llama-3.1-8B.
    """

    n_params: float = 8.0e9

    def prompt_flops(self, n_prompt_tokens: int, n_generated: int = 8) -> float:
        """FLOPs for one prediction (prompt processing + generation)."""
        if n_prompt_tokens < 0 or n_generated < 0:
            raise AnalysisError("token counts must be non-negative")
        return 2.0 * self.n_params * (n_prompt_tokens + n_generated)


@dataclass(frozen=True)
class GBTCostModel:
    """FLOP estimate for fitting + querying a boosted-tree ensemble.

    Histogram split finding visits each (row, feature) pair once per tree
    with a small constant; prediction walks ``depth`` nodes per tree.
    These constants are deliberately generous to the GBT's disadvantage.
    """

    n_trees: int = 200
    max_depth: int = 6
    n_features: int = 9
    flops_per_cell: float = 8.0

    def train_flops(self, n_rows: int) -> float:
        """FLOPs to fit the ensemble on ``n_rows`` examples."""
        if n_rows < 0:
            raise AnalysisError("n_rows must be non-negative")
        per_tree = self.flops_per_cell * n_rows * self.n_features * self.max_depth
        return per_tree * self.n_trees

    def predict_flops(self, n_rows: int = 1) -> float:
        """FLOPs to score ``n_rows`` configurations."""
        return 4.0 * self.max_depth * self.n_trees * n_rows


@dataclass(frozen=True)
class ContextCostRow:
    """Cost comparison at one ICL example count."""

    n_icl: int
    mean_prompt_tokens: float
    llm_flops_per_prediction: float
    gbt_train_plus_predict_flops: float

    @property
    def llm_overhead_factor(self) -> float:
        """How many times more compute the LLM prediction costs."""
        return self.llm_flops_per_prediction / max(
            self.gbt_train_plus_predict_flops, 1.0
        )


def context_cost_table(
    probes: list[ProbeResult],
    llm: TransformerCostModel | None = None,
    gbt: GBTCostModel | None = None,
) -> list[ContextCostRow]:
    """Per-ICL-count cost comparison from measured prompt lengths.

    For each ICL count present in ``probes``, compares one LLM prediction
    (full prompt + generation) against *training a GBT from scratch on
    the same number of examples and then predicting* — the most
    conservative possible framing for the LLM.
    """
    if not probes:
        raise AnalysisError("no probes to account")
    llm = llm or TransformerCostModel()
    gbt = gbt or GBTCostModel()
    tokens_by_icl: dict[int, list[int]] = defaultdict(list)
    for p in probes:
        tokens_by_icl[p.spec.n_icl].append(p.n_prompt_tokens)
    rows = []
    for n_icl in sorted(tokens_by_icl):
        mean_tokens = float(np.mean(tokens_by_icl[n_icl]))
        rows.append(
            ContextCostRow(
                n_icl=n_icl,
                mean_prompt_tokens=mean_tokens,
                llm_flops_per_prediction=llm.prompt_flops(int(mean_tokens)),
                gbt_train_plus_predict_flops=(
                    gbt.train_flops(n_icl) + gbt.predict_flops(1)
                ),
            )
        )
    return rows
