"""Analysis of predictions and language-model generations.

This package implements every quantitative lens the paper applies:

* :mod:`repro.analysis.metrics` — R^2, MARE, MSRE and relative errors;
* :mod:`repro.analysis.clt` — Central-Limit-Theorem aggregation across
  experiments with standard errors and confidence intervals;
* :mod:`repro.analysis.decoding` — enumeration of all feasible alternative
  decodings of a generation from recorded logits (Table II, Section IV-B);
* :mod:`repro.analysis.distributions` — value-distribution statistics:
  mean/median/mode decoding, bimodality, cross-seed logit similarity
  (Figure 4, Section IV-C);
* :mod:`repro.analysis.copying` — ICL copy-rate and prefix-cluster
  detection (Figure 3, Section IV-A);
* :mod:`repro.analysis.haystack` — "needles in a haystack" error-bounded
  search over generable values (Section IV-C-1).
"""

from repro.analysis.metrics import (
    PredictionMetrics,
    mare,
    msre,
    r2_score,
    relative_errors,
    score_predictions,
)
from repro.analysis.clt import CLTAggregate, aggregate_metric
from repro.analysis.decoding import (
    DecodingAlternatives,
    TokenPositionStats,
    ValueCandidate,
    enumerate_value_decodings,
    token_position_table,
)
from repro.analysis.distributions import (
    DistributionSummary,
    bimodality_split,
    cross_seed_similarity,
    mode_confidence,
    summarize_candidates,
)
from repro.analysis.copying import (
    CopyReport,
    copy_rate,
    prefix_clusters,
    shared_prefix_len,
)
from repro.analysis.haystack import HaystackReport, needle_fractions

__all__ = [
    "PredictionMetrics",
    "r2_score",
    "mare",
    "msre",
    "relative_errors",
    "score_predictions",
    "CLTAggregate",
    "aggregate_metric",
    "DecodingAlternatives",
    "TokenPositionStats",
    "ValueCandidate",
    "enumerate_value_decodings",
    "token_position_table",
    "DistributionSummary",
    "summarize_candidates",
    "bimodality_split",
    "cross_seed_similarity",
    "mode_confidence",
    "CopyReport",
    "copy_rate",
    "prefix_clusters",
    "shared_prefix_len",
    "HaystackReport",
    "needle_fractions",
]
