"""Lightweight timing helpers used by the experiment runner and examples."""

from __future__ import annotations

import time

__all__ = ["Timer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration human-readably (``842ms``, ``3.2s``, ``2m 05s``)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m {rem:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes:02d}m"


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self):
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None

    def __str__(self) -> str:
        return format_duration(self.elapsed)
