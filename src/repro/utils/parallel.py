"""Worker-pool helpers for embarrassingly parallel experiment grids.

The experiment runner fans hundreds of independent (prompt, seed) cells out
across processes.  Following the HPC guides, we keep the per-task payload
picklable and chunky (one full experiment cell, not one token) so IPC cost
is amortized, and we fall back to serial execution for tiny workloads where
pool startup would dominate.

The serving layer (:mod:`repro.serve`) reuses the same worker-count policy
for its thread pool; threads share the in-process model/cache state, so
``parallel_map`` also supports a thread executor and
:func:`effective_workers` lets IO-free batch schedulers opt out of the
core-count clamp (oversubscription).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = [
    "effective_workers",
    "mp_context",
    "parallel_map",
    "DEFAULT_WORKER_CAP",
]

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Below this many tasks a process pool costs more than it saves.
_SERIAL_THRESHOLD = 4

#: Default ceiling on auto-selected worker counts: beyond this the grid
#: workloads stop scaling (memory-bandwidth bound) on every tested host.
DEFAULT_WORKER_CAP = 16


def effective_workers(
    requested: int | None = None,
    *,
    cap: int | None = DEFAULT_WORKER_CAP,
    allow_oversubscription: bool = False,
) -> int:
    """Resolve a worker count against ``min(cpu_count, cap)``.

    The same clamp applies whether the count was requested explicitly or
    defaulted (``None`` means "all cores"): both are limited to the machine
    core count and then to ``cap``.  A request that gets clamped is logged,
    so a silently-shrunk pool is visible in debug output.

    Parameters
    ----------
    requested:
        Desired worker count, or ``None`` for "all cores (clamped)".
    cap:
        Upper bound on the resolved count (``None`` disables the cap and
        leaves only the core-count clamp).
    allow_oversubscription:
        When true, an explicit ``requested`` is returned as-is, bypassing
        both clamps.  This is for schedulers of IO-free or lock-free batch
        work (e.g. the :mod:`repro.serve` microbatcher) that intentionally
        run more workers than cores.  ``None`` still resolves to the
        clamped default.
    """
    cores = os.cpu_count() or 1
    limit = cores if cap is None else max(1, min(cores, cap))
    if requested is None:
        return limit
    if requested < 1:
        raise ValueError(f"workers must be >= 1, got {requested}")
    if allow_oversubscription or requested <= limit:
        return requested
    logger.debug(
        "clamping requested workers %d to %d (cores=%d, cap=%s)",
        requested, limit, cores, cap,
    )
    return limit


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing start method safe to use alongside threads.

    The POSIX default (``fork``) snapshots the parent mid-flight: any lock
    held by another thread — a logging handler, a cache lock, the serve
    collector's queue mutex — is copied locked into the child with no
    owner to release it, and the child deadlocks.  Every pool in this
    package therefore starts workers from a clean interpreter:
    ``forkserver`` where the platform offers it (cheaper after the first
    spawn), plain ``spawn`` otherwise.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:
        return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
    executor: str = "process",
    oversubscribe: bool = False,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    Runs serially when the workload is small or only one worker is
    available; otherwise uses a worker pool.

    Parameters
    ----------
    executor:
        ``"process"`` (default) uses a :class:`ProcessPoolExecutor`; ``fn``
        and every item must then be picklable.  ``"thread"`` uses a
        :class:`ThreadPoolExecutor` sharing in-process state — the right
        choice for work that hits shared caches or releases the GIL.
    oversubscribe:
        Forwarded to :func:`effective_workers`: lets an explicit
        ``workers`` exceed the core-count/cap clamp (thread pools only;
        oversubscribing processes is never useful here).
    """
    if executor not in ("process", "thread"):
        raise ValueError(f"unknown executor {executor!r}")
    if oversubscribe and executor == "process":
        raise ValueError("oversubscription is only supported for threads")
    items = list(items)
    n = len(items)
    nworkers = effective_workers(
        workers, allow_oversubscription=oversubscribe
    )
    if n == 0:
        return []
    if nworkers == 1 or n < _SERIAL_THRESHOLD:
        return [fn(item) for item in items]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=nworkers) as pool:
            return list(pool.map(fn, items))
    if chunksize is None:
        chunksize = max(1, n // (nworkers * 4))
    with ProcessPoolExecutor(
        max_workers=nworkers, mp_context=mp_context()
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
