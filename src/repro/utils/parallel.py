"""Process-pool helpers for embarrassingly parallel experiment grids.

The experiment runner fans hundreds of independent (prompt, seed) cells out
across processes.  Following the HPC guides, we keep the per-task payload
picklable and chunky (one full experiment cell, not one token) so IPC cost
is amortized, and we fall back to serial execution for tiny workloads where
pool startup would dominate.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["effective_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")

#: Below this many tasks a process pool costs more than it saves.
_SERIAL_THRESHOLD = 4


def effective_workers(requested: int | None = None) -> int:
    """Resolve a worker count: ``None`` means "all cores, capped at 16"."""
    cores = os.cpu_count() or 1
    if requested is None:
        return max(1, min(cores, 16))
    if requested < 1:
        raise ValueError(f"workers must be >= 1, got {requested}")
    return min(requested, cores)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    Runs serially when the workload is small or only one worker is
    available; otherwise uses a :class:`ProcessPoolExecutor`.  ``fn`` and
    every item must be picklable in the parallel path.
    """
    items = list(items)
    n = len(items)
    nworkers = effective_workers(workers)
    if n == 0:
        return []
    if nworkers == 1 or n < _SERIAL_THRESHOLD:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, n // (nworkers * 4))
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
