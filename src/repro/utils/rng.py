"""Deterministic, hierarchical random-number management.

Every stochastic component in the library (dataset noise, ICL example
selection, LM logit jitter, sampling, hyperparameter search, tuners) draws
its randomness from an explicit integer seed derived through a named
hierarchy.  Two runs with the same root seed therefore produce bit-identical
results regardless of execution order or parallelism, which is what lets the
benchmark harness reproduce the paper's tables deterministically.

The scheme hashes ``(parent_seed, *path)`` with BLAKE2 rather than using
``numpy.random.SeedSequence.spawn`` so that derivation is *stateless*:
deriving ``("experiment", 3, "sampling")`` yields the same child seed no
matter how many siblings were derived before it.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "rng_from", "SeedSequenceTree"]

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, *path: object) -> int:
    """Derive a child seed from ``parent`` and a hashable derivation path.

    Parameters
    ----------
    parent:
        The parent seed (any Python int; reduced modulo 2**64).
    path:
        Arbitrary path components (ints, strings, ...).  Components are
        rendered with ``repr`` and joined, so distinct paths collide only
        with cryptographic improbability.

    Returns
    -------
    int
        A uniformly distributed 63-bit seed (non-negative, fits ``int64``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(parent & _MASK64).encode("ascii"))
    for part in path:
        h.update(b"/")
        h.update(repr(part).encode("utf-8", errors="backslashreplace"))
    return int.from_bytes(h.digest(), "little") >> 1


def rng_from(parent: int, *path: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded by a derived seed."""
    return np.random.default_rng(derive_seed(parent, *path))


class SeedSequenceTree:
    """A named node in a deterministic seed-derivation tree.

    Examples
    --------
    >>> root = SeedSequenceTree(1234)
    >>> child = root.child("dataset", "SM")
    >>> rng = child.rng("noise")
    >>> child.seed == SeedSequenceTree(1234).child("dataset", "SM").seed
    True
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed) & _MASK64

    def child(self, *path: object) -> "SeedSequenceTree":
        """Return the child node reached by ``path``."""
        return SeedSequenceTree(derive_seed(self.seed, *path))

    def rng(self, *path: object) -> np.random.Generator:
        """Return a generator for the (optionally pathed) child node."""
        if path:
            return rng_from(self.seed, *path)
        return np.random.default_rng(self.seed)

    def spawn(self, n: int, *path: object) -> list["SeedSequenceTree"]:
        """Return ``n`` children indexed ``0..n-1`` beneath ``path``."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return [self.child(*path, i) for i in range(n)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeedSequenceTree) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("SeedSequenceTree", self.seed))

    def __repr__(self) -> str:
        return f"SeedSequenceTree(seed={self.seed})"


def permutation_without_replacement(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Sample ``k`` distinct indices from ``range(n)`` (order random).

    Raises
    ------
    ValueError
        If ``k > n`` or either argument is negative.
    """
    if k < 0 or n < 0:
        raise ValueError("n and k must be non-negative")
    if k > n:
        raise ValueError(f"cannot draw {k} distinct items from {n}")
    return rng.permutation(n)[:k]
