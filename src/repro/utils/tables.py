"""ASCII table rendering for benchmark output.

The benchmark harness prints each reproduced table/figure as a plain-text
table whose rows mirror the paper's layout.  This module provides a tiny,
dependency-free renderer with per-column alignment and float formatting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["format_float", "Table", "render_table"]


def format_float(value, digits: int = 4) -> str:
    """Format a float compactly: fixed-point when readable, else scientific.

    ``None`` and NaN render as ``"-"`` so missing cells stay aligned.
    """
    if value is None:
        return "-"
    v = float(value)
    if math.isnan(v):
        return "-"
    if math.isinf(v):
        return "inf" if v > 0 else "-inf"
    if v == 0:
        return "0"
    a = abs(v)
    if 1e-4 <= a < 1e7:
        s = f"{v:.{digits}f}"
        # Trim trailing zeros but keep at least one decimal digit.
        if "." in s:
            s = s.rstrip("0").rstrip(".")
            if "." not in s and abs(v - round(v)) > 0:
                s = f"{v:.{digits}f}"
        return s
    return f"{v:.{max(digits - 1, 1)}e}"


@dataclass
class Table:
    """A simple column-oriented table builder.

    Examples
    --------
    >>> t = Table(["n", "R2"], title="demo")
    >>> t.add_row([100, 0.44])
    >>> print(t.render())  # doctest: +SKIP
    """

    columns: Sequence[str]
    title: str = ""
    float_digits: int = 4
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Sequence[object]) -> None:
        """Append a row; floats are formatted, everything else ``str()``-ed."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but table has "
                f"{len(self.columns)} columns"
            )
        cells = []
        for v in values:
            if v is None or isinstance(v, float):
                cells.append(format_float(v, self.float_digits))
            else:
                cells.append(str(v))
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as aligned ASCII text."""
        return render_table(self.columns, self.rows, title=self.title)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Render header + rows as an aligned, pipe-separated ASCII table."""
    headers = [str(c) for c in columns]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt(headers))
    lines.append(sep)
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
