"""Shared utilities: seeded RNG trees, table rendering, parallel maps, timing.

These helpers keep the rest of the library deterministic (every stochastic
component draws from an explicit, hierarchically derived seed), presentable
(ASCII tables matching the paper's layout), and fast (process-pool fan-out
for embarrassingly parallel experiment grids, per the HPC guides).
"""

from repro.utils.rng import SeedSequenceTree, derive_seed, rng_from
from repro.utils.histogram import render_histogram
from repro.utils.tables import Table, format_float, render_table
from repro.utils.parallel import parallel_map, effective_workers
from repro.utils.timing import Timer, format_duration
from repro.utils.validation import (
    check_1d,
    check_fraction,
    check_positive,
    check_probability_vector,
    check_same_length,
)

__all__ = [
    "SeedSequenceTree",
    "derive_seed",
    "rng_from",
    "Table",
    "format_float",
    "render_table",
    "render_histogram",
    "parallel_map",
    "effective_workers",
    "Timer",
    "format_duration",
    "check_1d",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "check_same_length",
]
