"""Input-validation helpers shared across the library.

Each helper raises ``ValueError`` (or ``TypeError`` for wrong types) with a
message naming the offending argument, and returns the validated (and where
relevant, converted-to-ndarray) value so call sites stay one-liners.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_1d",
    "check_same_length",
    "check_positive",
    "check_fraction",
    "check_probability_vector",
]


def check_1d(x, name: str = "array") -> np.ndarray:
    """Coerce ``x`` to a 1-D float ndarray, rejecting higher ranks."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_same_length(a, b, name_a: str = "a", name_b: str = "b"):
    """Validate two 1-D arrays of equal nonzero length; return both."""
    arr_a = check_1d(a, name_a)
    arr_b = check_1d(b, name_b)
    if arr_a.shape[0] != arr_b.shape[0]:
        raise ValueError(
            f"{name_a} and {name_b} must have equal length, "
            f"got {arr_a.shape[0]} and {arr_b.shape[0]}"
        )
    if arr_a.shape[0] == 0:
        raise ValueError(f"{name_a} and {name_b} must be non-empty")
    return arr_a, arr_b


def check_positive(value, name: str = "value", *, strict: bool = True) -> float:
    """Validate a scalar is positive (or non-negative when not strict)."""
    v = float(value)
    if not np.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_fraction(value, name: str = "fraction", *, closed: bool = False) -> float:
    """Validate a scalar lies in (0, 1), or [0, 1] when ``closed``."""
    v = float(value)
    if closed:
        if not (0.0 <= v <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < v < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return v


def check_probability_vector(p, name: str = "p", *, atol: float = 1e-8) -> np.ndarray:
    """Validate a non-negative vector summing to one (within ``atol``)."""
    arr = check_1d(p, name)
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, atol * arr.size):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return np.clip(arr, 0.0, None)
