"""Text histograms for figure-like benchmark output.

The paper's Figures 3 and 4 are probability histograms over generable
values; the benchmark harness renders their text analogue: binned bars
scaled to a fixed width, with optional per-value weights (probability
mass) and markers for reference points (ICL values, ground truth).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d

__all__ = ["render_histogram"]

_BAR = "#"


def render_histogram(
    values,
    weights=None,
    bins: int = 12,
    width: int = 40,
    title: str = "",
    markers: dict[str, float] | None = None,
) -> str:
    """Render a weighted histogram as ASCII bars.

    Parameters
    ----------
    values:
        Sample values (1-D).
    weights:
        Optional per-value weights (probability mass); uniform if omitted.
    bins:
        Number of equal-width bins across the value range.
    width:
        Character width of the longest bar.
    title:
        Optional heading line.
    markers:
        Optional ``{label: value}`` reference points; each bin line is
        annotated with the labels of markers falling inside it.
    """
    vals = check_1d(values, "values")
    if vals.size == 0:
        raise ValueError("cannot render an empty histogram")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be >= 1")
    if weights is None:
        w = np.ones(vals.size)
    else:
        w = check_1d(weights, "weights")
        if w.shape != vals.shape:
            raise ValueError("weights must align with values")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")

    lo, hi = float(vals.min()), float(vals.max())
    if lo == hi:
        hi = lo + (abs(lo) or 1.0) * 1e-6
    edges = np.linspace(lo, hi, bins + 1)
    mass, _ = np.histogram(vals, bins=edges, weights=w)
    total = mass.sum() or 1.0
    frac = mass / total
    peak = frac.max() or 1.0

    lines = []
    if title:
        lines.append(title)
    for b in range(bins):
        bar = _BAR * int(round(width * frac[b] / peak))
        note = ""
        if markers:
            inside = [
                label
                for label, value in markers.items()
                if edges[b] <= value < edges[b + 1]
                or (b == bins - 1 and value == edges[-1])
            ]
            if inside:
                note = "  <- " + ", ".join(sorted(inside))
        lines.append(
            f"[{edges[b]:>10.5f}, {edges[b + 1]:>10.5f}) "
            f"{frac[b]:6.1%} |{bar:<{width}}|{note}"
        )
    return "\n".join(lines)
