"""Graceful-degradation fallback chain for the resilience layer.

When the live generation path is unavailable (retries exhausted, breaker
open), the service degrades through three rungs rather than failing:

1. **result cache** — an exact prior answer for this request (free and
   bit-identical to the live path);
2. **GBT surrogate** — a small gradient-boosted model from
   :mod:`repro.gbt`, trained once per size on the synthetic performance
   dataset (the paper's own baseline regressor standing in for the LLM);
3. **magnitude prior** — the median runtime of the request's own ICL
   examples, the weakest guess that is still on the right order of
   magnitude (the paper shows ICL predictions cluster on the example
   values anyway).

Every degraded :class:`~repro.serve.request.Response` is flagged
``degraded=True`` and carries the rung that produced it in
``provenance``, so downstream analyses can weigh or drop such answers.
"""

from __future__ import annotations

import time
from dataclasses import replace
from functools import lru_cache

import numpy as np

from repro.core.surrogate import SurrogatePrediction
from repro.dataset.generate import generate_dataset
from repro.errors import ReproError
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.obs import get_tracer
from repro.serve.request import Request, Response

__all__ = ["FallbackChain"]

#: Training-set size for the per-size fallback GBT: enough rows for a
#: usable model, small enough that the first degraded serve stays fast.
_GBT_TRAIN_ROWS = 400


@lru_cache(maxsize=8)
def _gbt_stack(size: str):
    """Fit the per-size fallback model once (process-lifetime cache)."""
    dataset = generate_dataset(size)
    sub = dataset.subset(np.arange(min(len(dataset), _GBT_TRAIN_ROWS)))
    encoder = FeatureEncoder(dataset.space)
    transform = TargetTransform("log")
    model = GradientBoostingRegressor(
        BoostingParams(
            n_estimators=40,
            learning_rate=0.15,
            max_depth=4,
            min_samples_leaf=2,
        )
    ).fit(encoder.encode_dataset(sub), transform.forward(sub.runtimes))
    return dataset.space, encoder, transform, model


class FallbackChain:
    """The cache → GBT → magnitude-prior degradation ladder.

    Parameters
    ----------
    service:
        The wrapped :class:`~repro.serve.service.PredictionService`
        (source of the result-cache rung); ``None`` skips that rung.
    use_cache, use_gbt, use_prior:
        Rung kill-switches (tests pin each rung by disabling the ones
        above it).
    """

    def __init__(
        self,
        service=None,
        *,
        use_cache: bool = True,
        use_gbt: bool = True,
        use_prior: bool = True,
    ):
        self._service = service
        self.use_cache = use_cache
        self.use_gbt = use_gbt
        self.use_prior = use_prior

    def degraded_response(
        self, request: Request, request_id: int = -1
    ) -> Response | None:
        """Best degraded answer for ``request``, or ``None`` if every rung
        is disabled (the caller then surfaces the original failure)."""
        start = time.monotonic()
        tracer = get_tracer()
        with tracer.span("resilience.fallback", size=request.size) as chain:
            if self.use_cache and self._service is not None:
                with tracer.span("fallback.result_cache") as rung:
                    cached = self._service.cached_response(request)
                    rung.set(hit=cached is not None)
                if cached is not None:
                    chain.set(rung="result-cache")
                    return replace(
                        cached, degraded=True, provenance="result-cache"
                    )
            if self.use_gbt:
                with tracer.span("fallback.gbt_surrogate") as rung:
                    try:
                        value = self._gbt_value(request)
                    except ReproError:
                        # Unknown size/space: fall through to the prior.
                        value = None
                    rung.set(hit=value is not None)
                if value is not None:
                    chain.set(rung="gbt-surrogate")
                    return self._synthetic(
                        request, request_id, value, "gbt-surrogate", start
                    )
            if self.use_prior:
                with tracer.span("fallback.magnitude_prior"):
                    value = float(
                        np.median(
                            [runtime for _, runtime in request.examples]
                        )
                    )
                chain.set(rung="magnitude-prior")
                return self._synthetic(
                    request, request_id, value, "magnitude-prior", start
                )
            chain.set(rung="none")
            return None

    # ------------------------------------------------------------------ #
    def _gbt_value(self, request: Request) -> float:
        space, encoder, transform, model = _gbt_stack(request.size)
        index = space.to_index(request.query_config)
        features = encoder.encode_indices([index])
        return float(transform.inverse(model.predict(features))[0])

    @staticmethod
    def _synthetic(
        request: Request,
        request_id: int,
        value: float,
        provenance: str,
        start: float,
    ) -> Response:
        prediction = SurrogatePrediction(
            value=value,
            value_text=f"{value:.7f}",
            generated_text="",
            icl_value_strings=[],
            value_steps=[],
            n_prompt_tokens=0,
            seed=int(request.seed),
        )
        return Response(
            request_id=request_id,
            prediction=prediction,
            latency_s=time.monotonic() - start,
            batch_size=1,
            degraded=True,
            provenance=provenance,
        )
