"""Thread-safe LRU caching for the inference service.

Two cache levels share this implementation (see DESIGN.md §Serving layer):

* the **prepare cache** memoizes :meth:`SurrogateLM.prepare` — the one-time
  prompt analysis — keyed on the prompt fingerprint alone, so repeated
  prompts skip the analysis pass even when the seed differs;
* the **result cache** memoizes the full
  :class:`~repro.core.surrogate.SurrogatePrediction`, keyed on
  ``(prompt fingerprint, seed, sampling params, max_new_tokens)`` — valid
  because generation is bit-reproducible on exactly that key (the engine's
  determinism contract).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Hashable

import numpy as np

__all__ = ["MISS", "LRUCache", "prompt_fingerprint"]


class _Miss:
    """Sentinel distinguishing "not cached" from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISS>"

    def __bool__(self) -> bool:
        return False


MISS = _Miss()


def prompt_fingerprint(prompt_ids: np.ndarray) -> str:
    """Collision-resistant digest of a token-id sequence.

    Token ids fully determine the prompt (the tokenizer is injective over
    its vocabulary), so hashing the raw id bytes keys both cache levels
    without retaining the prompt itself.
    """
    ids = np.ascontiguousarray(np.asarray(prompt_ids, dtype=np.int64))
    return hashlib.blake2b(ids.tobytes(), digest_size=16).hexdigest()


class LRUCache:
    """A bounded least-recently-used map with hit/miss counters.

    All operations are O(1) and thread-safe; the service's batch workers
    share one instance per cache level.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> object:
        """Return the cached value or :data:`MISS`, updating recency."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return MISS

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the least recent on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def peek(self, key: Hashable) -> object:
        """Return the cached value or :data:`MISS` without side effects.

        Neither the hit/miss counters nor LRU recency are touched — the
        degradation fallback uses this so its cache probes don't distort
        the service's hit-rate metrics or eviction order.
        """
        with self._lock:
            return self._data.get(key, MISS)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def snapshot(self) -> tuple[int, int, int]:
        """Consistent ``(hits, misses, size)`` taken under one lock.

        Reading ``hits`` and ``misses`` as two separate property calls can
        tear around a concurrent :meth:`get` (hit counted in one read but
        not the other), which is how a metrics scrape once reported a hit
        rate above 1.0.  Metrics collectors must use this instead.
        """
        with self._lock:
            return (self._hits, self._misses, len(self._data))

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        hits, misses, _ = self.snapshot()
        total = hits + misses
        return hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data
