"""Service metrics: latency percentiles, throughput, batching, cache hits.

A :class:`StatsRecorder` is the live, lock-protected accumulator the
service updates on every event; :meth:`StatsRecorder.snapshot` freezes it
into an immutable :class:`ServiceStats` for reporting (the ``repro
serve-bench`` subcommand renders one per configuration).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.utils.tables import Table
from repro.utils.timing import format_duration

__all__ = ["ServiceStats", "StatsRecorder"]


@dataclass(frozen=True)
class ServiceStats:
    """A frozen snapshot of service-level metrics.

    Latencies are end-to-end per request: queue wait + batch execution
    (or cache lookup).  Throughput is completed requests over the busy
    window (first submit to last completion).
    """

    n_submitted: int
    n_completed: int
    n_failed: int
    #: Overload rejections only (queue full); submissions refused because
    #: the service was closed count in ``n_closed_rejects`` — a shutdown
    #: is operator intent, not backpressure, and conflating them made
    #: rejection rates lie during drains.
    n_rejected: int
    n_timeouts: int
    n_batches: int
    max_batch_size: int
    mean_batch_size: float
    p50_latency_s: float
    p95_latency_s: float
    throughput_rps: float
    prepare_hits: int
    prepare_misses: int
    result_hits: int
    result_misses: int
    #: Submissions refused because the service was closed/draining.
    n_closed_rejects: int = 0
    #: Time spent in the admission queue before a batch worker picked the
    #: request up — the backpressure component of end-to-end latency.
    p50_queue_wait_s: float = 0.0
    p95_queue_wait_s: float = 0.0
    # Prefix-reuse layer (repro.llm.prefix_cache); all zero when the
    # service runs with enable_prefix_cache=False.
    prefix_hits: int = 0
    prefix_misses: int = 0
    #: Shared-prompt decode groups the batch workers executed.
    n_groups: int = 0
    #: Requests served through a group's lockstep decode (leader +
    #: followers).
    n_group_served: int = 0
    mean_group_width: float = 0.0
    # Resilience layer (repro.serve.resilience); all zero when requests
    # bypass the ResilientService wrapper.
    n_late_discards: int = 0
    n_retries: int = 0
    n_breaker_trips: int = 0
    n_degraded: int = 0
    n_logical: int = 0
    n_unavailable: int = 0

    @property
    def batch_occupancy(self) -> float:
        """Mean batch fill as a fraction of the configured maximum."""
        if self.max_batch_size <= 0:
            return 0.0
        return self.mean_batch_size / self.max_batch_size

    @property
    def prepare_hit_rate(self) -> float:
        total = self.prepare_hits + self.prepare_misses
        return self.prepare_hits / total if total else 0.0

    @property
    def result_hit_rate(self) -> float:
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0

    @property
    def prefix_hit_rate(self) -> float:
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    @property
    def availability(self) -> float:
        """Fraction of logical requests answered (degraded ones count).

        A logical request is one ``ResilientService.submit`` call; only
        requests that ultimately raised are unavailable.  1.0 before any
        resilient traffic.
        """
        if self.n_logical <= 0:
            return 1.0
        return 1.0 - self.n_unavailable / self.n_logical

    @property
    def degraded_rate(self) -> float:
        """Fraction of logical requests served via the fallback chain."""
        if self.n_logical <= 0:
            return 0.0
        return self.n_degraded / self.n_logical

    def render(self, title: str = "service stats") -> str:
        """ASCII table of the snapshot (the serve-bench report body)."""
        t = Table(["metric", "value"], title=title)
        t.add_row(["requests submitted", self.n_submitted])
        t.add_row(["requests completed", self.n_completed])
        t.add_row(["requests failed", self.n_failed])
        t.add_row(["requests rejected (overload)", self.n_rejected])
        t.add_row(["requests rejected (closed)", self.n_closed_rejects])
        t.add_row(["requests timed out", self.n_timeouts])
        t.add_row(["throughput (req/s)", round(self.throughput_rps, 1)])
        t.add_row(["p50 latency", format_duration(self.p50_latency_s)])
        t.add_row(["p95 latency", format_duration(self.p95_latency_s)])
        if self.p50_queue_wait_s or self.p95_queue_wait_s:
            t.add_row(
                ["p50 queue wait", format_duration(self.p50_queue_wait_s)]
            )
            t.add_row(
                ["p95 queue wait", format_duration(self.p95_queue_wait_s)]
            )
        t.add_row(["batches dispatched", self.n_batches])
        t.add_row(["mean batch size", round(self.mean_batch_size, 2)])
        t.add_row(["batch occupancy", f"{self.batch_occupancy:.0%}"])
        t.add_row(["prepare-cache hit rate", f"{self.prepare_hit_rate:.0%}"])
        t.add_row(["result-cache hit rate", f"{self.result_hit_rate:.0%}"])
        if self.prefix_hits or self.prefix_misses:
            t.add_row(["prefix-cache hit rate", f"{self.prefix_hit_rate:.0%}"])
        if self.n_groups:
            t.add_row(["prefix decode groups", self.n_groups])
            t.add_row(["grouped requests", self.n_group_served])
            t.add_row(
                ["mean decode-group width", round(self.mean_group_width, 2)]
            )
        t.add_row(["late completions discarded", self.n_late_discards])
        if self.n_logical:
            t.add_row(["logical requests (resilient)", self.n_logical])
            t.add_row(["retries", self.n_retries])
            t.add_row(["breaker trips", self.n_breaker_trips])
            t.add_row(["degraded serves", self.n_degraded])
            t.add_row(["degraded-serve rate", f"{self.degraded_rate:.1%}"])
            t.add_row(["availability", f"{self.availability:.2%}"])
        return t.render()


class StatsRecorder:
    """Lock-protected accumulator behind :class:`ServiceStats`.

    Latency samples are kept in full (service lifetimes here are bench
    runs, not months), so the percentiles are exact.
    """

    def __init__(self, max_batch_size: int):
        self._lock = threading.Lock()
        self._max_batch_size = int(max_batch_size)
        self._latencies: list[float] = []
        self._queue_waits: list[float] = []
        self._batch_sizes: list[int] = []
        self._group_widths: list[int] = []
        self._submitted = 0
        self._failed = 0
        self._rejected = 0
        self._closed_rejects = 0
        self._timeouts = 0
        self._late_discards = 0
        self._retries = 0
        self._breaker_trips = 0
        self._degraded = 0
        self._logical = 0
        self._unavailable = 0
        self._first_submit_t: float | None = None
        self._last_done_t: float | None = None

    # ------------------------------------------------------------------ #
    def record_submit(self) -> None:
        with self._lock:
            self._submitted += 1
            if self._first_submit_t is None:
                self._first_submit_t = time.monotonic()

    def record_reject(self) -> None:
        """An overload rejection (queue full — genuine backpressure)."""
        with self._lock:
            self._rejected += 1

    def record_closed_reject(self) -> None:
        """A submission refused because the service was closed/draining."""
        with self._lock:
            self._closed_rejects += 1

    def record_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1

    def record_late_discard(self) -> None:
        """A timed-out request's work completed anyway and was dropped."""
        with self._lock:
            self._late_discards += 1

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def record_breaker_trip(self) -> None:
        with self._lock:
            self._breaker_trips += 1

    def record_degraded(self) -> None:
        with self._lock:
            self._degraded += 1

    def record_logical(self) -> None:
        """One ``ResilientService.submit`` call (denominator of availability)."""
        with self._lock:
            self._logical += 1

    def record_unavailable(self) -> None:
        """A logical request that ultimately raised to its caller."""
        with self._lock:
            self._unavailable += 1

    def record_batch(self, batch_size: int) -> None:
        with self._lock:
            self._batch_sizes.append(int(batch_size))

    def record_queue_wait(self, wait_s: float) -> None:
        """Admission-to-pickup delay for one request."""
        with self._lock:
            self._queue_waits.append(max(float(wait_s), 0.0))

    def record_group(self, width: int) -> None:
        """One shared-prompt lockstep decode serving ``width`` requests."""
        with self._lock:
            self._group_widths.append(int(width))

    def record_done(self, latency_s: float) -> None:
        """A successful completion with its end-to-end latency."""
        with self._lock:
            self._last_done_t = time.monotonic()
            self._latencies.append(float(latency_s))

    def record_failed(self) -> None:
        """A failed request.  Latency-free by design: a failure has no
        meaningful end-to-end latency, and the ``0.0`` the old API forced
        callers to pass would have poisoned the percentiles had it ever
        been recorded."""
        with self._lock:
            self._last_done_t = time.monotonic()
            self._failed += 1

    # ------------------------------------------------------------------ #
    def snapshot(
        self,
        prepare_hits: int = 0,
        prepare_misses: int = 0,
        result_hits: int = 0,
        result_misses: int = 0,
        prefix_hits: int = 0,
        prefix_misses: int = 0,
    ) -> ServiceStats:
        """Freeze current counters (cache counters supplied by the owner)."""
        with self._lock:
            lat = np.asarray(self._latencies, dtype=float)
            n_done = int(lat.size)
            p50 = float(np.percentile(lat, 50)) if n_done else 0.0
            p95 = float(np.percentile(lat, 95)) if n_done else 0.0
            waits = np.asarray(self._queue_waits, dtype=float)
            qw50 = float(np.percentile(waits, 50)) if waits.size else 0.0
            qw95 = float(np.percentile(waits, 95)) if waits.size else 0.0
            window = 0.0
            if self._first_submit_t is not None and self._last_done_t is not None:
                window = max(self._last_done_t - self._first_submit_t, 1e-9)
            sizes = self._batch_sizes
            return ServiceStats(
                n_submitted=self._submitted,
                n_completed=n_done,
                n_failed=self._failed,
                n_rejected=self._rejected,
                n_closed_rejects=self._closed_rejects,
                n_timeouts=self._timeouts,
                n_batches=len(sizes),
                max_batch_size=self._max_batch_size,
                mean_batch_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
                p50_latency_s=p50,
                p95_latency_s=p95,
                p50_queue_wait_s=qw50,
                p95_queue_wait_s=qw95,
                throughput_rps=(n_done / window) if window else 0.0,
                prepare_hits=prepare_hits,
                prepare_misses=prepare_misses,
                result_hits=result_hits,
                result_misses=result_misses,
                prefix_hits=prefix_hits,
                prefix_misses=prefix_misses,
                n_groups=len(self._group_widths),
                n_group_served=sum(self._group_widths),
                mean_group_width=(
                    sum(self._group_widths) / len(self._group_widths)
                    if self._group_widths
                    else 0.0
                ),
                n_late_discards=self._late_discards,
                n_retries=self._retries,
                n_breaker_trips=self._breaker_trips,
                n_degraded=self._degraded,
                n_logical=self._logical,
                n_unavailable=self._unavailable,
            )
