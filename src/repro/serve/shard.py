"""Sharded multi-process serving: N worker replicas behind one façade.

Every layer below this one executes inside a single Python process, so
the CPU-bound surrogate decode is GIL-serialized no matter how many
cores the host has.  :class:`ShardedPredictionService` scales it out:
``N`` worker processes, each hosting a **full replica** of the stack —
a :class:`~repro.serve.service.PredictionService` with its own
microbatcher, prepare/result caches, and per-surrogate prefix caches —
behind the same submit/submit_many/stats/close API.

Design points (DESIGN.md §12):

* **Routing** is rendezvous (highest-random-weight) hashing on the
  request's seed-independent ``prompt_key``
  (:func:`route_shard`): same-prompt traffic always lands on the same
  shard, so prefix-group/lockstep-decode and cache hit rates survive
  sharding instead of being diluted ``1/N`` by round-robin.
* **Transport** is pickled :class:`~repro.serve.request.Request` /
  :class:`~repro.serve.request.Response` pairs: a bounded per-shard
  inbox queue parent → worker, and a *private pipe* per shard worker →
  parent (the collector multiplexes them with
  ``multiprocessing.connection.wait``).  A full inbox raises
  :class:`~repro.errors.ServiceOverloadedError` exactly like the
  single-process admission queue (``block=True`` waits instead), so
  backpressure semantics are unchanged.  Results deliberately do NOT
  share one ``mp.Queue``: concurrent queue writers serialize on a
  shared cross-process lock, and a worker SIGKILLed while holding it
  (chaos drills do exactly this) would wedge every other shard's
  replies forever.  One writer per pipe means a kill can only ever
  sever that shard's own channel — the parent sees EOF, nothing else.
* **Trace propagation** (DESIGN.md §14): when tracing is on, the parent
  sends its ``shard.submit`` span id with each request; the worker runs
  its own :class:`~repro.obs.Tracer` in a disjoint span-id block and
  ships finished spans back over the result pipe (piggybacked on
  replies, final sweep before ``bye``), so the parent stitches one
  coherent cross-process span tree.
* **Worker death** is detected by a watchdog thread: in-flight tickets
  on the dead shard fail with the typed
  :class:`~repro.errors.ShardCrashError` (retryable), the shard is
  respawned with a capped restart budget, and beyond the cap submissions
  routed to it raise :class:`~repro.errors.ShardFailedError`.
  ``repro chaos`` kills shards deterministically through
  ``FaultPlan.shard_kill_rate`` (keyed on the dispatch index) or
  explicitly via :meth:`ShardedPredictionService.kill_shard`.
* **Determinism**: a prediction is a pure function of (prompt, seed,
  sampling params) — the engine's determinism contract — and routing
  never changes those inputs, so predictions are bit-identical for any
  shard count, including 0 (the in-process default;
  :func:`make_service` selects the backend).  Serving *metadata*
  (latency, batch size) reflects the actual execution and is excluded
  from the contract.

Workers are started from a clean interpreter
(:func:`repro.utils.parallel.mp_context`: forkserver/spawn, never
fork) — the parent runs collector and watchdog threads, and forking a
threaded process copies locked locks into the child.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import itertools
import pickle
import queue
import threading
import time
from multiprocessing import connection as mp_connection
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Iterable

from repro.errors import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardCrashError,
    ShardFailedError,
)
from repro.faults import FaultInjector, FaultPlan, FaultStats
from repro.obs import Tracer, get_tracer, set_tracer
from repro.obs.tracer import worker_id_start
from repro.serve.request import Request, Response
from repro.serve.service import PredictionService
from repro.serve.stats import ServiceStats, StatsRecorder
from repro.utils.parallel import mp_context
from repro.utils.rng import derive_seed

__all__ = ["ShardedPredictionService", "make_service", "route_shard"]

#: Watchdog poll period: how quickly a dead worker is noticed.
_WATCHDOG_POLL_S = 0.05

#: Per-attempt wait while cooperatively block-putting into a full inbox.
_BLOCK_PUT_POLL_S = 0.05


def route_shard(prompt_key: str, n_shards: int, route_seed: int = 0) -> int:
    """Rendezvous-hash a prompt key onto one of ``n_shards`` shards.

    Pure function of ``(route_seed, prompt_key, shard index)``: every
    submitter computes the same owner for the same prompt, and changing
    the shard count only remaps the keys whose winner changed (the
    rendezvous property) — cache-affinity-friendly, seed-independent.
    """
    if n_shards < 1:
        raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
    return max(
        range(n_shards),
        key=lambda s: derive_seed(route_seed, "shard-route", prompt_key, s),
    )


# ---------------------------------------------------------------------- #
# Worker side (runs in the shard process)
# ---------------------------------------------------------------------- #
def _portable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a wrapper.

    Library errors define ``__reduce__`` for exactly this path; anything
    exotic (a third-party error with unpicklable state) degrades to a
    plain :class:`ServiceError` carrying the rendered message rather
    than poisoning the results pipe.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ServiceError(f"{type(exc).__name__}: {exc}")


def _relay_result(
    reply, ship_spans, shard_id, generation, ticket_id, future
) -> None:
    """Done-callback shipping one worker-side outcome to the parent."""
    try:
        exc = future.exception()
    except BaseException:  # cancelled during a non-drain close
        exc = ServiceClosedError("request cancelled in shard worker")
    if exc is None:
        reply(("ok", shard_id, generation, ticket_id, future.result()))
    else:
        reply(
            ("err", shard_id, generation, ticket_id, _portable_error(exc))
        )
    # Piggyback finished spans on the reply: by the time the future
    # resolves, the request's span tree in this worker is closed, so the
    # parent can stitch it while the trace is still warm.
    ship_spans()


def _shard_worker_main(
    shard_id: int,
    generation: int,
    service_kwargs: dict,
    fault_plan,
    inbox,
    results,
) -> None:
    """Shard worker entry point: host one full service replica.

    Top-level by necessity (spawn/forkserver pickle the target by
    qualified name).  Message protocol, parent → worker over ``inbox``::

        ("req", ticket_id, Request, trace_parent|None)
                                      submit; outcome goes to ``results``
        ("stats", token)              reply with a stats/fault snapshot
        ("stop", drain)               close the service, reply "bye", exit

    and worker → parent over this shard's private ``results`` pipe::

        ("ok"|"err", shard, gen, ticket_id, Response|error)
        ("spans", shard, gen, span records, worker monotonic now)
        ("stats", shard, gen, token, ServiceStats, fault snapshot|None)
        ("bye", shard, gen, ServiceStats, fault snapshot|None)

    ``trace_parent`` is the parent process's ``shard.submit`` span id;
    when present, a worker-side tracer (ids from a disjoint
    per-(shard, generation) block, see
    :func:`~repro.obs.tracer.worker_id_start`) wraps the replica submit
    in a ``shard.worker`` span parented to it, and finished spans are
    drained back as ``spans`` messages — piggybacked after each reply
    and once more before ``bye``, so the parent stitches one coherent
    cross-process tree.  A worker SIGKILLed with undrained spans loses
    them; the parent's tree renders the surviving subtrees as marked
    orphans.

    Every message carries the shard's spawn ``generation`` so the parent
    can discard stragglers from an incarnation it already declared dead.
    """
    service = PredictionService(fault_plan=fault_plan, **service_kwargs)
    # The done callbacks fire on executor threads concurrently with this
    # loop's stats/bye replies; Connection.send is not thread-safe, so
    # every write to the results pipe goes through one in-process lock.
    send_lock = threading.Lock()

    def reply(msg) -> None:
        try:
            with send_lock:
                results.send(msg)
        except (BrokenPipeError, OSError):  # parent gone; nothing to tell
            pass

    def faults_snapshot():
        if service.faults is None:
            return None
        return service.faults.stats.snapshot()

    # Created on the first traced request; untraced runs never pay for
    # a tracer (the global stays the disabled NULL_TRACER).
    tracer: Tracer | None = None

    def ship_spans() -> None:
        if tracer is None:
            return
        records = tracer.drain()
        if records:
            reply(("spans", shard_id, generation, records, time.monotonic()))

    try:
        while True:
            msg = inbox.get()
            kind = msg[0]
            if kind == "req":
                ticket_id, request = msg[1], msg[2]
                trace_parent = msg[3] if len(msg) > 3 else None
                if trace_parent is not None and tracer is None:
                    tracer = Tracer(
                        id_start=worker_id_start(shard_id, generation)
                    )
                    set_tracer(tracer)
                if trace_parent is not None and tracer is not None:
                    span = tracer.span(
                        "shard.worker",
                        parent=trace_parent,
                        shard=shard_id,
                        generation=generation,
                    )
                else:
                    span = contextlib.nullcontext()
                try:
                    # block=True: a saturated replica parks this loop,
                    # the inbox fills, and the parent's put_nowait sees
                    # queue.Full — backpressure propagates end to end.
                    # The shard.worker span is open across the submit, so
                    # the replica's Ticket captures it as trace parent
                    # and the in-process span chain hangs off it.
                    with span:
                        future = service.submit_async(request, block=True)
                except Exception as exc:
                    reply(
                        (
                            "err",
                            shard_id,
                            generation,
                            ticket_id,
                            _portable_error(exc),
                        )
                    )
                    continue
                future.add_done_callback(
                    functools.partial(
                        _relay_result,
                        reply,
                        ship_spans,
                        shard_id,
                        generation,
                        ticket_id,
                    )
                )
            elif kind == "stats":
                reply(
                    (
                        "stats",
                        shard_id,
                        generation,
                        msg[1],
                        service.stats(),
                        faults_snapshot(),
                    )
                )
            elif kind == "stop":
                service.close(drain=bool(msg[1]))
                # Final span drain before the goodbye: drained requests'
                # done-callbacks have all fired by now, so this sweep
                # catches spans whose piggyback raced the close.
                ship_spans()
                reply(
                    (
                        "bye",
                        shard_id,
                        generation,
                        service.stats(),
                        faults_snapshot(),
                    )
                )
                return
    except (EOFError, KeyboardInterrupt):  # parent gone / interrupted
        service.close(drain=False)


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class _Inflight:
    """Parent-side record of one ticket dispatched to a shard."""

    __slots__ = ("future", "shard", "generation", "enqueued_at",
                 "trace_parent")

    def __init__(
        self, shard: int, generation: int, trace_parent: int | None = None
    ):
        self.future: Future = Future()
        self.shard = shard
        self.generation = generation
        self.enqueued_at = time.monotonic()
        #: Parent-side ``shard.submit`` span id (None when untraced);
        #: the retroactive ``shard.roundtrip`` span parents to it.
        self.trace_parent = trace_parent


class _ShardSlot:
    """One shard's process, inbox, and per-incarnation bookkeeping."""

    __slots__ = (
        "index",
        "process",
        "inbox",
        "generation",
        "restarts",
        "failed",
        "last_stats",
        "last_faults",
        "retired_stats",
        "retired_faults",
    )

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.inbox = None
        self.generation = 0
        self.restarts = 0
        self.failed = False
        #: Latest snapshots from the *current* incarnation.
        self.last_stats: ServiceStats | None = None
        self.last_faults: dict | None = None
        #: Final (last-known) snapshots of dead incarnations; counters
        #: a shard accumulated after its last stats exchange die with it.
        self.retired_stats: list[ServiceStats] = []
        self.retired_faults: list[dict] = []


class _ShardFaultView:
    """Duck-typed ``service.faults`` for the sharded backend.

    Exposes the same ``.plan`` / ``.stats`` /
    ``.on_telemetry_sample`` surface the obs collectors, the telemetry
    sampler, and the chaos CLI read from
    :class:`~repro.faults.FaultInjector`; ``stats`` aggregates the
    parent's shard-kill and telemetry counters with every worker's
    injected-fault snapshot (refreshing live shards first).
    """

    def __init__(self, owner: "ShardedPredictionService", plan: FaultPlan):
        self._owner = owner
        self.plan = plan

    @property
    def stats(self) -> FaultStats:
        self._owner._refresh_shard_stats()
        return self._owner._aggregate_fault_stats()

    def on_telemetry_sample(self, key: object) -> str:
        """Telemetry export faults are parent-side: the sampler lives in
        the parent process, so the decision (and its accounting) does
        too — mirrored from ``FaultInjector.on_telemetry_sample``."""
        plan = self.plan
        if plan.telemetry_drop(key):
            self._owner._kill_stats.record("telemetry_drops")
            return "drop"
        if plan.telemetry_dup(key):
            self._owner._kill_stats.record("telemetry_dups")
            return "dup"
        return "keep"


class ShardedPredictionService:
    """N-process sharded drop-in for :class:`PredictionService`.

    Parameters
    ----------
    shards:
        Worker-process count (>= 1; use :func:`make_service` for the
        "0 means in-process" convention).
    shard_queue_capacity:
        Bound on each shard's inbox (tickets dispatched but not yet
        picked up by the worker).  A full inbox raises
        :class:`~repro.errors.ServiceOverloadedError` on non-blocking
        submits, mirroring the single-process admission queue.
    max_restarts:
        Per-shard respawn budget after crashes; beyond it the shard is
        failed permanently and submissions routed to it raise
        :class:`~repro.errors.ShardFailedError`.
    default_timeout_s:
        Fallback deadline for blocking :meth:`submit` calls, as on the
        single-process service.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` (or injector, for
        signature parity — only its plan is used).  Request-level
        faults are injected *inside* each worker's replica from the
        same plan; ``shard_kill_rate`` fires parent-side, keyed on the
        dispatch index, SIGKILLing the target shard before the ticket
        is enqueued.
    route_seed:
        Rendezvous-hash seed (fixed default keeps routing — and thus
        per-shard cache populations — reproducible across runs).
    **service_kwargs:
        Forwarded verbatim to each worker's
        :class:`PredictionService` (``max_batch_size``, ``workers``,
        cache sizes/switches, ...).  Must be picklable; an explicit
        ``surrogate`` is rejected — sharded workers build their
        surrogates per size, lazily, like the default service.

    The parent's :class:`~repro.serve.stats.StatsRecorder` is
    authoritative for request outcomes and end-to-end latencies;
    batch/cache/prefix-group counters are aggregated from the worker
    replicas (fetched on :meth:`stats`, finalized by the drain
    handshake on :meth:`close`).
    """

    def __init__(
        self,
        shards: int,
        *,
        shard_queue_capacity: int = 64,
        max_restarts: int = 2,
        default_timeout_s: float | None = None,
        fault_plan: FaultPlan | FaultInjector | None = None,
        route_seed: int = 0,
        stats_timeout_s: float = 2.0,
        **service_kwargs,
    ):
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        if stats_timeout_s <= 0:
            raise ServiceError(
                f"stats_timeout_s must be > 0, got {stats_timeout_s}"
            )
        if shard_queue_capacity < 1:
            raise ServiceError(
                "shard_queue_capacity must be >= 1, "
                f"got {shard_queue_capacity}"
            )
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if service_kwargs.get("surrogate") is not None:
            raise ServiceError(
                "the sharded backend builds surrogates inside each worker; "
                "route by Request.size instead of passing a surrogate"
            )
        service_kwargs.pop("surrogate", None)
        self.n_shards = int(shards)
        self.default_timeout_s = default_timeout_s
        #: How long a stats round-trip waits for lagging shards.  The
        #: telemetry sampler scrapes stats() on its own cadence; drills
        #: running sub-second sampler intervals lower this so a shard
        #: dying mid-scrape cannot stall the timeline past its gap bound.
        self.stats_timeout_s = float(stats_timeout_s)
        self.route_seed = int(route_seed)
        self._service_kwargs = dict(service_kwargs)
        self._shard_queue_capacity = int(shard_queue_capacity)
        self._max_restarts = int(max_restarts)
        if isinstance(fault_plan, FaultInjector):
            fault_plan = fault_plan.plan
        self._plan = fault_plan
        self._fault_view = (
            _ShardFaultView(self, fault_plan) if fault_plan is not None else None
        )
        self._kill_stats = FaultStats()
        self._stats = StatsRecorder(
            max_batch_size=service_kwargs.get("max_batch_size", 8)
        )
        #: The caches live inside the worker replicas; the façade keeps
        #: the attributes for API parity (obs collectors skip None).
        self.prepare_cache = None
        self.result_cache = None
        #: Tracer that absorbs worker span shipments; captured at traced
        #: submits so stitching survives a scoped use_tracer exit.
        self._trace_sink: Tracer | None = None
        self._ids = itertools.count()
        self._dispatches = itertools.count()
        self._stats_tokens = itertools.count()
        self._lock = threading.Lock()
        self._inflight: dict[int, _Inflight] = {}
        self._stats_pending: dict[int, dict] = {}
        self._closed = threading.Event()
        self._respawns = 0
        self._crashed_tickets = 0
        self._ctx = mp_context()
        #: Open read ends of the per-shard result pipes.  A dead
        #: incarnation's pipe stays here until the collector has drained
        #: its buffered replies and seen EOF — late results are filtered
        #: by ticket/generation, not by dropping the channel early.
        self._result_conns: set = set()
        self._shards = [_ShardSlot(i) for i in range(self.n_shards)]
        for slot in self._shards:
            self._spawn(slot)
        self._collector_stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, name="repro-shard-collector", daemon=True
        )
        self._collector.start()
        self._watchdog_stop = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-shard-watchdog", daemon=True
        )
        self._watchdog.start()

    # ------------------------------------------------------------------ #
    # Submission API (mirrors PredictionService)
    # ------------------------------------------------------------------ #
    def submit_async(self, request: Request, *, block: bool = False) -> Future:
        """Dispatch a request to its shard; the future yields a Response.

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        target shard's inbox is full, unless ``block=True`` (cooperative
        backpressure).  A request routed to a permanently failed shard
        raises :class:`~repro.errors.ShardFailedError` — rerouting it
        would silently break the cache-affinity contract.

        When tracing is on, the dispatch runs inside a ``shard.submit``
        span whose id crosses the process boundary on the request
        message; the tracer is also captured as the sink that absorbs
        span records shipped back by the workers (the collector thread
        outlives any scoped ``use_tracer`` block, so absorption must
        not depend on the global still pointing at the same tracer).
        """
        tracer = get_tracer()
        if tracer.enabled:
            self._trace_sink = tracer
        with tracer.span("shard.submit") as span:
            return self._dispatch_request(request, block, span)

    def _dispatch_request(self, request: Request, block: bool, span) -> Future:
        if self._closed.is_set():
            self._stats.record_closed_reject()
            raise ServiceClosedError("service is shut down")
        shard_idx = route_shard(
            request.prompt_key, self.n_shards, self.route_seed
        )
        dispatch = next(self._dispatches)
        ticket_id = next(self._ids)
        span.set(shard=shard_idx, ticket=ticket_id)
        with self._lock:
            slot = self._shards[shard_idx]
            if slot.failed:
                raise ShardFailedError(shard_idx, slot.restarts)
            entry = _Inflight(shard_idx, slot.generation, span.span_id)
            self._inflight[ticket_id] = entry
            inbox = slot.inbox
        if self._plan is not None and self._plan.shard_kill(dispatch):
            # Register-then-kill: the triggering ticket is already
            # in flight on the victim shard, so it deterministically
            # fails with ShardCrashError regardless of watchdog timing.
            self._kill_stats.record("shard_kills")
            self.kill_shard(shard_idx)
        msg = ("req", ticket_id, request, span.span_id)
        if block:
            self._blocking_put(slot, entry, ticket_id, msg)
        else:
            if inbox is None:
                # Shard mid-respawn: its replacement inbox isn't wired
                # up yet.  For a non-blocking caller that's the same as
                # a full queue — shed instead of waiting.
                with self._lock:
                    self._inflight.pop(ticket_id, None)
                self._stats.record_reject()
                raise ServiceOverloadedError(
                    self._shard_queue_capacity,
                    depth=self._shard_queue_capacity,
                )
            try:
                inbox.put_nowait(msg)
            except queue.Full:
                with self._lock:
                    self._inflight.pop(ticket_id, None)
                self._stats.record_reject()
                raise ServiceOverloadedError(
                    self._shard_queue_capacity,
                    depth=_inbox_depth(inbox, self._shard_queue_capacity),
                ) from None
        self._stats.record_submit()
        return entry.future

    def _blocking_put(self, slot, entry, ticket_id, msg) -> None:
        """Cooperatively wait for inbox space, tracking shard liveness.

        If the target shard dies mid-wait, the watchdog has already
        failed ``entry.future`` with :class:`ShardCrashError` — the
        caller gets the failed future instead of blocking forever.
        """
        while True:
            if entry.future.done():
                return
            if self._closed.is_set():
                with self._lock:
                    self._inflight.pop(ticket_id, None)
                entry.future.cancel()
                self._stats.record_closed_reject()
                raise ServiceClosedError(
                    "service shut down during submission"
                )
            with self._lock:
                inbox = slot.inbox
            if inbox is None:  # shard being respawned / failed
                time.sleep(_BLOCK_PUT_POLL_S)
                continue
            try:
                inbox.put(msg, timeout=_BLOCK_PUT_POLL_S)
                return
            except queue.Full:
                continue

    def submit(self, request: Request) -> Response:
        """Serve one request synchronously (same timeout semantics as
        the single-process service)."""
        future = self.submit_async(request)
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.default_timeout_s
        )
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            if not future.cancel():
                future.add_done_callback(self._note_late_discard)
            self._stats.record_timeout()
            raise RequestTimeoutError(float(timeout)) from None

    def _note_late_discard(self, future: Future) -> None:
        if not future.cancelled() and future.exception() is None:
            self._stats.record_late_discard()

    def submit_many(self, requests: Iterable[Request]) -> list[Response]:
        """Serve a bulk workload, preserving input order."""
        futures = [self.submit_async(r, block=True) for r in requests]
        return [f.result() for f in futures]

    def cached_response(self, request: Request) -> Response | None:
        """Always ``None``: result caches live inside the shard workers.

        The fallback chain's result-cache rung is therefore a no-op on
        the sharded backend (it degrades straight to the GBT rung); a
        cross-process cache peek would cost a round-trip to a shard
        that may itself be the thing that just failed.
        """
        return None

    # ------------------------------------------------------------------ #
    # Chaos / failure handling
    # ------------------------------------------------------------------ #
    def kill_shard(self, index: int) -> None:
        """SIGKILL one shard worker (chaos drills and tests).

        In-flight tickets on the shard fail with
        :class:`ShardCrashError`; the watchdog respawns it within its
        restart budget.
        """
        with self._lock:
            proc = self._shards[index].process
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    def _watch(self) -> None:
        while not self._watchdog_stop.wait(_WATCHDOG_POLL_S):
            for slot in self._shards:
                proc = slot.process
                if proc is not None and not proc.is_alive():
                    self._handle_death(slot)

    def _handle_death(self, slot: _ShardSlot) -> None:
        with self._lock:
            proc = slot.process
            if proc is None or proc.is_alive():
                return
            exitcode = proc.exitcode
            dead_gen = slot.generation
            slot.generation += 1
            slot.process = None
            slot.inbox = None
            # The incarnation's counters survive only as their last
            # exchanged snapshot; anything accumulated since is lost
            # with the process (documented in DESIGN §12).
            if slot.last_stats is not None:
                slot.retired_stats.append(slot.last_stats)
                slot.last_stats = None
            if slot.last_faults is not None:
                slot.retired_faults.append(slot.last_faults)
                slot.last_faults = None
            stale_ids = [
                tid
                for tid, entry in self._inflight.items()
                if entry.shard == slot.index and entry.generation <= dead_gen
            ]
            entries = [self._inflight.pop(tid) for tid in stale_ids]
            self._crashed_tickets += len(entries)
            respawn = (
                slot.restarts < self._max_restarts
                and not self._closed.is_set()
            )
            if respawn:
                slot.restarts += 1
                self._respawns += 1
            else:
                slot.failed = True
        if respawn:
            # Spawning a replacement takes process-start time; doing it
            # outside the lock keeps submitters and the telemetry
            # sampler's stats scrapes from stalling behind a respawn.
            # Safe vs. close(): _handle_death runs only on the watchdog
            # thread, which close() joins before its shutdown sweep.
            self._spawn(slot)
        error = ShardCrashError(slot.index, exitcode)
        for entry in entries:
            self._stats.record_failed()
            if entry.future.set_running_or_notify_cancel():
                entry.future.set_exception(error)

    def _spawn(self, slot: _ShardSlot) -> None:
        inbox = self._ctx.Queue(maxsize=self._shard_queue_capacity)
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                slot.index,
                slot.generation,
                self._service_kwargs,
                self._worker_plan(),
                inbox,
                send_conn,
            ),
            name=f"repro-shard-{slot.index}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end: the worker must be
        # the pipe's only writer, or its death never reads as EOF.
        send_conn.close()
        with self._lock:
            slot.process = process
            slot.inbox = inbox
            self._result_conns.add(recv_conn)

    def _worker_plan(self):
        """The fault plan forwarded to workers (shard kills stay parent-side)."""
        if self._plan is None or self._plan.shard_kill_rate == 0.0:
            return self._plan
        return dataclasses.replace(self._plan, shard_kill_rate=0.0)

    # ------------------------------------------------------------------ #
    # Result collection
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        """Multiplex every shard's result pipe until told to stop.

        EOF on a pipe (worker exited or was killed; a kill mid-``send``
        surfaces as EOF too, since a partial frame can never complete)
        retires just that channel; the watchdog owns declaring the
        shard dead.  On stop, one final sweep drains replies still
        buffered in the pipes — :meth:`close` joins the workers before
        setting the stop flag, so the "bye" snapshots are all there.
        """
        while True:
            with self._lock:
                conns = list(self._result_conns)
            if self._collector_stop.is_set():
                self._drain_conns(conns)
                return
            if not conns:
                time.sleep(_WATCHDOG_POLL_S)
                continue
            for conn in mp_connection.wait(conns, timeout=0.1):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._retire_conn(conn)
                    continue
                self._dispatch(msg)

    def _drain_conns(self, conns) -> None:
        for conn in conns:
            while True:
                try:
                    if not conn.poll(0):
                        break
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                self._dispatch(msg)
            self._retire_conn(conn)

    def _retire_conn(self, conn) -> None:
        with self._lock:
            self._result_conns.discard(conn)
        conn.close()

    def _dispatch(self, msg: tuple) -> None:
        kind = msg[0]
        if kind in ("ok", "err"):
            self._resolve(kind, msg)
        elif kind == "spans":
            self._absorb_spans(msg)
        elif kind in ("stats", "bye"):
            self._absorb_snapshot(kind, msg)

    def _absorb_spans(self, msg: tuple) -> None:
        """Stitch a worker's drained span records into the trace sink."""
        sink = self._trace_sink
        if sink is None or not sink.enabled:
            return
        _, _shard_id, _gen, records, worker_now = msg
        # time.monotonic() is system-wide on every platform we run on,
        # so a small send→receive delta is transport latency, not clock
        # skew — leave the timestamps alone.  A large delta means the
        # worker genuinely lives on a different monotonic epoch; shift
        # its spans onto ours.
        delta = time.monotonic() - float(worker_now)
        offset = delta if abs(delta) > 1.0 else 0.0
        sink.absorb(records, offset_s=offset)

    def _resolve(self, kind: str, msg: tuple) -> None:
        _, _shard_id, _gen, ticket_id, payload = msg
        with self._lock:
            entry = self._inflight.pop(ticket_id, None)
        if entry is None:
            # Already failed by the watchdog (the shard was declared
            # dead) or swept by close(); a late success is dropped — the
            # caller was told the truth it had at the time.
            return
        future = entry.future
        if not future.set_running_or_notify_cancel():
            # The caller timed out and cancelled: completed work with
            # nobody left to read it is a late discard, same as the
            # single-process path.
            if kind == "ok":
                self._stats.record_late_discard()
            return
        done_at = time.monotonic()
        if kind == "ok":
            response = dataclasses.replace(
                payload,
                request_id=ticket_id,
                latency_s=done_at - entry.enqueued_at,
            )
            self._stats.record_done(response.latency_s)
            future.set_result(response)
        else:
            self._stats.record_failed()
            future.set_exception(payload)
        if entry.trace_parent is not None:
            sink = self._trace_sink
            if sink is not None:
                # Retroactive parent-side view of the dispatch: queue +
                # pipe + worker execution, bracketed by the same ids the
                # worker's shard.worker span parents into.
                sink.record_span(
                    "shard.roundtrip",
                    entry.enqueued_at,
                    done_at,
                    parent=entry.trace_parent,
                    shard=entry.shard,
                    outcome=kind,
                )

    def _absorb_snapshot(self, kind: str, msg: tuple) -> None:
        shard_id, gen = msg[1], msg[2]
        stats, faults = msg[-2], msg[-1]
        with self._lock:
            slot = self._shards[shard_id]
            if gen == slot.generation:
                slot.last_stats = stats
                slot.last_faults = faults
            if kind == "stats":
                pending = self._stats_pending.get(msg[3])
                if pending is not None:
                    pending["got"].add(shard_id)
                    if pending["got"] >= pending["want"]:
                        pending["event"].set()

    # ------------------------------------------------------------------ #
    # Stats & introspection
    # ------------------------------------------------------------------ #
    def _refresh_shard_stats(self, timeout: float | None = None) -> None:
        """Round-trip a stats request to every live shard (best effort).

        Shards that do not answer within ``timeout`` (default: the
        service's ``stats_timeout_s``; e.g. mid-drain behind a deep
        backlog) keep their previous snapshot; after :meth:`close` the
        drain handshake has already delivered final snapshots, so no
        round-trip is needed.
        """
        if self._closed.is_set():
            return
        if timeout is None:
            timeout = self.stats_timeout_s
        token = next(self._stats_tokens)
        event = threading.Event()
        with self._lock:
            want = set()
            for slot in self._shards:
                if slot.failed or slot.inbox is None:
                    continue
                try:
                    slot.inbox.put_nowait(("stats", token))
                except queue.Full:
                    continue
                want.add(slot.index)
            if not want:
                return
            self._stats_pending[token] = {
                "want": want,
                "got": set(),
                "event": event,
            }
        event.wait(timeout)
        with self._lock:
            self._stats_pending.pop(token, None)

    def _worker_stats(self) -> list[ServiceStats]:
        with self._lock:
            out: list[ServiceStats] = []
            for slot in self._shards:
                out.extend(slot.retired_stats)
                if slot.last_stats is not None:
                    out.append(slot.last_stats)
            return out

    def stats(self) -> ServiceStats:
        """Aggregate snapshot: parent request accounting + shard counters.

        The parent recorder is authoritative for submissions, outcomes,
        end-to-end latencies, and throughput; batching, cache, and
        prefix-group counters are summed across every shard incarnation
        (live shards are polled first).
        """
        self._refresh_shard_stats()
        worker = self._worker_stats()
        base = self._stats.snapshot()
        n_batches = sum(s.n_batches for s in worker)
        batch_total = sum(s.mean_batch_size * s.n_batches for s in worker)
        n_groups = sum(s.n_groups for s in worker)
        n_group_served = sum(s.n_group_served for s in worker)
        # Queue waits are measured inside the replicas; exact cross-shard
        # percentiles would need the raw samples, so the aggregate is the
        # completed-weighted mean of per-shard percentiles — an
        # approximation, and labelled as such in DESIGN §14.
        qw_weight = sum(s.n_completed for s in worker)
        qw50 = qw95 = 0.0
        if qw_weight:
            qw50 = (
                sum(s.p50_queue_wait_s * s.n_completed for s in worker)
                / qw_weight
            )
            qw95 = (
                sum(s.p95_queue_wait_s * s.n_completed for s in worker)
                / qw_weight
            )
        return dataclasses.replace(
            base,
            p50_queue_wait_s=qw50,
            p95_queue_wait_s=qw95,
            n_batches=n_batches,
            mean_batch_size=(batch_total / n_batches) if n_batches else 0.0,
            prepare_hits=sum(s.prepare_hits for s in worker),
            prepare_misses=sum(s.prepare_misses for s in worker),
            result_hits=sum(s.result_hits for s in worker),
            result_misses=sum(s.result_misses for s in worker),
            prefix_hits=sum(s.prefix_hits for s in worker),
            prefix_misses=sum(s.prefix_misses for s in worker),
            n_groups=n_groups,
            n_group_served=n_group_served,
            mean_group_width=(
                n_group_served / n_groups if n_groups else 0.0
            ),
        )

    def prefix_cache_counts(self) -> tuple[int, int]:
        """(hits, misses) summed over every shard's prefix caches."""
        stats = self.stats()
        return stats.prefix_hits, stats.prefix_misses

    def _aggregate_fault_stats(self) -> FaultStats:
        aggregate = FaultStats()
        for kind, count in self._kill_stats.snapshot().items():
            if count:
                aggregate.add(kind, count)
        with self._lock:
            snapshots = []
            for slot in self._shards:
                snapshots.extend(slot.retired_faults)
                if slot.last_faults is not None:
                    snapshots.append(slot.last_faults)
        for snapshot in snapshots:
            for kind, count in snapshot.items():
                if count:
                    aggregate.add(kind, count)
        return aggregate

    @property
    def faults(self):
        """Aggregated fault view (``None`` when no plan was given)."""
        return self._fault_view

    @property
    def stats_recorder(self) -> StatsRecorder:
        """The parent-side accumulator (shared with ResilientService)."""
        return self._stats

    @property
    def shard_info(self) -> dict:
        """Point-in-time shard topology/health (obs collectors read this)."""
        with self._lock:
            return {
                "n_shards": self.n_shards,
                "respawns": self._respawns,
                "failed": sum(1 for s in self._shards if s.failed),
                "crashed_tickets": self._crashed_tickets,
            }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Shut down every shard (draining admitted requests by default).

        The drain handshake delivers each worker's final stats/fault
        snapshot, so post-close :meth:`stats` aggregation is exact.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        # Stop the watchdog first: an orderly worker exit must not be
        # mistaken for a crash and respawned mid-shutdown.
        self._watchdog_stop.set()
        self._watchdog.join()
        if not drain:
            with self._lock:
                entries = list(self._inflight.values())
                self._inflight.clear()
            for entry in entries:
                if entry.future.set_running_or_notify_cancel():
                    entry.future.set_exception(
                        ServiceClosedError(
                            "service shut down before execution"
                        )
                    )
        with self._lock:
            live = [
                slot
                for slot in self._shards
                if slot.process is not None and not slot.failed
            ]
        for slot in live:
            try:
                slot.inbox.put(("stop", drain), timeout=1.0)
            except queue.Full:
                slot.process.terminate()
        for slot in live:
            slot.process.join(timeout=60.0 if drain else 5.0)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=5.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
        # Workers have exited, so their final "bye" snapshots are
        # buffered in the result pipes; the collector's stop-sweep
        # drains them before it returns.
        self._collector_stop.set()
        self._collector.join()
        with self._lock:
            entries = list(self._inflight.values())
            self._inflight.clear()
        for entry in entries:
            if entry.future.set_running_or_notify_cancel():
                entry.future.set_exception(
                    ServiceClosedError("service shut down before execution")
                )

    def __enter__(self) -> "ShardedPredictionService":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(drain=exc_type is None)


def _inbox_depth(inbox, capacity: int) -> int | None:
    """Best-effort queue depth (qsize is unimplemented on some platforms)."""
    try:
        return inbox.qsize()
    except (NotImplementedError, OSError):
        return capacity


def make_service(
    *,
    shards: int = 0,
    shard_queue_capacity: int = 64,
    max_restarts: int = 2,
    route_seed: int = 0,
    stats_timeout_s: float = 2.0,
    surrogate=None,
    **kwargs,
):
    """Build the serving backend for a shard count (0 = in-process).

    The single switch the CLI / sessions / runner layers use:
    ``shards == 0`` returns the default single-process
    :class:`PredictionService` (bit-identical predictions either way —
    the engine's determinism contract is per-request, and routing never
    changes a request's inputs).
    """
    if shards < 0:
        raise ServiceError(f"shards must be >= 0, got {shards}")
    if shards == 0:
        return PredictionService(surrogate, **kwargs)
    if surrogate is not None:
        raise ServiceError(
            "the sharded backend builds surrogates inside each worker; "
            "route by Request.size instead of passing a surrogate"
        )
    return ShardedPredictionService(
        shards,
        shard_queue_capacity=shard_queue_capacity,
        max_restarts=max_restarts,
        route_seed=route_seed,
        stats_timeout_s=stats_timeout_s,
        **kwargs,
    )
