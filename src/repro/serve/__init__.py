"""repro.serve — batched, cached surrogate-inference serving.

The paper's experiments issue thousands of independent surrogate
predictions; this package turns those probes into *traffic* against a
proper inference service (SURGE's "LLM as surrogate executor" framing):

* :class:`Request` / :class:`Response` — the service envelope;
* :class:`PredictionService` — submit / submit_many façade over a bounded
  admission queue, a flush-on-size-or-wait microbatching scheduler, and a
  two-level cache (prompt-analysis memoization + full-result memoization);
* :class:`ServiceStats` — p50/p95 latency, throughput, batch occupancy,
  and cache hit rates, rendered by ``repro serve-bench``;
* typed failure modes in :mod:`repro.errors` —
  :class:`~repro.errors.ServiceOverloadedError` (backpressure),
  :class:`~repro.errors.RequestTimeoutError` (per-request deadline),
  :class:`~repro.errors.ServiceClosedError` (submit after shutdown).

The experiment runner (:func:`repro.core.runner.run_grid`) can execute
grids through a service, making the paper reproduction itself the first
traffic generator.

Robustness beyond typed errors lives in :mod:`repro.serve.resilience`:
:class:`RetryPolicy` (deterministic backoff), per-route
:class:`CircuitBreaker`, and the :class:`FallbackChain` degradation
ladder behind :class:`ResilientService` — all testable under seeded
fault injection from :mod:`repro.faults` (see ``repro chaos``).
"""

from repro.serve.cache import LRUCache, prompt_fingerprint
from repro.serve.fallback import FallbackChain
from repro.serve.request import Request, Response
from repro.serve.resilience import CircuitBreaker, ResilientService, RetryPolicy
from repro.serve.scheduler import MicroBatcher
from repro.serve.service import PredictionService
from repro.serve.shard import ShardedPredictionService, make_service, route_shard
from repro.serve.stats import ServiceStats, StatsRecorder

__all__ = [
    "Request",
    "Response",
    "PredictionService",
    "ShardedPredictionService",
    "make_service",
    "route_shard",
    "MicroBatcher",
    "LRUCache",
    "prompt_fingerprint",
    "ServiceStats",
    "StatsRecorder",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientService",
    "FallbackChain",
]
