"""Request/response envelopes for the surrogate inference service.

A :class:`Request` is one surrogate prediction to serve: the ICL examples,
the query configuration, and the sampling seed — exactly the inputs of
:meth:`repro.core.surrogate.DiscriminativeSurrogate.predict` — plus
service-level knobs (task size routing, per-request timeout).  A
:class:`Response` wraps the resulting
:class:`~repro.core.surrogate.SurrogatePrediction` with serving metadata:
end-to-end latency, which caches hit, and the batch the request rode in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.surrogate import SurrogatePrediction
from repro.errors import ServiceError

__all__ = ["Request", "Response"]


@dataclass(frozen=True)
class Request:
    """One surrogate-prediction request.

    Attributes
    ----------
    examples:
        ``(configuration, runtime)`` ICL pairs, in presentation order.
    query_config:
        The configuration whose runtime the surrogate must predict.
    seed:
        Sampling seed.  Together with the built prompt and the engine's
        sampling parameters it forms the full-result cache key, so
        identical requests are served from cache.
    size:
        Task size used to route the request to a per-size surrogate
        (ignored when the service was constructed with an explicit
        surrogate).
    timeout_s:
        Per-request completion deadline for the blocking submit path;
        ``None`` falls back to the service default (which may also be
        ``None``: wait forever).
    """

    examples: Sequence[tuple[Mapping[str, object], float]]
    query_config: Mapping[str, object]
    seed: int = 0
    size: str = "SM"
    timeout_s: float | None = None

    def __post_init__(self):
        if not self.examples:
            raise ServiceError("a request needs >= 1 ICL example")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServiceError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    @property
    def prompt_key(self) -> str:
        """Seed-independent digest of the prompt inputs.

        Two requests with equal keys build the same prompt (same task
        size, ICL examples, and query), so they share a prepared prefix
        and can ride one lockstep batch decode differing only by seed.
        The scheduler sorts flush batches by this key to make such
        requests adjacent.  Computed once and memoized on the instance.
        """
        key = self.__dict__.get("_prompt_key")
        if key is None:
            canon = (
                self.size,
                tuple(
                    sorted(
                        (str(k), repr(v))
                        for k, v in self.query_config.items()
                    )
                ),
                tuple(
                    (
                        tuple(
                            sorted((str(k), repr(v)) for k, v in cfg.items())
                        ),
                        repr(float(rt)),
                    )
                    for cfg, rt in self.examples
                ),
            )
            key = hashlib.blake2b(
                repr(canon).encode(), digest_size=12
            ).hexdigest()
            object.__setattr__(self, "_prompt_key", key)
        return key


@dataclass(frozen=True)
class Response:
    """A served prediction plus its serving metadata.

    Cached responses share the underlying
    :class:`~repro.core.surrogate.SurrogatePrediction` object; treat it as
    read-only.

    ``degraded`` marks responses produced by the resilience layer's
    fallback chain instead of live generation; ``provenance`` names the
    source: ``"service"`` (live path), ``"result-cache"``,
    ``"gbt-surrogate"``, or ``"magnitude-prior"``.
    """

    request_id: int
    prediction: SurrogatePrediction
    latency_s: float
    result_cache_hit: bool = False
    prepare_cache_hit: bool = False
    batch_size: int = 1
    #: Number of same-prompt requests decoded together in one lockstep
    #: batch (1 when the request was generated — or cached — alone).
    group_width: int = 1
    degraded: bool = False
    provenance: str = "service"

    @property
    def value(self) -> float | None:
        """Shortcut to the parsed predicted runtime."""
        return self.prediction.value
