"""Resilience policies for the serving stack: retry, break, degrade.

The :class:`ResilientService` wrapper turns the typed failures that
:class:`~repro.serve.service.PredictionService` *surfaces*
(:class:`~repro.errors.ServiceOverloadedError`,
:class:`~repro.errors.RequestTimeoutError`, injected
:class:`~repro.errors.InjectedFaultError`) into behaviour:

* a :class:`RetryPolicy` — exponential backoff with *deterministic*
  seeded jitter (two identical runs back off identically, so chaos
  drills reproduce bit-for-bit) and an optional per-service retry
  budget that stops retry storms under sustained failure;
* a per-route :class:`CircuitBreaker` (closed → open → half-open),
  keyed on the request's surrogate size, so one broken route cannot
  drag down the rest of the service with doomed attempts;
* the :class:`~repro.serve.fallback.FallbackChain` — result cache →
  GBT surrogate → magnitude prior — returning a ``Response`` flagged
  ``degraded=True`` with provenance instead of raising.

All of it is recorded in the wrapped service's
:class:`~repro.serve.stats.ServiceStats`: retries, breaker trips,
degraded-serve rate, and availability.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardCrashError,
)
from repro.obs import get_tracer
from repro.serve.fallback import FallbackChain
from repro.serve.request import Request, Response
from repro.serve.stats import ServiceStats
from repro.utils.rng import derive_seed

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilientService"]

_SCALE = float(1 << 63)

#: Failure classes worth another attempt: transient by construction
#: (injected faults), by backpressure semantics (overload), by deadline
#: (timeout — the retry may hit the result cache the late completion
#: just filled), or by shard death (the crashed shard respawns, so the
#: retry lands on a fresh replica).  ShardFailedError is deliberately
#: absent: a shard past its restart budget stays down.
_RETRYABLE = (
    InjectedFaultError,
    ServiceOverloadedError,
    RequestTimeoutError,
    ShardCrashError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts per logical request, including the first.
    base_delay_s, multiplier, max_delay_s:
        Backoff ladder: attempt ``k`` (1-based) waits
        ``min(base * multiplier**(k-1), max_delay_s)`` before retrying.
    jitter:
        Fraction of the backoff randomized *downward* (decorrelates
        retry herds without ever exceeding the ladder).  The draw is a
        pure function of ``(seed, key, attempt)``, so runs reproduce.
    seed:
        Jitter seed.
    retry_budget:
        Optional cap on total retries across the policy's service (a
        stop-loss under sustained failure); ``None`` is unbounded.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.05
    jitter: float = 0.5
    seed: int = 0
    retry_budget: int | None = None
    retryable_errors: tuple = field(default=_RETRYABLE)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` merits another attempt."""
        return isinstance(exc, self.retryable_errors)

    def delay_s(self, key: object, attempt: int) -> float:
        """Deterministic backoff before retrying after ``attempt`` (1-based)."""
        base = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        u = derive_seed(self.seed, "retry-jitter", key, attempt) / _SCALE
        return base * (1.0 - self.jitter * u)


class CircuitBreaker:
    """A closed → open → half-open breaker for one route.

    Closed: traffic flows; ``failure_threshold`` consecutive failures
    trip it open.  Open: ``allow`` refuses everything until
    ``reset_timeout_s`` has elapsed, then the breaker turns half-open.
    Half-open: at most ``half_open_successes`` probes may be in flight
    at once — ``allow`` hands out that many admission tokens and refuses
    further callers until a probe reports back, so a thundering herd
    cannot pile onto a barely-recovered route.  That many consecutive
    probe successes close the breaker again; any probe failure re-trips
    it.  A caller that abandons an admitted probe without an outcome
    (e.g. the service closed underneath it) must call :meth:`release`
    to return its token.

    ``clock`` is injectable so tests drive state transitions without
    sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 0.25,
        half_open_successes: int = 1,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        if half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_successes = int(half_open_successes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._half_open_ok = 0
        self._half_open_inflight = 0
        self._opened_at: float | None = None
        self.trips = 0

    # -- internal: callers hold the lock ------------------------------- #
    def _tick(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = "half-open"
            self._half_open_ok = 0
            self._half_open_inflight = 0

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._failures = 0
        self._half_open_inflight = 0
        self.trips += 1

    def _release_probe(self) -> None:
        if self._half_open_inflight > 0:
            self._half_open_inflight -= 1

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """Whether a request may be attempted right now.

        In the half-open state a ``True`` return *admits a probe*: the
        caller owns an admission token until it reports
        :meth:`record_success` / :meth:`record_failure` (or abandons via
        :meth:`release`).  At most ``half_open_successes`` tokens exist,
        so concurrent callers racing a recovering route are bounded
        instead of stampeding it.
        """
        with self._lock:
            self._tick()
            if self._state == "open":
                return False
            if self._state == "half-open":
                if self._half_open_inflight >= self.half_open_successes:
                    return False
                self._half_open_inflight += 1
            return True

    def release(self) -> None:
        """Return an admission token without recording an outcome."""
        with self._lock:
            self._tick()
            if self._state == "half-open":
                self._release_probe()

    def record_success(self) -> None:
        with self._lock:
            self._tick()
            if self._state == "half-open":
                self._release_probe()
                self._half_open_ok += 1
                if self._half_open_ok >= self.half_open_successes:
                    self._state = "closed"
                    self._failures = 0
            else:
                self._failures = 0

    def record_failure(self) -> bool:
        """Record one failure; returns True when this one tripped the breaker."""
        with self._lock:
            self._tick()
            if self._state == "half-open":
                self._trip()  # a failed probe re-opens immediately
                return True
            self._failures += 1
            if self._state == "closed" and self._failures >= self.failure_threshold:
                self._trip()
                return True
            return False


class ResilientService:
    """Retry + circuit-break + degrade wrapper around a prediction service.

    Parameters
    ----------
    service:
        The wrapped :class:`~repro.serve.service.PredictionService`.
    retry_policy:
        Backoff policy (defaults to :class:`RetryPolicy()`).
    breaker_factory:
        Zero-arg callable building the per-route breaker (one breaker
        per distinct ``Request.size``).
    fallback:
        ``None`` builds the default
        :class:`~repro.serve.fallback.FallbackChain` over the service;
        ``False`` disables degradation (final failures then raise);
        otherwise the given chain is used as-is.
    sleep:
        Injectable backoff sleep (tests stub it out).
    """

    def __init__(
        self,
        service,
        *,
        retry_policy: RetryPolicy | None = None,
        breaker_factory=None,
        fallback=None,
        sleep=time.sleep,
    ):
        self.service = service
        self.retry_policy = retry_policy or RetryPolicy()
        self._breaker_factory = breaker_factory or CircuitBreaker
        if fallback is None:
            fallback = FallbackChain(service)
        self.fallback = fallback if fallback is not False else None
        self._sleep = sleep
        self._stats = service.stats_recorder
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self._retries_spent = 0
        self._keys = itertools.count()

    # ------------------------------------------------------------------ #
    def breaker(self, route: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker for one route."""
        with self._lock:
            breaker = self._breakers.get(route)
            if breaker is None:
                breaker = self._breaker_factory()
                self._breakers[route] = breaker
            return breaker

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        """Snapshot of all per-route breakers (for metrics collection)."""
        with self._lock:
            return dict(self._breakers)

    def _spend_retry(self) -> bool:
        budget = self.retry_policy.retry_budget
        if budget is None:
            return True
        with self._lock:
            if self._retries_spent >= budget:
                return False
            self._retries_spent += 1
            return True

    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> Response:
        """Serve one logical request, absorbing transient failure.

        Never raises for retryable faults while a fallback rung is
        enabled — it degrades instead.  :class:`ServiceClosedError`
        always propagates (a closed service is operator intent, not an
        outage to paper over).
        """
        self._stats.record_logical()
        tracer = get_tracer()
        key = next(self._keys)
        breaker = self.breaker(request.size)
        last_exc: BaseException | None = None
        attempt = 1
        with tracer.span(
            "resilience.submit", route=request.size, key=key
        ) as root:
            while breaker.allow():
                try:
                    with tracer.span("resilience.attempt", attempt=attempt):
                        response = self.service.submit(request)
                except ServiceClosedError:
                    # Operator intent, not an outage: return the half-open
                    # admission token (no outcome to record) and re-raise.
                    breaker.release()
                    self._stats.record_unavailable()
                    raise
                except Exception as exc:
                    if breaker.record_failure():
                        self._stats.record_breaker_trip()
                    last_exc = exc
                    if not self.retry_policy.retryable(exc):
                        break
                    if (
                        attempt >= self.retry_policy.max_attempts
                        or not self._spend_retry()
                    ):
                        break
                    self._stats.record_retry()
                    delay = self.retry_policy.delay_s(key, attempt)
                    with tracer.span(
                        "resilience.backoff", attempt=attempt, delay_s=delay
                    ):
                        self._sleep(delay)
                    attempt += 1
                else:
                    breaker.record_success()
                    root.set(outcome="served", attempts=attempt)
                    return response
            if self.fallback is not None:
                response = self.fallback.degraded_response(
                    request, request_id=key
                )
                if response is not None:
                    self._stats.record_degraded()
                    root.set(outcome="degraded", rung=response.provenance,
                             attempts=attempt)
                    return response
            self._stats.record_unavailable()
            root.set(outcome="unavailable", attempts=attempt)
            if last_exc is not None:
                raise last_exc
            raise CircuitOpenError(request.size)

    def submit_many(self, requests) -> list[Response]:
        """Serve a workload sequentially (deterministic fault/retry order)."""
        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Snapshot of the wrapped service (includes resilience counters)."""
        return self.service.stats()

    def close(self, drain: bool = True) -> None:
        self.service.close(drain=drain)

    def __enter__(self) -> "ResilientService":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(drain=exc_type is None)
