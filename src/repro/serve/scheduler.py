"""Microbatching scheduler: bounded admission queue + flush-on-size-or-wait.

The scheduler owns one collector thread and a pool of batch workers.  The
collector pulls tickets off a bounded queue and groups them into batches,
flushing as soon as either the batch is full (``max_batch_size``) or the
oldest queued ticket has waited ``max_wait_s`` — the classic
latency/throughput microbatching trade-off.  Full batches are handed to
the worker pool, so multiple batches execute concurrently while the
collector keeps admitting traffic.

The worker pool is sized through :func:`repro.utils.parallel.effective_workers`
with oversubscription allowed: batch execution here is in-process Python
with no IO, and the service intentionally runs more batch workers than
cores to keep batches flowing while others sit on cache locks.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.obs import get_tracer
from repro.serve.request import Request
from repro.utils.parallel import effective_workers

__all__ = ["Ticket", "MicroBatcher"]

#: Collector poll granularity while waiting out a batch deadline.
_POLL_S = 0.5


@dataclass
class Ticket:
    """One admitted request travelling through the scheduler.

    ``trace_parent`` carries the submitting thread's innermost span id
    across the thread hop to the batch worker, so the worker-side
    ``serve.request`` span parents into the caller's trace (e.g. under a
    ``resilience.attempt`` span).  ``None`` when tracing is off or the
    caller had no open span.

    ``group_key`` is the request's seed-independent prompt digest (set by
    the service when prefix reuse is on, empty otherwise): flushes
    stable-sort by it so same-prompt tickets sit adjacently in the batch
    and can share one lockstep decode.
    """

    request_id: int
    request: Request
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    trace_parent: int | None = None
    group_key: str = ""


class _Sentinel:
    """Queue marker that tells the collector to flush and exit."""


_STOP = _Sentinel()


class MicroBatcher:
    """Batch requests by size/deadline and dispatch them to a worker pool.

    Parameters
    ----------
    execute_batch:
        Callback receiving a non-empty ``list[Ticket]``; it must resolve
        every ticket's future (result or exception) and never raise.
    max_batch_size:
        Flush threshold; also the denominator of batch occupancy.
    max_wait_s:
        Maximum time the oldest ticket may wait before a partial batch is
        flushed anyway.
    queue_capacity:
        Bound on admitted-but-unbatched tickets; beyond it
        :meth:`submit` raises :class:`ServiceOverloadedError`.
    workers:
        Batch-worker count (resolved with oversubscription allowed;
        ``None`` uses the clamped default).
    max_inflight_batches:
        Bound on dispatched-but-unfinished batches (default ``2 *
        workers``: one running, one ready per worker).  Without this the
        collector would drain the bounded queue into the executor's
        unbounded backlog and the queue bound would never exert
        backpressure.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; its
        ``before_flush`` hook runs on every flush (queue-stall
        injection), keyed on the flush index.
    """

    def __init__(
        self,
        execute_batch: Callable[[list[Ticket]], None],
        *,
        max_batch_size: int = 8,
        max_wait_s: float = 0.005,
        queue_capacity: int = 1024,
        workers: int | None = None,
        max_inflight_batches: int | None = None,
        fault_injector=None,
    ):
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.queue_capacity = int(queue_capacity)
        self._execute_batch = execute_batch
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        nworkers = effective_workers(workers, allow_oversubscription=True)
        if max_inflight_batches is None:
            max_inflight_batches = 2 * nworkers
        if max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be >= 1, got {max_inflight_batches}"
            )
        self._faults = fault_injector
        self._flush_count = 0
        #: Set by close(); read by the collector when the sentinel lands
        #: to decide the in-hand partial batch's fate (execute vs. fail).
        self._drain_on_close = True
        self._inflight = threading.Semaphore(max_inflight_batches)
        self._pool = ThreadPoolExecutor(
            max_workers=nworkers,
            thread_name_prefix="repro-serve-batch",
        )
        self._closed = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------ #
    def submit(self, ticket: Ticket, *, block: bool = False) -> None:
        """Admit a ticket, raising on shutdown or backpressure.

        With ``block=True`` a full queue waits for space instead of
        raising (cooperative backpressure for bulk submitters); the
        collector keeps draining, so the wait always progresses.
        """
        if self._closed.is_set():
            raise ServiceClosedError("service is shut down")
        # The admission span covers any cooperative-backpressure wait on
        # a full queue — that wait is exactly the signal worth seeing.
        with get_tracer().span(
            "serve.submit", request_id=ticket.request_id, block=block
        ):
            if block:
                self._queue.put(ticket)
            else:
                try:
                    self._queue.put_nowait(ticket)
                except queue.Full:
                    raise ServiceOverloadedError(
                        self.queue_capacity, depth=self._queue.qsize()
                    ) from None
        # close() may have raced the enqueue: the collector could already
        # have passed (or be past) the shutdown sentinel, in which case
        # this ticket would never be batched and its future never
        # resolved.  Cancelling wins only while the ticket is still
        # pending — if the collector did pick it up, it completes
        # normally and the submission stands.
        if self._closed.is_set() and ticket.future.cancel():
            raise ServiceClosedError("service shut down during submission")

    def close(self, drain: bool = True) -> None:
        """Stop admissions and shut the scheduler down.

        With ``drain=True`` (graceful), every already-admitted ticket is
        batched and executed before the worker pool stops.  With
        ``drain=False``, unbatched tickets fail with
        :class:`ServiceClosedError` — including the partial batch the
        collector holds in hand when the sentinel arrives — and only
        batches already dispatched to the pool run to completion.

        Idempotent; safe to call from ``with``-exit and explicitly.
        """
        if self._closed.is_set():
            return
        self._drain_on_close = drain
        self._closed.set()
        if not drain:
            # Reject everything still queued before the sentinel lands.
            while True:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(ticket, Ticket):
                    _fail_closed(ticket)
        self._queue.put(_STOP)
        self._collector.join()
        # Sweep tickets enqueued after the sentinel (submit racing
        # close): cancel them so the racing submitter's own post-enqueue
        # check converts the cancellation into ServiceClosedError instead
        # of waiting forever on an unresolved future.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, Ticket):
                item.future.cancel()
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        """Collector loop: group tickets into batches, dispatch on flush."""
        batch: list[Ticket] = []
        deadline: float | None = None
        while True:
            if deadline is None:
                timeout = _POLL_S
            else:
                # Never let the poll granularity outlive the deadline: a
                # partial batch with max_wait_s < _POLL_S must flush at
                # its deadline, not at the next 0.5s poll tick.
                timeout = min(
                    _POLL_S, max(deadline - time.monotonic(), 0.0)
                )
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                if batch and time.monotonic() >= deadline:
                    self._flush(batch)
                    batch, deadline = [], None
                continue
            if isinstance(item, _Sentinel):
                if batch:
                    if self._drain_on_close:
                        self._flush(batch)
                    else:
                        # Non-drain close: the docstring promises every
                        # unbatched ticket fails with ServiceClosedError
                        # — that includes this in-hand partial batch, not
                        # just tickets still sitting on the queue.
                        for ticket in batch:
                            _fail_closed(ticket)
                break
            if not batch:
                # Anchor the flush deadline at the ticket's *enqueue*
                # time, not collector pickup: if the collector was parked
                # in a flush (dispatch-slot wait), time already spent in
                # the queue counts against max_wait_s instead of silently
                # restarting the clock.
                deadline = item.enqueued_at + self.max_wait_s
            batch.append(item)
            if len(batch) >= self.max_batch_size:
                self._flush(batch)
                batch, deadline = [], None

    def _flush(self, batch: list[Ticket]) -> None:
        if len(batch) > 1 and any(t.group_key for t in batch):
            # Stable sort: same-prompt tickets become adjacent (one
            # lockstep decode group downstream) while admission order is
            # preserved within each group.
            batch.sort(key=lambda t: t.group_key)
        # The flush span covers the injected stall and the dispatch-slot
        # wait — the two places a batch loses time before a worker has it.
        with get_tracer().span("serve.flush", batch_size=len(batch)) as span:
            if self._faults is not None:
                # Only the collector thread flushes, so the index needs
                # no lock.
                self._flush_count += 1
                span.set(flush_index=self._flush_count)
                self._faults.before_flush(self._flush_count)
            # Block until a dispatch slot frees: this is what propagates
            # worker saturation back to the bounded queue (and from there
            # to submitters) instead of hiding it in the executor's
            # backlog.
            self._inflight.acquire()
            future = self._pool.submit(self._execute_batch, list(batch))
            future.add_done_callback(lambda _f: self._inflight.release())


def _fail_closed(ticket: Ticket) -> None:
    """Fail an unexecuted ticket with ServiceClosedError (skip if the
    caller already cancelled it, e.g. a timed-out blocking submit)."""
    if ticket.future.set_running_or_notify_cancel():
        ticket.future.set_exception(
            ServiceClosedError("service shut down before execution")
        )
