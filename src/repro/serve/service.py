"""The :class:`PredictionService` façade: submit → batch → cache → generate.

The service accepts :class:`~repro.serve.request.Request` envelopes,
admits them through the bounded microbatching scheduler, and executes each
batch against per-size :class:`~repro.core.surrogate.DiscriminativeSurrogate`
stacks with two cache levels in front of generation:

1. the **prepare cache** (prompt fingerprint → ``FormatAnalysis``) skips
   the one-time prompt analysis when the same prompt recurs under a new
   seed;
2. the **result cache** (prompt fingerprint, seed, sampling params,
   token cap → ``SurrogatePrediction``) skips generation entirely for
   identical requests, relying on the engine's determinism contract.

Robustness: bounded-queue backpressure (:class:`ServiceOverloadedError`),
per-request timeouts (:class:`RequestTimeoutError`), and graceful drain on
:meth:`PredictionService.close` / ``with``-exit.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Iterable

from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset.syr2k import Syr2kTask
from repro.errors import RequestTimeoutError, ServiceClosedError
from repro.faults import FaultInjector, FaultPlan
from repro.obs import get_tracer
from repro.serve.cache import MISS, LRUCache, prompt_fingerprint
from repro.serve.request import Request, Response
from repro.serve.scheduler import MicroBatcher, Ticket
from repro.serve.stats import ServiceStats, StatsRecorder

__all__ = ["PredictionService"]


class _PrefixGroup:
    """One shared-prompt decode group inside a single batch.

    ``seeds`` are the distinct member seeds (admission order); ``stash``
    holds seed -> prediction once the leader has decoded; ``width`` is
    the member-ticket count reported on responses and spans.
    """

    __slots__ = ("seeds", "stash", "width")

    def __init__(self, seeds: list[int], width: int):
        self.seeds = seeds
        self.width = width
        self.stash: dict[int, object] | None = None


class PredictionService:
    """Batched, cached serving front-end for surrogate predictions.

    Parameters
    ----------
    surrogate:
        Optional explicit surrogate used for *every* request (its task
        fixes the prompt; ``Request.size`` routing is then ignored).  By
        default surrogates are built lazily per requested size with the
        calibrated default stack, matching what the experiment runner
        uses directly.
    max_batch_size, max_wait_s, queue_capacity, workers:
        Microbatching scheduler knobs (see
        :class:`~repro.serve.scheduler.MicroBatcher`).
    prepare_cache_size, result_cache_size:
        LRU capacities of the two cache levels.
    enable_prepare_cache, enable_result_cache:
        Cache kill-switches (the throughput benchmark measures both
        settings; disabled caches record no counters).
    enable_prefix_cache:
        Prefix-reuse kill-switch.  On (default), lazily built per-size
        surrogates carry a :class:`~repro.llm.prefix_cache.PrefixCache`
        of prepared-prefix snapshots, flush batches are sorted so
        same-prompt tickets sit adjacently, and such tickets (differing
        only by seed) share one lockstep batch decode.  Off, every
        request generates through the scalar cold path — bit-identical
        results either way (the benchmark's baseline).  An explicitly
        passed ``surrogate`` keeps its own prefix-cache setting.
    default_timeout_s:
        Fallback per-request deadline for blocking submits when the
        request does not carry its own (``None``: wait indefinitely).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` (or a pre-built
        :class:`~repro.faults.FaultInjector`) activating deterministic
        fault injection at the service's hook points; injected faults are
        counted on ``service.faults.stats``.
    """

    def __init__(
        self,
        surrogate: DiscriminativeSurrogate | None = None,
        *,
        max_batch_size: int = 8,
        max_wait_s: float = 0.005,
        queue_capacity: int = 1024,
        workers: int | None = None,
        max_inflight_batches: int | None = None,
        prepare_cache_size: int = 256,
        result_cache_size: int = 4096,
        enable_prepare_cache: bool = True,
        enable_result_cache: bool = True,
        enable_prefix_cache: bool = True,
        default_timeout_s: float | None = None,
        fault_plan: FaultPlan | FaultInjector | None = None,
    ):
        self._fixed_surrogate = surrogate
        self.enable_prefix_cache = bool(enable_prefix_cache)
        self._surrogates: dict[str, DiscriminativeSurrogate] = {}
        self._surrogate_lock = threading.Lock()
        self.default_timeout_s = default_timeout_s
        self.prepare_cache = (
            LRUCache(prepare_cache_size) if enable_prepare_cache else None
        )
        self.result_cache = (
            LRUCache(result_cache_size) if enable_result_cache else None
        )
        self._stats = StatsRecorder(max_batch_size=max_batch_size)
        self._ids = itertools.count()
        # Cache-only serves (cached_response) get negative ids from their
        # own counter: they never pass through admission, and drawing from
        # self._ids would shift every later ticket's admission-ordered id
        # — the key deterministic fault injection is keyed on.
        self._cached_ids = itertools.count(-1, -1)
        if isinstance(fault_plan, FaultPlan):
            fault_plan = FaultInjector(fault_plan)
        self.faults = fault_plan
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            queue_capacity=queue_capacity,
            workers=workers,
            max_inflight_batches=max_inflight_batches,
            fault_injector=self.faults,
        )

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit_async(self, request: Request, *, block: bool = False) -> Future:
        """Admit a request; the returned future resolves to a `Response`.

        Raises :class:`ServiceOverloadedError` when the admission queue is
        full, unless ``block=True`` (then admission waits for space —
        the cooperative-backpressure mode bulk callers use).
        """
        ticket = Ticket(
            request_id=next(self._ids),
            request=request,
            trace_parent=get_tracer().current_span_id(),
            group_key=request.prompt_key if self.enable_prefix_cache else "",
        )
        try:
            self._batcher.submit(ticket, block=block)
        except ServiceClosedError:
            self._stats.record_closed_reject()
            raise
        except Exception:
            self._stats.record_reject()
            raise
        self._stats.record_submit()
        return ticket.future

    def submit(self, request: Request) -> Response:
        """Serve one request synchronously.

        Waits up to ``request.timeout_s`` (or the service default); on
        expiry the request is cancelled if still queued and
        :class:`RequestTimeoutError` is raised.
        """
        future = self.submit_async(request)
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.default_timeout_s
        )
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            if not future.cancel():
                # The batch already started: the work will finish in the
                # background with nobody left to read it.  Count that
                # discarded late completion instead of dropping it
                # silently (failures/cancellations are already counted
                # through their own paths).
                future.add_done_callback(self._note_late_discard)
            self._stats.record_timeout()
            raise RequestTimeoutError(float(timeout)) from None

    def _note_late_discard(self, future: Future) -> None:
        if not future.cancelled() and future.exception() is None:
            self._stats.record_late_discard()

    def submit_many(self, requests: Iterable[Request]) -> list[Response]:
        """Serve a bulk workload, preserving input order.

        Admission blocks on queue space rather than raising, so bulk
        submitters cooperate with backpressure instead of tripping it.
        """
        futures = [self.submit_async(r, block=True) for r in requests]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    # Lifecycle & introspection
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Shut down (gracefully draining admitted requests by default)."""
        self._batcher.close(drain=drain)

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # Drain on clean exit; abandon queued work when unwinding an error.
        self.close(drain=exc_type is None)

    def stats(self) -> ServiceStats:
        """Snapshot current service metrics (including cache counters)."""
        pc, rc = self.prepare_cache, self.result_cache
        prepare_hits, prepare_misses, _ = pc.snapshot() if pc else (0, 0, 0)
        result_hits, result_misses, _ = rc.snapshot() if rc else (0, 0, 0)
        prefix_hits, prefix_misses = self.prefix_cache_counts()
        return self._stats.snapshot(
            prepare_hits=prepare_hits,
            prepare_misses=prepare_misses,
            result_hits=result_hits,
            result_misses=result_misses,
            prefix_hits=prefix_hits,
            prefix_misses=prefix_misses,
        )

    def prefix_cache_counts(self) -> tuple[int, int]:
        """(hits, misses) summed over every surrogate's prefix cache."""
        if self._fixed_surrogate is not None:
            surrogates = [self._fixed_surrogate]
        else:
            with self._surrogate_lock:
                surrogates = list(self._surrogates.values())
        hits = misses = 0
        for surrogate in surrogates:
            cache = surrogate.prefix_cache
            if cache is not None:
                cache_hits, cache_misses = cache.snapshot()
                hits += cache_hits
                misses += cache_misses
        return hits, misses

    @property
    def stats_recorder(self) -> StatsRecorder:
        """The live accumulator (shared with the resilience wrapper)."""
        return self._stats

    # ------------------------------------------------------------------ #
    # Execution path (batch workers)
    # ------------------------------------------------------------------ #
    def _surrogate_for(self, size: str) -> DiscriminativeSurrogate:
        if self._fixed_surrogate is not None:
            return self._fixed_surrogate
        with self._surrogate_lock:
            surrogate = self._surrogates.get(size)
            if surrogate is None:
                surrogate = DiscriminativeSurrogate(
                    Syr2kTask(size), prefix_cache=self.enable_prefix_cache
                )
                self._surrogates[size] = surrogate
            return surrogate

    def _execute_batch(self, batch: list[Ticket]) -> None:
        """Resolve every ticket of one batch (the scheduler's callback)."""
        self._stats.record_batch(len(batch))
        # Singleton batches skip group planning entirely: there is
        # nothing to share, and the scalar path has no plan overhead.
        plan = (
            self._group_plan(batch)
            if self.enable_prefix_cache and len(batch) > 1
            else None
        )
        for ticket in batch:
            if not ticket.future.set_running_or_notify_cancel():
                continue  # caller gave up (timeout) before we started
            try:
                response = self._serve_one(
                    ticket,
                    batch_size=len(batch),
                    group=plan.get(ticket.request_id) if plan else None,
                )
            except Exception as exc:  # typed errors propagate to the caller
                self._stats.record_failed()
                ticket.future.set_exception(exc)
            else:
                self._stats.record_done(response.latency_s)
                ticket.future.set_result(response)

    @staticmethod
    def _group_plan(batch: list[Ticket]) -> dict[int, "_PrefixGroup"]:
        """Map request id -> shared-prompt decode group (>= 2 members).

        Tickets whose requests build the same prompt (equal
        ``prompt_key``) are planned into one group: the first member to
        miss the result cache decodes every member seed in a single
        lockstep batch and stashes the predictions for the rest.  The
        batch executes in one worker thread, so groups need no locking.
        """
        by_key: dict[str, list[Ticket]] = {}
        for ticket in batch:
            if ticket.group_key:
                by_key.setdefault(ticket.group_key, []).append(ticket)
        plan: dict[int, _PrefixGroup] = {}
        for members in by_key.values():
            if len(members) < 2:
                continue
            group = _PrefixGroup(
                seeds=list(
                    dict.fromkeys(int(t.request.seed) for t in members)
                ),
                width=len(members),
            )
            for ticket in members:
                plan[ticket.request_id] = group
        return plan

    @staticmethod
    def _result_key(surrogate: DiscriminativeSurrogate, fingerprint: str, seed: int):
        """Full-result cache key (the engine's determinism contract)."""
        return (
            fingerprint,
            int(seed),
            surrogate.engine.sampling,
            surrogate.engine.max_new_tokens,
        )

    def cached_response(self, request: Request) -> Response | None:
        """Serve purely from the result cache — no admission, no generation.

        Returns ``None`` on a miss or when the result cache is disabled.
        This is the first rung of the resilience layer's degradation
        chain, so the lookup uses :meth:`LRUCache.peek` (no counter or
        recency side effects).
        """
        if self.result_cache is None:
            return None
        surrogate = self._surrogate_for(request.size)
        parts = surrogate.build_parts(request.examples, request.query_config)
        key = self._result_key(
            surrogate, prompt_fingerprint(parts.ids), request.seed
        )
        prediction = self.result_cache.peek(key)
        if prediction is MISS:
            return None
        return Response(
            request_id=next(self._cached_ids),
            prediction=prediction,
            latency_s=0.0,
            result_cache_hit=True,
            batch_size=1,
        )

    def _serve_one(
        self,
        ticket: Ticket,
        batch_size: int,
        group: "_PrefixGroup | None" = None,
    ) -> Response:
        request = ticket.request
        tracer = get_tracer()
        # The request root is backdated to admission so its duration is
        # the end-to-end latency the stats report; it parents into the
        # submitting thread's span (carried across the hop on the ticket).
        with tracer.span(
            "serve.request",
            parent=ticket.trace_parent,
            start_s=ticket.enqueued_at,
            request_id=ticket.request_id,
            size=request.size,
            batch_size=batch_size,
        ) as root:
            serve_start = time.monotonic()
            tracer.record_span(
                "serve.queue_wait", ticket.enqueued_at, serve_start,
                parent=root.span_id,
            )
            self._stats.record_queue_wait(serve_start - ticket.enqueued_at)
            if self.faults is not None:
                # Deterministic per-request injection, keyed on the
                # ticket's admission-ordered id: eviction storm / latency
                # spike / transient error (the error propagates as a
                # failed future).
                self.faults.before_request(
                    ticket.request_id,
                    caches=(self.prepare_cache, self.result_cache),
                )
            surrogate = self._surrogate_for(request.size)
            parts = surrogate.build_parts(
                request.examples, request.query_config
            )
            fingerprint = prompt_fingerprint(parts.ids)
            result_key = self._result_key(
                surrogate, fingerprint, request.seed
            )

            result_hit = prepare_hit = False
            group_width = 1
            prediction = MISS
            if self.result_cache is not None:
                with tracer.span("serve.cache_lookup", level="result"):
                    prediction = self.result_cache.get(result_key)
                result_hit = prediction is not MISS
            if prediction is MISS:
                if group is not None and group.stash is not None:
                    # Follower: the group's leader already decoded this
                    # seed in its lockstep batch.
                    prediction = group.stash.get(int(request.seed), MISS)
                if prediction is not MISS:
                    group_width = group.width
                else:
                    analysis = None
                    if self.prepare_cache is not None:
                        with tracer.span("serve.prepare") as prep:
                            analysis = self.prepare_cache.get(fingerprint)
                            prepare_hit = analysis is not MISS
                            prep.set(cache_hit=prepare_hit)
                            if not prepare_hit:
                                analysis = surrogate.model.prepare(parts.ids)
                                self.prepare_cache.put(fingerprint, analysis)
                    with tracer.span("serve.generate") as gen:
                        if group is not None:
                            # Leader: decode every member seed in one
                            # lockstep batch; followers consume the stash.
                            predictions = surrogate.predict_parts_batch(
                                parts, group.seeds, analysis=analysis
                            )
                            group.stash = {
                                int(seed): pred
                                for seed, pred in zip(
                                    group.seeds, predictions
                                )
                            }
                            prediction = group.stash[int(request.seed)]
                            group_width = group.width
                            gen.set(group_width=group.width)
                            self._stats.record_group(group.width)
                        else:
                            prediction = surrogate.predict_parts(
                                parts, seed=request.seed, analysis=analysis
                            )
                if self.result_cache is not None:
                    self.result_cache.put(result_key, prediction)
            root.set(
                result_cache_hit=result_hit,
                prepare_cache_hit=prepare_hit,
                group_width=group_width,
            )

            return Response(
                request_id=ticket.request_id,
                prediction=prediction,
                latency_s=time.monotonic() - ticket.enqueued_at,
                result_cache_hit=result_hit,
                prepare_cache_hit=prepare_hit,
                batch_size=batch_size,
                group_width=group_width,
            )
