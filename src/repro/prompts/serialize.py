"""Natural-language serialization of configurations and runtimes.

The paper presents performance data "in a natural language format"
(Figure 1): one comma-separated ``name is value`` clause per parameter with
the invariant ``size`` leading, and the objective as a plain decimal digit
sequence (``Performance: 0.0022155``).
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.dataset.space import ConfigSpace, Configuration
from repro.errors import ParseError

__all__ = [
    "format_runtime",
    "serialize_config",
    "deserialize_config",
    "example_block",
    "query_block",
]


#: Supported value-serialization styles (Section V-B discusses the
#: trade-off: scientific notation stabilizes the string *shape* but makes
#: value prefixes less similar, which the paper predicts hurts the model).
VALUE_STYLES = ("decimal", "scientific")


def format_runtime(value: float, style: str = "decimal") -> str:
    """Render a runtime as a digit sequence in the chosen style.

    ``decimal`` (the paper's setting): sub-second runtimes keep seven
    decimals (the Figure-1 example is ``0.0022155``); second-scale
    runtimes keep four.  ``scientific``: a four-decimal mantissa with a
    signed two-digit exponent (``2.2155e-03``).
    """
    v = float(value)
    if not v > 0:
        raise ValueError(f"runtime must be positive, got {value!r}")
    if style == "decimal":
        return f"{v:.7f}" if v < 1.0 else f"{v:.4f}"
    if style == "scientific":
        return f"{v:.4e}"
    raise ValueError(f"unknown value style {style!r}; choose {VALUE_STYLES}")


def serialize_config(config: Mapping[str, object], size: str) -> str:
    """One-line natural-language rendering of a configuration."""
    clauses = [f"size is {size}"]
    clauses.extend(f"{name} is {value}" for name, value in config.items())
    return ", ".join(clauses)


_CLAUSE_RE = re.compile(r"([A-Za-z0-9_]+)\s+is\s+([^,\n]+?)\s*(?=,|\n|$)")


def deserialize_config(
    text: str, space: ConfigSpace
) -> tuple[Configuration, str | None]:
    """Parse a serialized configuration line back into a config dict.

    Returns ``(config, size)`` where ``size`` is the value of the ``size``
    clause if present.  Used by the candidate-sampling mode to harvest
    LLM-proposed configurations.

    Raises
    ------
    ParseError
        If any parameter is missing or a value is outside its domain.
    """
    values: dict[str, str] = {}
    for m in _CLAUSE_RE.finditer(text):
        values[m.group(1)] = m.group(2).strip()
    size = values.pop("size", None)
    config: Configuration = {}
    for p in space.parameters:
        if p.name not in values:
            raise ParseError(f"configuration text missing parameter {p.name!r}")
        raw = values[p.name]
        matched = None
        for v in p.values:
            if str(v) == raw:
                matched = v
                break
        if matched is None:
            raise ParseError(
                f"value {raw!r} not in domain of parameter {p.name!r}"
            )
        config[p.name] = matched
    return config, size


def example_block(
    config: Mapping[str, object],
    size: str,
    runtime: float,
    style: str = "decimal",
) -> str:
    """One ICL example in Figure 1's layout."""
    return (
        f"Hyperparameter configuration: {serialize_config(config, size)}\n"
        f"Performance: {format_runtime(runtime, style)}\n"
    )


def query_block(config: Mapping[str, object], size: str) -> str:
    """The query (an example with the performance left blank)."""
    return (
        f"Hyperparameter configuration: {serialize_config(config, size)}\n"
        f"Performance:"
    )
