"""Assembly of full chat prompts from the three Figure-1 parts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.syr2k import Syr2kTask
from repro.errors import PromptError
from repro.llm.tokenizer import Tokenizer
from repro.prompts.serialize import (
    example_block,
    format_runtime,
    query_block,
    serialize_config,
)
from repro.prompts.templates import (
    SYSTEM_INSTRUCTIONS,
    SYSTEM_INSTRUCTIONS_CANDIDATE,
    SYSTEM_INSTRUCTIONS_GENERATIVE,
    problem_description,
)

__all__ = ["PromptParts", "PromptBuilder"]


@dataclass
class PromptParts:
    """A built prompt: full text, token ids, and bookkeeping for analysis.

    Attributes
    ----------
    text:
        The complete chat-formatted prompt string.
    ids:
        Token ids of ``text``.
    icl_value_strings:
        The serialized performance strings shown in context (the copy/
        prefix-cluster analyses compare generations against these).
    n_examples:
        Number of ICL examples included.
    """

    text: str
    ids: np.ndarray
    icl_value_strings: list[str]
    n_examples: int


class PromptBuilder:
    """Builds LLAMBO-style prompts for one syr2k task.

    Parameters
    ----------
    task:
        The tuning task (fixes the problem description and size clause).
    tokenizer:
        Tokenizer used to encode the final prompt.
    """

    def __init__(
        self,
        task: Syr2kTask,
        tokenizer: Tokenizer | None = None,
        value_style: str = "decimal",
    ):
        self.task = task
        self.tokenizer = tokenizer or Tokenizer()
        # Validate eagerly so a typo fails at construction, not mid-grid.
        format_runtime(1.0, value_style)
        self.value_style = value_style

    # ------------------------------------------------------------------ #
    def _chat_wrap(self, system: str, user: str) -> str:
        """Wrap system/user content in Llama-3 chat markers."""
        return (
            "<|begin_of_text|>"
            "<|start_header_id|>system<|end_header_id|>\n\n"
            f"{system}<|eot_id|>"
            "<|start_header_id|>user<|end_header_id|>\n\n"
            f"{user}<|eot_id|>"
            "<|start_header_id|>assistant<|end_header_id|>\n\n"
        )

    def _finish(
        self, system: str, user: str, icl_values: list[str], n_examples: int
    ) -> PromptParts:
        text = self._chat_wrap(system, user)
        ids = np.asarray(self.tokenizer.encode(text), dtype=np.int64)
        return PromptParts(
            text=text,
            ids=ids,
            icl_value_strings=icl_values,
            n_examples=n_examples,
        )

    # ------------------------------------------------------------------ #
    def discriminative(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        query_config: Mapping[str, object],
    ) -> PromptParts:
        """The paper's main prompt: predict the runtime of ``query_config``.

        Parameters
        ----------
        examples:
            ``(configuration, runtime)`` ICL pairs, in presentation order.
        query_config:
            The configuration whose performance the model must predict.
        """
        if not examples:
            raise PromptError("discriminative prompts need >= 1 ICL example")
        size = self.task.size
        style = self.value_style
        blocks = [example_block(cfg, size, rt, style) for cfg, rt in examples]
        icl_values = [format_runtime(rt, style) for _, rt in examples]
        user = (
            problem_description(self.task)
            + "\n\nHere are the examples:\n"
            + "\n".join(blocks)
            + "\nPlease complete the following:\n"
            + query_block(query_config, size)
        )
        return self._finish(SYSTEM_INSTRUCTIONS, user, icl_values, len(examples))

    def generative(
        self,
        examples: Sequence[tuple[Mapping[str, object], int]],
        query_config: Mapping[str, object],
        n_buckets: int,
    ) -> PromptParts:
        """Generative surrogate mode: N-ary bucket classification."""
        if not examples:
            raise PromptError("generative prompts need >= 1 ICL example")
        if n_buckets < 2:
            raise PromptError(f"need >= 2 buckets, got {n_buckets}")
        size = self.task.size
        blocks = []
        labels = []
        for cfg, bucket in examples:
            if not 0 <= bucket < n_buckets:
                raise PromptError(
                    f"bucket {bucket} out of range [0, {n_buckets})"
                )
            blocks.append(
                f"Hyperparameter configuration: {serialize_config(cfg, size)}\n"
                f"Performance bucket: {bucket}\n"
            )
            labels.append(str(bucket))
        user = (
            problem_description(self.task)
            + f"\n\nPerformance is discretized into {n_buckets} buckets "
            "numbered 0 (fastest) through "
            f"{n_buckets - 1} (slowest).\n\nHere are the examples:\n"
            + "\n".join(blocks)
            + "\nPlease complete the following:\n"
            + f"Hyperparameter configuration: "
            f"{serialize_config(query_config, size)}\n"
            "Performance bucket:"
        )
        return self._finish(
            SYSTEM_INSTRUCTIONS_GENERATIVE, user, labels, len(examples)
        )

    def candidate_sampling(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        target_runtime: float,
    ) -> PromptParts:
        """Candidate-sampling mode: propose a configuration for a target."""
        if not examples:
            raise PromptError("candidate prompts need >= 1 ICL example")
        size = self.task.size
        style = self.value_style
        blocks = [example_block(cfg, size, rt, style) for cfg, rt in examples]
        icl_values = [format_runtime(rt, style) for _, rt in examples]
        user = (
            problem_description(self.task)
            + "\n\nHere are the examples:\n"
            + "\n".join(blocks)
            + "\nPlease propose one hyperparameter configuration that "
            "achieves the following performance:\n"
            f"Performance: {format_runtime(target_runtime, style)}\n"
            "Hyperparameter configuration:"
        )
        return self._finish(
            SYSTEM_INSTRUCTIONS_CANDIDATE, user, icl_values, len(examples)
        )
