"""Assembly of full chat prompts from the three Figure-1 parts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.syr2k import Syr2kTask
from repro.errors import PromptError
from repro.llm.tokenizer import Tokenizer
from repro.prompts.serialize import (
    example_block,
    format_runtime,
    query_block,
    serialize_config,
)
from repro.prompts.templates import (
    SYSTEM_INSTRUCTIONS,
    SYSTEM_INSTRUCTIONS_CANDIDATE,
    SYSTEM_INSTRUCTIONS_GENERATIVE,
    problem_description,
)

__all__ = ["PromptParts", "PromptBuilder"]


@dataclass
class PromptParts:
    """A built prompt: full text, token ids, and bookkeeping for analysis.

    Attributes
    ----------
    text:
        The complete chat-formatted prompt string.
    ids:
        Token ids of ``text``.
    icl_value_strings:
        The serialized performance strings shown in context (the copy/
        prefix-cluster analyses compare generations against these).
    n_examples:
        Number of ICL examples included.
    prefix_len:
        Token count of the shared leading slice of ``ids`` — everything
        up to (but excluding) the query-specific tail.  Prompts built
        from the same task and ICL examples share this prefix exactly,
        which is what the :mod:`repro.llm.prefix_cache` layer keys on.
        Computed against the actual tokenization (the boundary is walked
        back if the tokenizer merged across the text split), so
        ``ids[:prefix_len]`` is always a verbatim prefix of the full
        encoding.  0 when no meaningful split exists.
    """

    text: str
    ids: np.ndarray
    icl_value_strings: list[str]
    n_examples: int
    prefix_len: int = 0


class PromptBuilder:
    """Builds LLAMBO-style prompts for one syr2k task.

    Parameters
    ----------
    task:
        The tuning task (fixes the problem description and size clause).
    tokenizer:
        Tokenizer used to encode the final prompt.
    """

    def __init__(
        self,
        task: Syr2kTask,
        tokenizer: Tokenizer | None = None,
        value_style: str = "decimal",
    ):
        self.task = task
        self.tokenizer = tokenizer or Tokenizer()
        # Validate eagerly so a typo fails at construction, not mid-grid.
        format_runtime(1.0, value_style)
        self.value_style = value_style
        # Shared-prefix encodings recur for every query of a sweep; memoize
        # a handful (keyed by prefix text) so prefix_len costs one encode
        # per distinct (system, examples) combination, not per prompt.
        self._prefix_ids_memo: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def _chat_prefix(self, system: str, user_head: str) -> str:
        """Chat markers + system turn + the head of the user turn."""
        return (
            "<|begin_of_text|>"
            "<|start_header_id|>system<|end_header_id|>\n\n"
            f"{system}<|eot_id|>"
            "<|start_header_id|>user<|end_header_id|>\n\n"
            f"{user_head}"
        )

    def _chat_wrap(self, system: str, user: str) -> str:
        """Wrap system/user content in Llama-3 chat markers."""
        return self._chat_prefix(system, user) + (
            "<|eot_id|>"
            "<|start_header_id|>assistant<|end_header_id|>\n\n"
        )

    def _prefix_ids(self, prefix_text: str) -> np.ndarray:
        pids = self._prefix_ids_memo.get(prefix_text)
        if pids is None:
            pids = np.asarray(self.tokenizer.encode(prefix_text), dtype=np.int64)
            if len(self._prefix_ids_memo) >= 8:
                self._prefix_ids_memo.pop(next(iter(self._prefix_ids_memo)))
            self._prefix_ids_memo[prefix_text] = pids
        return pids

    @staticmethod
    def _splice_is_exact(prefix_text: str, rest: str) -> bool:
        """Whether ``encode(prefix) + encode(rest) == encode(prefix+rest)``.

        The piece regex has no lookbehind, so per-piece encoding is
        position-local; the only way a piece can straddle the boundary is
        a run continuing across it.  A prefix ending in a single newline
        followed by anything but another newline cannot extend any
        alternative (``\\n\\n`` is the sole pattern consuming past a
        newline), so the spliced encoding is exact.
        """
        return prefix_text.endswith("\n") and not rest.startswith("\n")

    def _finish(
        self,
        system: str,
        user_head: str,
        user_tail: str,
        icl_values: list[str],
        n_examples: int,
    ) -> PromptParts:
        prefix_text = self._chat_prefix(system, user_head)
        rest = user_tail + (
            "<|eot_id|>"
            "<|start_header_id|>assistant<|end_header_id|>\n\n"
        )
        pids = self._prefix_ids(prefix_text)
        if self._splice_is_exact(prefix_text, rest):
            # Fast path: reuse the memoized prefix encoding and tokenize
            # only the query tail (grids re-encode the same multi-KB
            # prefix thousands of times otherwise).
            tail_ids = np.asarray(self.tokenizer.encode(rest), dtype=np.int64)
            ids = np.concatenate([pids, tail_ids])
            prefix_len = int(pids.size)
        else:
            ids = np.asarray(
                self.tokenizer.encode(prefix_text + rest), dtype=np.int64
            )
            # Clamp the split to the longest common token prefix: the
            # greedy tokenizer merged across the text boundary.
            m = min(int(pids.size), int(ids.size))
            if m == 0:
                prefix_len = 0
            else:
                eq = pids[:m] == ids[:m]
                prefix_len = m if bool(eq.all()) else int(np.argmin(eq))
        return PromptParts(
            text=prefix_text + rest,
            ids=ids,
            icl_value_strings=icl_values,
            n_examples=n_examples,
            prefix_len=prefix_len,
        )

    # ------------------------------------------------------------------ #
    def discriminative(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        query_config: Mapping[str, object],
    ) -> PromptParts:
        """The paper's main prompt: predict the runtime of ``query_config``.

        Parameters
        ----------
        examples:
            ``(configuration, runtime)`` ICL pairs, in presentation order.
        query_config:
            The configuration whose performance the model must predict.
        """
        if not examples:
            raise PromptError("discriminative prompts need >= 1 ICL example")
        size = self.task.size
        style = self.value_style
        blocks = [example_block(cfg, size, rt, style) for cfg, rt in examples]
        icl_values = [format_runtime(rt, style) for _, rt in examples]
        head = (
            problem_description(self.task)
            + "\n\nHere are the examples:\n"
            + "\n".join(blocks)
            + "\nPlease complete the following:\n"
        )
        tail = query_block(query_config, size)
        return self._finish(
            SYSTEM_INSTRUCTIONS, head, tail, icl_values, len(examples)
        )

    def generative(
        self,
        examples: Sequence[tuple[Mapping[str, object], int]],
        query_config: Mapping[str, object],
        n_buckets: int,
    ) -> PromptParts:
        """Generative surrogate mode: N-ary bucket classification."""
        if not examples:
            raise PromptError("generative prompts need >= 1 ICL example")
        if n_buckets < 2:
            raise PromptError(f"need >= 2 buckets, got {n_buckets}")
        size = self.task.size
        blocks = []
        labels = []
        for cfg, bucket in examples:
            if not 0 <= bucket < n_buckets:
                raise PromptError(
                    f"bucket {bucket} out of range [0, {n_buckets})"
                )
            blocks.append(
                f"Hyperparameter configuration: {serialize_config(cfg, size)}\n"
                f"Performance bucket: {bucket}\n"
            )
            labels.append(str(bucket))
        head = (
            problem_description(self.task)
            + f"\n\nPerformance is discretized into {n_buckets} buckets "
            "numbered 0 (fastest) through "
            f"{n_buckets - 1} (slowest).\n\nHere are the examples:\n"
            + "\n".join(blocks)
            + "\nPlease complete the following:\n"
        )
        tail = (
            f"Hyperparameter configuration: "
            f"{serialize_config(query_config, size)}\n"
            "Performance bucket:"
        )
        return self._finish(
            SYSTEM_INSTRUCTIONS_GENERATIVE, head, tail, labels, len(examples)
        )

    def candidate_sampling(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        target_runtime: float,
    ) -> PromptParts:
        """Candidate-sampling mode: propose a configuration for a target."""
        if not examples:
            raise PromptError("candidate prompts need >= 1 ICL example")
        size = self.task.size
        style = self.value_style
        blocks = [example_block(cfg, size, rt, style) for cfg, rt in examples]
        icl_values = [format_runtime(rt, style) for _, rt in examples]
        head = (
            problem_description(self.task)
            + "\n\nHere are the examples:\n"
            + "\n".join(blocks)
            + "\nPlease propose one hyperparameter configuration that "
            "achieves the following performance:\n"
        )
        tail = (
            f"Performance: {format_runtime(target_runtime, style)}\n"
            "Hyperparameter configuration:"
        )
        return self._finish(
            SYSTEM_INSTRUCTIONS_CANDIDATE, head, tail, icl_values, len(examples)
        )
