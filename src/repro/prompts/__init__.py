"""LLAMBO-style prompt construction and output parsing.

Implements the three-part prompt of Figure 1 — system instructions,
natural-language problem description, ICL examples + query — for the
discriminative surrogate task, plus the two other LLAMBO modes the related
work describes (generative N-ary classification and candidate sampling),
and the robust output parser that recovers predictions from imperfectly
formatted generations.
"""

from repro.prompts.serialize import (
    deserialize_config,
    example_block,
    format_runtime,
    query_block,
    serialize_config,
)
from repro.prompts.templates import (
    SYSTEM_INSTRUCTIONS,
    SYSTEM_INSTRUCTIONS_CANDIDATE,
    SYSTEM_INSTRUCTIONS_GENERATIVE,
    problem_description,
)
from repro.prompts.builder import PromptBuilder, PromptParts
from repro.prompts.parser import (
    extract_configuration,
    extract_prediction,
    extract_class_label,
)

__all__ = [
    "format_runtime",
    "serialize_config",
    "deserialize_config",
    "example_block",
    "query_block",
    "SYSTEM_INSTRUCTIONS",
    "SYSTEM_INSTRUCTIONS_GENERATIVE",
    "SYSTEM_INSTRUCTIONS_CANDIDATE",
    "problem_description",
    "PromptBuilder",
    "PromptParts",
    "extract_prediction",
    "extract_configuration",
    "extract_class_label",
]
