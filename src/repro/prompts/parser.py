"""Robust parsing of LLM generations back into predictions.

Section III-C: "minor deviations in natural language can make harnessing
model outputs challenging ... In our experiments, we manually identify all
relevant portions of all outputs produced by the LLM."  This module is the
automated analogue: it tolerates label echoes, stray whitespace, and
trailing prose, extracting the first well-formed value.
"""

from __future__ import annotations

import re

from repro.dataset.space import ConfigSpace, Configuration
from repro.errors import ParseError
from repro.prompts.serialize import deserialize_config

__all__ = ["extract_prediction", "extract_class_label", "extract_configuration"]

_DECIMAL_RE = re.compile(r"(\d+\.\d+|\d+)(?:[eE]([+-]?\d+))?")
_INT_RE = re.compile(r"\d+")


def extract_prediction(text: str) -> tuple[float, str]:
    """Extract the first decimal value from a generation.

    Returns
    -------
    (value, matched_text):
        The parsed float and the exact substring it came from (the string
        form is what the copy-rate analysis compares against ICL values).

    Raises
    ------
    ParseError
        If no decimal value occurs in ``text``.
    """
    m = _DECIMAL_RE.search(text)
    if m is None:
        raise ParseError(f"no decimal value in generation {text!r}")
    matched = m.group(0)
    try:
        return float(matched), m.group(1)
    except ValueError:  # pragma: no cover - regex guarantees parsability
        raise ParseError(f"unparsable value {matched!r}") from None


def extract_class_label(text: str, n_buckets: int) -> int:
    """Extract a bucket label from a generative-mode generation.

    Raises
    ------
    ParseError
        If no integer in ``[0, n_buckets)`` occurs in ``text``.
    """
    if n_buckets < 2:
        raise ParseError(f"need >= 2 buckets, got {n_buckets}")
    for m in _INT_RE.finditer(text):
        value = int(m.group(0))
        if 0 <= value < n_buckets:
            return value
    raise ParseError(
        f"no bucket label in [0, {n_buckets}) found in {text!r}"
    )


def extract_configuration(text: str, space: ConfigSpace) -> Configuration:
    """Extract a proposed configuration from a candidate-mode generation.

    Raises
    ------
    ParseError
        If the text does not contain a complete, in-domain configuration.
    """
    config, _size = deserialize_config(text, space)
    return config
