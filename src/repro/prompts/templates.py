"""The fixed prompt texts of Figure 1 plus the other LLAMBO task modes."""

from __future__ import annotations

from repro.dataset.syr2k import SIZE_DIMENSIONS, SIZE_NAMES, Syr2kTask

__all__ = [
    "SYSTEM_INSTRUCTIONS",
    "SYSTEM_INSTRUCTIONS_GENERATIVE",
    "SYSTEM_INSTRUCTIONS_CANDIDATE",
    "problem_description",
]

#: Figure 1, "Example System Instructions" (discriminative surrogate).
SYSTEM_INSTRUCTIONS = (
    "The user may describe their optimization problem to give specific "
    "context. Then they will demonstrate hyperparameter configurations for "
    "a regression problem in a feature-rich text-based CSV format. "
    "Following the examples, the user will provide a number of "
    "configurations without performance values; you will need to infer the "
    "objective based on their prior examples. Do not alter the user's "
    "proposed configurations. Do NOT explain your thought process. ONLY "
    "respond with your answer following the format that the user "
    "demonstrated for you."
)

#: Generative surrogate mode: N-ary class labels instead of regression
#: (LLAMBO's second prompting mode, Section II-B).
SYSTEM_INSTRUCTIONS_GENERATIVE = (
    "The user may describe their optimization problem to give specific "
    "context. Then they will demonstrate hyperparameter configurations for "
    "a classification problem in a feature-rich text-based CSV format. "
    "Each configuration is labeled with a performance bucket index; lower "
    "buckets are faster. Following the examples, the user will provide a "
    "configuration without a bucket label; you will need to infer the "
    "bucket based on their prior examples. Do NOT explain your thought "
    "process. ONLY respond with a bucket index following the format the "
    "user demonstrated for you."
)

#: Candidate-sampling mode: propose a configuration expected to achieve a
#: given performance (LLAMBO's third prompting mode).
SYSTEM_INSTRUCTIONS_CANDIDATE = (
    "The user may describe their optimization problem to give specific "
    "context. Then they will demonstrate hyperparameter configurations for "
    "a regression problem in a feature-rich text-based CSV format. "
    "Following the examples, the user will provide a target performance "
    "value; you will need to propose one hyperparameter configuration that "
    "you expect to achieve that performance. Do NOT explain your thought "
    "process. ONLY respond with a configuration following the format that "
    "the user demonstrated for you."
)


def problem_description(task) -> str:
    """Figure 1, "Example User Problem Description", for ``task``.

    The text enumerates the size scale, pins the task's invariant size and
    its dimensions, lists the tunables, and gives the pseudocode of the
    loop nest.  Dispatches on the task's kernel (syr2k or gemm).
    """
    if getattr(task, "kernel", "syr2k") == "gemm":
        return _gemm_description(task)
    m, n = task.dimensions
    sizes = ", ".join(SIZE_NAMES)
    return (
        "The problem considers source-code optimization for a loop nest in "
        "C++ code. The 'size' parameter is invariant, but denotes a "
        "relativistic measure of the size of data inputs to the loop nest. "
        "Sizes can be represented by the following values sorted "
        f"smallest-to-largest: {sizes}\n"
        f"For size '{task.size}', M={m} and N={n}. Size is NOT a tunable "
        "component of the problem.\n"
        "Tunable options in the configuration space are:\n"
        "* The first and second array inputs to the problem can be "
        "independently packed, represented as True/False for each\n"
        "* The outermost two loops in the nest may be interchanged, "
        "represented as True to perform interchange, else False\n"
        "* Each loop (outer, middle, and inner) are tiled, and the tile "
        "sizes can all be independently specified.\n"
        "The performance objective is the runtime of a program compiled "
        "with the modified source, so lower is better.\n"
        "A pseudocode representation of the problem is:\n"
        "input: Arrays A[N,M], B[N,M], C[N,N], scalar constant alpha\n"
        "code segment:\n"
        "# Optional packing array A\n"
        "# Optional packing array B\n"
        "# Optional interchange on outermost two loops\n"
        "for i=0 to N in tiles of size outer_loop_tiling_factor\n"
        "  for j=0 to M in tiles of size middle_loop_tiling_factor\n"
        "    for k=0 to i in tiles of size inner_loop_tiling_factor\n"
        "      C[i,k] = A[k,j]*alpha*B[i,j] + B[k,j]*alpha*A[i,j]"
    )


def _gemm_description(task) -> str:
    """Problem description for the GEMM companion kernel."""
    m, n, k = task.dimensions
    sizes = ", ".join(SIZE_NAMES)
    return (
        "The problem considers source-code optimization for a loop nest in "
        "C++ code. The 'size' parameter is invariant, but denotes a "
        "relativistic measure of the size of data inputs to the loop nest. "
        "Sizes can be represented by the following values sorted "
        f"smallest-to-largest: {sizes}\n"
        f"For size '{task.size}', M={m}, N={n} and K={k}. Size is NOT a "
        "tunable component of the problem.\n"
        "Tunable options in the configuration space are:\n"
        "* The first and second array inputs to the problem can be "
        "independently packed, represented as True/False for each\n"
        "* The outermost two loops in the nest may be interchanged, "
        "represented as True to perform interchange, else False\n"
        "* Each loop (outer, middle, and inner) are tiled, and the tile "
        "sizes can all be independently specified.\n"
        "The performance objective is the runtime of a program compiled "
        "with the modified source, so lower is better.\n"
        "A pseudocode representation of the problem is:\n"
        "input: Arrays A[N,K], B[K,M], C[N,M], scalar constant alpha\n"
        "code segment:\n"
        "# Optional packing array A\n"
        "# Optional packing array B\n"
        "# Optional interchange on outermost two loops\n"
        "for i=0 to N in tiles of size outer_loop_tiling_factor\n"
        "  for j=0 to M in tiles of size middle_loop_tiling_factor\n"
        "    for k=0 to K in tiles of size inner_loop_tiling_factor\n"
        "      C[i,j] = C[i,j] + alpha*A[i,k]*B[k,j]"
    )
