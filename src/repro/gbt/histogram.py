"""Histogram pre-binning of feature matrices.

Split finding on binned features is the core trick of modern GBT systems
(XGBoost ``hist``, LightGBM): each feature column is quantized once into at
most ``max_bins`` ordered bins, after which every node's split search is a
pair of ``bincount`` passes instead of a sort.  Our feature columns have at
most 11 distinct values, so binning is lossless here, but the implementation
supports arbitrary continuous features via quantile binning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinnedMatrix", "bin_matrix"]


@dataclass
class BinnedMatrix:
    """A feature matrix quantized to per-column ordered bins.

    Attributes
    ----------
    codes:
        ``(n_rows, n_features)`` int32 array of bin indices.
    thresholds:
        Per feature, the ascending array of split thresholds: splitting at
        bin ``b`` sends rows with ``code <= b`` left, and corresponds to the
        real-valued test ``x <= thresholds[b]``.
    n_bins:
        Per-feature bin counts (``len(thresholds[j]) + 1``).
    """

    codes: np.ndarray
    thresholds: list[np.ndarray]
    n_bins: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(self.codes.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.codes.shape[1])

    def bin_new(self, x: np.ndarray) -> np.ndarray:
        """Quantize a new raw matrix with the stored thresholds."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected (*, {self.n_features}) matrix, got {x.shape}"
            )
        out = np.empty(x.shape, dtype=np.int32)
        for j in range(self.n_features):
            out[:, j] = np.searchsorted(self.thresholds[j], x[:, j], side="left")
        return out


def bin_matrix(x: np.ndarray, max_bins: int = 64) -> BinnedMatrix:
    """Quantize ``x`` column-wise into at most ``max_bins`` ordered bins.

    Columns with few distinct values are binned losslessly at their exact
    midpoints; denser columns use quantile thresholds.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"feature matrix must be 2-D, got shape {x.shape}")
    if max_bins < 2:
        raise ValueError(f"max_bins must be >= 2, got {max_bins}")
    n_rows, n_features = x.shape
    codes = np.empty((n_rows, n_features), dtype=np.int32)
    thresholds: list[np.ndarray] = []
    n_bins = np.empty(n_features, dtype=np.int32)
    for j in range(n_features):
        col = x[:, j]
        uniq = np.unique(col)
        if uniq.size <= max_bins:
            thr = (uniq[:-1] + uniq[1:]) / 2.0 if uniq.size > 1 else np.empty(0)
        else:
            qs = np.quantile(col, np.linspace(0, 1, max_bins + 1)[1:-1])
            thr = np.unique(qs)
        thresholds.append(np.asarray(thr, dtype=float))
        codes[:, j] = np.searchsorted(thr, col, side="left")
        n_bins[j] = thr.size + 1
    return BinnedMatrix(codes=codes, thresholds=thresholds, n_bins=n_bins)
