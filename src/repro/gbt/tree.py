"""Second-order regression trees on histogram-binned features.

Each tree is grown greedily: a node's best split maximizes the XGBoost
gain

.. math::

    \\tfrac12\\Big(\\frac{G_L^2}{H_L+\\lambda} + \\frac{G_R^2}{H_R+\\lambda}
      - \\frac{G^2}{H+\\lambda}\\Big) - \\gamma

over all (feature, bin) pairs, computed from per-node gradient/hessian
histograms (two ``bincount`` passes per feature).  Leaf weights are the
regularized Newton step ``-G / (H + lambda)``.  The tree is stored in flat
arrays and prediction walks all rows level-by-level, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelNotFittedError
from repro.gbt.histogram import BinnedMatrix

__all__ = ["TreeParams", "RegressionTree"]


@dataclass(frozen=True)
class TreeParams:
    """Growth constraints and regularization for one tree."""

    max_depth: int = 6
    min_samples_leaf: int = 1
    min_child_weight: float = 1e-3
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self):
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.reg_lambda < 0 or self.gamma < 0:
            raise ValueError("reg_lambda and gamma must be non-negative")


class RegressionTree:
    """One histogram-split regression tree (used as a boosting weak learner).

    Not fitted at construction; call :meth:`fit` with binned features and
    per-row gradients/hessians.
    """

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        # Flat tree arrays; children == -1 marks a leaf.
        self.feature: np.ndarray | None = None
        self.bin_threshold: np.ndarray | None = None
        self.value_threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.leaf_value: np.ndarray | None = None
        self.n_nodes = 0

    # ------------------------------------------------------------------ #
    def fit(
        self,
        binned: BinnedMatrix,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray | None = None,
        feature_mask: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree on ``rows`` (all rows when ``None``).

        Parameters
        ----------
        binned:
            Quantized training features.
        grad, hess:
            First/second-order loss derivatives per training row.
        rows:
            Row subset to train on (row subsampling hook).
        feature_mask:
            Boolean mask of features eligible for splitting
            (column-subsampling hook).
        """
        grad = np.asarray(grad, dtype=float)
        hess = np.asarray(hess, dtype=float)
        if grad.shape != hess.shape or grad.ndim != 1:
            raise ValueError("grad and hess must be equal-length 1-D arrays")
        if grad.shape[0] != binned.n_rows:
            raise ValueError("grad length must match binned matrix rows")
        if rows is None:
            rows = np.arange(binned.n_rows, dtype=np.int64)
        else:
            rows = np.asarray(rows, dtype=np.int64)
        if feature_mask is None:
            feature_mask = np.ones(binned.n_features, dtype=bool)

        feature: list[int] = []
        bin_thr: list[int] = []
        val_thr: list[float] = []
        left: list[int] = []
        right: list[int] = []
        leaf: list[float] = []

        p = self.params
        lam = p.reg_lambda

        def new_node() -> int:
            feature.append(-1)
            bin_thr.append(-1)
            val_thr.append(np.nan)
            left.append(-1)
            right.append(-1)
            leaf.append(0.0)
            return len(feature) - 1

        # Iterative growth with an explicit stack: (node_id, rows, depth).
        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, rows, 1)]
        while stack:
            node, node_rows, depth = stack.pop()
            g = grad[node_rows]
            h = hess[node_rows]
            g_sum = float(g.sum())
            h_sum = float(h.sum())
            leaf[node] = -g_sum / (h_sum + lam)

            if (
                depth > p.max_depth
                or node_rows.size < 2 * p.min_samples_leaf
                or h_sum < 2 * p.min_child_weight
            ):
                continue

            parent_score = g_sum * g_sum / (h_sum + lam)
            best_gain = 0.0
            best_feat = -1
            best_bin = -1
            codes = binned.codes[node_rows]
            for j in range(binned.n_features):
                if not feature_mask[j]:
                    continue
                nb = int(binned.n_bins[j])
                if nb < 2:
                    continue
                cj = codes[:, j]
                g_hist = np.bincount(cj, weights=g, minlength=nb)
                h_hist = np.bincount(cj, weights=h, minlength=nb)
                c_hist = np.bincount(cj, minlength=nb)
                gl = np.cumsum(g_hist)[:-1]
                hl = np.cumsum(h_hist)[:-1]
                cl = np.cumsum(c_hist)[:-1]
                gr = g_sum - gl
                hr = h_sum - hl
                cr = node_rows.size - cl
                valid = (
                    (cl >= p.min_samples_leaf)
                    & (cr >= p.min_samples_leaf)
                    & (hl >= p.min_child_weight)
                    & (hr >= p.min_child_weight)
                )
                if not valid.any():
                    continue
                gain = np.where(
                    valid,
                    0.5
                    * (gl * gl / (hl + lam) + gr * gr / (hr + lam) - parent_score)
                    - p.gamma,
                    -np.inf,
                )
                b = int(np.argmax(gain))
                if gain[b] > best_gain:
                    best_gain = float(gain[b])
                    best_feat = j
                    best_bin = b

            if best_feat < 0:
                continue

            go_left = codes[:, best_feat] <= best_bin
            rows_l = node_rows[go_left]
            rows_r = node_rows[~go_left]
            feature[node] = best_feat
            bin_thr[node] = best_bin
            thr = binned.thresholds[best_feat]
            val_thr[node] = float(thr[best_bin]) if best_bin < thr.size else np.inf
            lid, rid = new_node(), new_node()
            left[node], right[node] = lid, rid
            stack.append((lid, rows_l, depth + 1))
            stack.append((rid, rows_r, depth + 1))

        self.feature = np.asarray(feature, dtype=np.int32)
        self.bin_threshold = np.asarray(bin_thr, dtype=np.int32)
        self.value_threshold = np.asarray(val_thr, dtype=float)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.leaf_value = np.asarray(leaf, dtype=float)
        self.n_nodes = len(feature)
        return self

    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.feature is None:
            raise ModelNotFittedError("RegressionTree used before fit()")

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict for rows quantized with the training thresholds."""
        self._check_fitted()
        codes = np.asarray(codes)
        node = np.zeros(codes.shape[0], dtype=np.int32)
        active = self.feature[node] >= 0
        while active.any():
            idx = np.nonzero(active)[0]
            nd = node[idx]
            f = self.feature[nd]
            go_left = codes[idx, f] <= self.bin_threshold[nd]
            node[idx] = np.where(go_left, self.left[nd], self.right[nd])
            active = self.feature[node] >= 0
        return self.leaf_value[node]

    def predict_raw(self, x: np.ndarray) -> np.ndarray:
        """Predict for raw (unbinned) feature rows via value thresholds."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        node = np.zeros(x.shape[0], dtype=np.int32)
        active = self.feature[node] >= 0
        while active.any():
            idx = np.nonzero(active)[0]
            nd = node[idx]
            f = self.feature[nd]
            go_left = x[idx, f] <= self.value_threshold[nd]
            node[idx] = np.where(go_left, self.left[nd], self.right[nd])
            active = self.feature[node] >= 0
        return self.leaf_value[node]

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        self._check_fitted()
        return int((self.feature < 0).sum())

    def max_depth_reached(self) -> int:
        """Actual depth of the fitted tree (root = depth 1)."""
        self._check_fitted()
        depth = np.ones(self.n_nodes, dtype=np.int32)
        for node in range(self.n_nodes):
            for child in (self.left[node], self.right[node]):
                if child >= 0:
                    depth[child] = depth[node] + 1
        return int(depth.max())
