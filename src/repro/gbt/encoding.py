"""Feature/target encoding from configuration spaces to learner matrices.

Trees consume a dense float matrix.  The encoder maps each parameter to:

* boolean/categorical parameters -> their ordinal digit (trees split
  categorically on the few levels just fine);
* numeric (ordinal) parameters   -> both the raw value and its log2, which
  lets shallow trees pick up the multiplicative structure of tile effects.

Runtimes are optionally modelled in log space (``TargetTransform("log")``):
the performance model is multiplicative, so log-space residuals are far
closer to homoscedastic, which is also how practitioners run XGBoost on
runtime data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dataset.generate import PerformanceDataset
from repro.dataset.space import ConfigSpace
from repro.errors import DatasetError

__all__ = ["FeatureEncoder", "TargetTransform"]


class FeatureEncoder:
    """Encode dataset rows into a feature matrix for the GBT learner."""

    def __init__(self, space: ConfigSpace):
        self.space = space
        names: list[str] = []
        for p in space.parameters:
            names.append(p.name)
            if p.is_numeric:
                names.append(f"log2({p.name})")
        self.feature_names: tuple[str, ...] = tuple(names)

    @property
    def n_features(self) -> int:
        """Width of the encoded matrix."""
        return len(self.feature_names)

    def encode_indices(self, indices) -> np.ndarray:
        """Encode configuration indices into an ``(n, n_features)`` matrix."""
        digits = self.space.ordinal_matrix(np.asarray(indices, dtype=np.int64))
        cols: list[np.ndarray] = []
        for j, p in enumerate(self.space.parameters):
            if p.is_numeric:
                values = np.asarray(p.values, dtype=float)[digits[:, j]]
                cols.append(values)
                cols.append(np.log2(values))
            else:
                cols.append(digits[:, j].astype(float))
        return np.column_stack(cols)

    def encode_dataset(self, dataset: PerformanceDataset) -> np.ndarray:
        """Encode all rows of a dataset."""
        if dataset.space.parameter_names != self.space.parameter_names:
            raise DatasetError(
                "dataset space does not match the encoder's space"
            )
        return self.encode_indices(dataset.indices)


@dataclass(frozen=True)
class TargetTransform:
    """Bijective transform applied to the regression target.

    ``kind`` is ``"identity"`` or ``"log"`` (natural log; targets must then
    be strictly positive).
    """

    kind: str = "log"

    def __post_init__(self):
        if self.kind not in ("identity", "log"):
            raise ValueError(f"unknown target transform {self.kind!r}")

    def forward(self, y) -> np.ndarray:
        """Map raw targets into model space."""
        arr = np.asarray(y, dtype=float)
        if self.kind == "identity":
            return arr.copy()
        if np.any(arr <= 0):
            raise ValueError("log target transform requires positive targets")
        return np.log(arr)

    def inverse(self, z) -> np.ndarray:
        """Map model-space predictions back to raw target units."""
        arr = np.asarray(z, dtype=float)
        if self.kind == "identity":
            return arr.copy()
        # Guard against overflow from wild extrapolations.
        return np.exp(np.clip(arr, -700.0, 700.0))

    def __str__(self) -> str:
        return self.kind
