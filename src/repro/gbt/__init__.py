"""From-scratch gradient-boosted regression trees (the XGBoost stand-in).

The paper's baseline is XGBoost tuned by a 1000-iteration randomized
hyperparameter search (Section III-D, Table I, Figure 2).  xgboost is not
installable offline, so this package reimplements the same algorithm
family on numpy: histogram-binned regression trees grown with second-order
(gradient/hessian) gain, shrinkage, row subsampling, and L2 leaf
regularization, plus the randomized search driver.
"""

from repro.gbt.encoding import FeatureEncoder, TargetTransform
from repro.gbt.histogram import BinnedMatrix, bin_matrix
from repro.gbt.tree import RegressionTree, TreeParams
from repro.gbt.boosting import BoostingParams, GradientBoostingRegressor
from repro.gbt.search import (
    Choice,
    IntUniform,
    LogUniform,
    RandomizedSearch,
    SearchResult,
    Uniform,
    default_search_space,
)

__all__ = [
    "FeatureEncoder",
    "TargetTransform",
    "BinnedMatrix",
    "bin_matrix",
    "RegressionTree",
    "TreeParams",
    "BoostingParams",
    "GradientBoostingRegressor",
    "RandomizedSearch",
    "SearchResult",
    "Choice",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "default_search_space",
]
