"""Gradient boosting over histogram regression trees (squared loss).

The ensemble follows the standard XGBoost recipe: start from the target
mean, then repeatedly fit a :class:`RegressionTree` to the current
gradients/hessians, shrink it by the learning rate, and add it to the
model.  Row and column subsampling and validation-based early stopping are
supported — together these cover every hyperparameter the paper's
randomized search tunes (number of estimators, learning rate, maximum tree
depth, minimum samples per leaf).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelNotFittedError
from repro.gbt.histogram import BinnedMatrix, bin_matrix
from repro.gbt.tree import RegressionTree, TreeParams
from repro.utils.rng import rng_from

__all__ = ["BoostingParams", "GradientBoostingRegressor"]


@dataclass(frozen=True)
class BoostingParams:
    """Hyperparameters of the boosted ensemble."""

    n_estimators: int = 200
    learning_rate: float = 0.1
    max_depth: int = 6
    min_samples_leaf: int = 1
    reg_lambda: float = 1.0
    gamma: float = 0.0
    subsample: float = 1.0
    colsample: float = 1.0
    max_bins: int = 64
    early_stopping_rounds: int | None = None
    seed: int = 0

    def __post_init__(self):
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {self.subsample}")
        if not 0.0 < self.colsample <= 1.0:
            raise ValueError(f"colsample must be in (0, 1], got {self.colsample}")

    def tree_params(self) -> TreeParams:
        """The per-tree growth constraints implied by these parameters."""
        return TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )


@dataclass
class _FitState:
    """Internals captured by :meth:`GradientBoostingRegressor.fit`."""

    binned: BinnedMatrix
    base_score: float
    trees: list[RegressionTree] = field(default_factory=list)
    best_iteration: int | None = None
    validation_curve: list[float] = field(default_factory=list)


class GradientBoostingRegressor:
    """Boosted-tree regressor with an sklearn-flavoured fit/predict API."""

    def __init__(self, params: BoostingParams | None = None):
        self.params = params or BoostingParams()
        self._state: _FitState | None = None

    # ------------------------------------------------------------------ #
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GradientBoostingRegressor":
        """Fit on raw features ``x`` and targets ``y``.

        Parameters
        ----------
        eval_set:
            Optional ``(x_val, y_val)`` used for the validation curve and
            early stopping (when ``early_stopping_rounds`` is set).
        """
        p = self.params
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"need x (n, d) and y (n,); got {x.shape} and {y.shape}"
            )
        if x.shape[0] < 1:
            raise ValueError("cannot fit on an empty dataset")

        binned = bin_matrix(x, max_bins=p.max_bins)
        n = x.shape[0]
        base = float(y.mean())
        state = _FitState(binned=binned, base_score=base)
        pred = np.full(n, base)

        val_codes = val_pred = y_val = None
        if eval_set is not None:
            x_val = np.asarray(eval_set[0], dtype=float)
            y_val = np.asarray(eval_set[1], dtype=float)
            val_codes = binned.bin_new(x_val)
            val_pred = np.full(y_val.shape[0], base)
        best_val = np.inf
        rounds_since_best = 0

        rng = rng_from(p.seed, "boosting")
        tree_params = p.tree_params()
        hess = np.ones(n)

        for it in range(p.n_estimators):
            grad = pred - y  # d/dpred of 0.5*(pred-y)^2
            rows = None
            if p.subsample < 1.0:
                k = max(1, int(round(p.subsample * n)))
                rows = rng.permutation(n)[:k]
            feature_mask = None
            if p.colsample < 1.0:
                d = binned.n_features
                k = max(1, int(round(p.colsample * d)))
                feature_mask = np.zeros(d, dtype=bool)
                feature_mask[rng.permutation(d)[:k]] = True
            tree = RegressionTree(tree_params).fit(
                binned, grad, hess, rows=rows, feature_mask=feature_mask
            )
            state.trees.append(tree)
            pred += p.learning_rate * tree.predict_binned(binned.codes)

            if val_codes is not None:
                val_pred += p.learning_rate * tree.predict_binned(val_codes)
                val_mse = float(np.mean((val_pred - y_val) ** 2))
                state.validation_curve.append(val_mse)
                if val_mse < best_val - 1e-15:
                    best_val = val_mse
                    state.best_iteration = it + 1
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if (
                        p.early_stopping_rounds is not None
                        and rounds_since_best >= p.early_stopping_rounds
                    ):
                        break

        self._state = state
        return self

    # ------------------------------------------------------------------ #
    def _require_state(self) -> _FitState:
        if self._state is None:
            raise ModelNotFittedError(
                "GradientBoostingRegressor used before fit()"
            )
        return self._state

    def predict(self, x: np.ndarray, *, use_best_iteration: bool = True) -> np.ndarray:
        """Predict targets for raw feature rows."""
        state = self._require_state()
        x = np.asarray(x, dtype=float)
        codes = state.binned.bin_new(x)
        n_trees = len(state.trees)
        if use_best_iteration and state.best_iteration is not None:
            n_trees = state.best_iteration
        pred = np.full(x.shape[0], state.base_score)
        lr = self.params.learning_rate
        for tree in state.trees[:n_trees]:
            pred += lr * tree.predict_binned(codes)
        return pred

    @property
    def n_trees(self) -> int:
        """Number of trees actually grown."""
        return len(self._require_state().trees)

    @property
    def base_score(self) -> float:
        """The constant initial prediction (training-target mean)."""
        return self._require_state().base_score

    @property
    def validation_curve(self) -> list[float]:
        """Per-iteration validation MSE (empty without an eval_set)."""
        return list(self._require_state().validation_curve)

    def feature_importance(self) -> np.ndarray:
        """Split-count importance per feature column."""
        state = self._require_state()
        width = state.binned.n_features
        counts = np.zeros(width)
        for tree in state.trees:
            internal = tree.feature[tree.feature >= 0]
            counts += np.bincount(internal, minlength=width)
        total = counts.sum()
        return counts / total if total > 0 else counts
