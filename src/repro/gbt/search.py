"""Randomized hyperparameter search for the boosted-tree baseline.

Section III-D: "We find the best-fitting model through a randomized search
with 1000 iterations for varying amounts of available training data."  The
search samples hyperparameters from independent distributions, scores each
candidate on an internal validation split, and refits the winner on all
training data.  Iteration count is a parameter (the benchmarks default
lower for wall-clock sanity; the distribution matches the paper's tuned
set: number of estimators, learning rate, maximum tree depth, and minimum
samples per leaf).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ModelNotFittedError
from repro.gbt.boosting import BoostingParams, GradientBoostingRegressor
from repro.utils.rng import rng_from

__all__ = [
    "Choice",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "default_search_space",
    "SearchResult",
    "RandomizedSearch",
]


class Choice:
    """Uniform draw from an explicit finite set."""

    def __init__(self, options):
        self.options = list(options)
        if not self.options:
            raise ValueError("Choice requires at least one option")

    def sample(self, rng: np.random.Generator):
        return self.options[int(rng.integers(len(self.options)))]

    def __repr__(self) -> str:
        return f"Choice({self.options!r})"


class Uniform:
    """Uniform real draw from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class LogUniform:
    """Log-uniform real draw from ``[low, high]`` (both positive)."""

    def __init__(self, low: float, high: float):
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        )

    def __repr__(self) -> str:
        return f"LogUniform({self.low}, {self.high})"


class IntUniform:
    """Uniform integer draw from ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int):
        if not low <= high:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        self.low, self.high = int(low), int(high)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def __repr__(self) -> str:
        return f"IntUniform({self.low}, {self.high})"


def default_search_space() -> dict:
    """The paper's tuned XGBoost hyperparameters as search distributions."""
    return {
        "n_estimators": IntUniform(50, 400),
        "learning_rate": LogUniform(0.02, 0.4),
        "max_depth": IntUniform(3, 9),
        "min_samples_leaf": IntUniform(1, 16),
        "subsample": Uniform(0.6, 1.0),
        "reg_lambda": LogUniform(0.1, 10.0),
    }


@dataclass
class SearchResult:
    """Outcome of a randomized search."""

    best_params: BoostingParams
    best_score: float
    model: GradientBoostingRegressor
    history: list[tuple[Mapping[str, object], float]] = field(default_factory=list)


class RandomizedSearch:
    """Randomized hyperparameter search with an internal validation split.

    Parameters
    ----------
    space:
        Mapping from :class:`BoostingParams` field names to distributions
        (:func:`default_search_space` by default).
    n_iterations:
        Number of random candidates to evaluate.
    validation_fraction:
        Fraction of training rows held out for candidate scoring.
    seed:
        Drives candidate sampling and the validation split.
    """

    def __init__(
        self,
        space: Mapping[str, object] | None = None,
        n_iterations: int = 30,
        validation_fraction: float = 0.2,
        seed: int = 0,
    ):
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0,1), got {validation_fraction}"
            )
        self.space = dict(space) if space is not None else default_search_space()
        self.n_iterations = n_iterations
        self.validation_fraction = validation_fraction
        self.seed = seed
        self.result: SearchResult | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> SearchResult:
        """Run the search and refit the best candidate on all of ``x, y``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        n = x.shape[0]
        if n < 5:
            raise ValueError(f"need at least 5 rows to search, got {n}")
        rng = rng_from(self.seed, "randomized-search")
        perm = rng.permutation(n)
        n_val = max(1, int(round(self.validation_fraction * n)))
        n_val = min(n_val, n - 2)
        val_rows, train_rows = perm[:n_val], perm[n_val:]
        x_tr, y_tr = x[train_rows], y[train_rows]
        x_va, y_va = x[val_rows], y[val_rows]

        best_score = np.inf
        best_params: BoostingParams | None = None
        history: list[tuple[Mapping[str, object], float]] = []
        for it in range(self.n_iterations):
            sampled = {k: dist.sample(rng) for k, dist in self.space.items()}
            params = BoostingParams(seed=int(rng.integers(2**31)), **sampled)
            model = GradientBoostingRegressor(params).fit(x_tr, y_tr)
            val_mse = float(np.mean((model.predict(x_va) - y_va) ** 2))
            history.append((sampled, val_mse))
            if val_mse < best_score:
                best_score = val_mse
                best_params = params

        assert best_params is not None
        final = GradientBoostingRegressor(best_params).fit(x, y)
        self.result = SearchResult(
            best_params=best_params,
            best_score=best_score,
            model=final,
            history=history,
        )
        return self.result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict with the refit best model."""
        if self.result is None:
            raise ModelNotFittedError("RandomizedSearch used before fit()")
        return self.result.model.predict(x)
