"""Deterministic workload mixes: *what* each offered request asks for.

A :class:`WorkloadMix` describes the request population — task size, ICL
depth, how many distinct prompts exist, how popularity is skewed across
them, how many tenants share the service, and how many sampling-seed
"lanes" each prompt is replayed under.  :func:`build_workload` expands a
mix into a concrete list of :class:`LoadItem` envelopes, one per arrival,
as a pure function of ``(mix, n, seed)``.

The skew is the point.  Real serving traffic is never uniform: a few hot
prompts dominate, which is exactly what the serving stack's prefix-reuse
layer and result cache are built for.  Prompt popularity here follows a
Zipf law with exponent ``skew``, so hot prompts recur both *within* a
flush batch (same ``Request.prompt_key`` → one lockstep prefix-group
decode) and *across* batches (result/prepare-cache hits) — the load test
exercises the same cache and grouping machinery production traffic
would, rather than a worst-case all-unique stream no cache could serve.

Seed lanes bound the distinct ``(prompt, seed)`` pairs: lane 0 of a hot
prompt is a result-cache hit after its first serve, while a different
lane of the same prompt misses the result cache but shares the prepared
prefix — the two cache levels are stressed independently.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.dataset import generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.dataset.syr2k import SIZE_NAMES
from repro.errors import LoadgenError
from repro.serve.request import Request
from repro.utils.rng import derive_seed

__all__ = ["WorkloadMix", "LoadItem", "build_workload", "workload_digest"]


@dataclass(frozen=True)
class WorkloadMix:
    """The request-population half of a load-test spec.

    Attributes
    ----------
    size:
        syr2k task size every request targets.
    n_icl:
        ICL examples per prompt (shared across the whole mix, so prompts
        differ only in their query configuration).
    n_unique:
        Distinct prompts (query configurations) in the population.
    skew:
        Zipf exponent over prompt popularity: weight of prompt ``k`` is
        ``1 / (k + 1) ** skew``.  ``0.0`` is uniform; ``1.1`` (default)
        gives the classic hot-head/long-tail shape.
    n_tenants:
        Tenants the arrivals are attributed to (uniformly at random,
        deterministic per arrival index) — the SLO report breaks latency
        and outcome counts down per tenant.
    seed_lanes:
        Distinct sampling seeds each prompt is replayed under.
    timeout_s:
        Optional per-request deadline stamped on every built request.
    """

    size: str = "SM"
    n_icl: int = 4
    n_unique: int = 8
    skew: float = 1.1
    n_tenants: int = 3
    seed_lanes: int = 4
    timeout_s: float | None = None

    def __post_init__(self):
        if self.size not in SIZE_NAMES:
            raise LoadgenError(
                f"size must be one of {SIZE_NAMES}, got {self.size!r}"
            )
        for name in ("n_icl", "n_unique", "n_tenants", "seed_lanes"):
            if getattr(self, name) < 1:
                raise LoadgenError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.skew < 0:
            raise LoadgenError(f"skew must be >= 0, got {self.skew}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise LoadgenError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )


@dataclass(frozen=True)
class LoadItem:
    """One offered request plus its load-test attribution."""

    index: int
    tenant: str
    prompt_index: int
    request: Request = field(repr=False)


@lru_cache(maxsize=8)
def _prompt_pool(
    size: str, n_icl: int, n_unique: int, seed: int
) -> tuple[tuple, tuple]:
    """(shared ICL examples, per-prompt query configs) for a mix.

    Cached: dataset generation dominates workload-build time and the
    pool is reused across repeated drivers in one process (benchmarks,
    determinism double-runs).
    """
    dataset = generate_dataset(size)
    sets, queries = disjoint_example_sets(
        dataset, 1, n_icl, seed=seed, n_queries=n_unique
    )
    examples = tuple(
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    )
    configs = tuple(dataset.config(int(q)) for q in queries)
    return examples, configs


def build_workload(mix: WorkloadMix, n: int, seed: int) -> list[LoadItem]:
    """Expand ``mix`` into ``n`` concrete arrivals, deterministically.

    Prompt choice is one vectorized Zipf-weighted draw; tenant and seed
    lane are per-arrival :func:`derive_seed` hashes — all pure functions
    of ``seed``, independent of execution order or parallelism.
    """
    if n < 0:
        raise LoadgenError(f"n must be >= 0, got {n}")
    examples, configs = _prompt_pool(
        mix.size, mix.n_icl, mix.n_unique,
        derive_seed(seed, "loadgen", "examples"),
    )
    weights = 1.0 / np.power(
        np.arange(1, mix.n_unique + 1, dtype=np.float64), mix.skew
    )
    weights /= weights.sum()
    rng = np.random.default_rng(derive_seed(seed, "loadgen", "prompts"))
    prompt_idx = rng.choice(mix.n_unique, size=n, p=weights)

    items: list[LoadItem] = []
    for i in range(n):
        p = int(prompt_idx[i])
        tenant = derive_seed(seed, "loadgen", "tenant", i) % mix.n_tenants
        lane = derive_seed(seed, "loadgen", "lane", i) % mix.seed_lanes
        items.append(
            LoadItem(
                index=i,
                tenant=f"tenant-{tenant}",
                prompt_index=p,
                request=Request(
                    examples=examples,
                    query_config=configs[p],
                    seed=derive_seed(seed, "loadgen", "reqseed", p, lane),
                    size=mix.size,
                    timeout_s=mix.timeout_s,
                ),
            )
        )
    return items


def workload_digest(items: list[LoadItem]) -> str:
    """Fingerprint of the workload content: (tenant, prompt_key, seed)
    per arrival, in order.  Equal digests mean every offered request is
    identical — the content-side twin of
    :func:`~repro.loadgen.arrivals.schedule_digest`."""
    h = hashlib.blake2b(digest_size=12)
    for item in items:
        h.update(
            f"{item.tenant}/{item.request.prompt_key}/"
            f"{item.request.seed}\n".encode()
        )
    return h.hexdigest()
