"""The load driver: replay a seeded schedule against a live service.

Two driving disciplines, selected by :attr:`LoadSpec.mode`:

``open``
    **Open-loop** (arrival-clocked): requests are submitted at their
    scheduled offsets whether or not earlier ones completed, exactly like
    independent users who do not coordinate.  Latency is measured from
    the *scheduled* arrival to completion, so queueing delay during a
    backlog counts against the SLO (no coordinated omission).  Admission
    rejections are recorded as ``shed`` and not retried — shedding under
    offered load is precisely the behaviour being measured.
``closed``
    **Closed-loop** (completion-clocked): ``concurrency`` virtual
    clients each issue their next request only after the previous one
    resolves, the discipline of a fixed worker pool.  Latency is
    submit-to-completion.

Both modes replay the *same* deterministic request stream
(:func:`~repro.loadgen.workload.build_workload`) and publish the same
schedule/workload digests, so a report pins what was offered regardless
of how it was clocked.  The target is anything with the
``PredictionService`` submit surface — the in-process service, the
sharded multi-process backend, or a ``ResilientService`` wrapper — and
the session manager's campaigns can ride along on the same service
(``repro loadtest --sessions``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import (
    LoadgenError,
    RequestTimeoutError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.loadgen.arrivals import ARRIVAL_KINDS, arrival_schedule, schedule_digest
from repro.loadgen.slo import SLOReport, StreamingHistogram, TenantSlice
from repro.loadgen.workload import (
    LoadItem,
    WorkloadMix,
    build_workload,
    workload_digest,
)
from repro.obs import get_tracer
from repro.utils.rng import derive_seed

__all__ = ["LoadDriver", "LoadSpec"]

_OUTCOMES = ("ok", "errors", "shed", "timeouts", "degraded")


@dataclass(frozen=True)
class LoadSpec:
    """The complete, seed-determined description of one load test."""

    arrival: str = "poisson"
    rps: float = 50.0
    duration_s: float = 5.0
    seed: int = 7
    mode: str = "open"
    #: Closed-loop virtual-client count (ignored open-loop).
    concurrency: int = 8
    mix: WorkloadMix = field(default_factory=WorkloadMix)
    #: ``onoff`` arrival shape (ignored by the other kinds).
    on_fraction: float = 0.5
    period_s: float = 2.0
    #: How long past the last scheduled arrival the open-loop driver
    #: waits for stragglers before declaring them timed out.
    drain_timeout_s: float = 60.0
    #: Serve one request per distinct prompt before the clock starts.
    #: Cold-start costs (shard process spawn, per-shard model warm,
    #: prefix preparation) are real but belong to deployment, not to
    #: steady-state SLO conformance — without warmup a multi-second
    #: shard spawn floods the bounded queues at high offered rates and
    #: the report measures the flood, not the service.
    warmup: bool = True

    def __post_init__(self):
        if self.arrival not in ARRIVAL_KINDS:
            raise LoadgenError(
                f"arrival must be one of {ARRIVAL_KINDS}, got {self.arrival!r}"
            )
        if self.mode not in ("open", "closed"):
            raise LoadgenError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        if self.concurrency < 1:
            raise LoadgenError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.drain_timeout_s <= 0:
            raise LoadgenError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )


class _Recorder:
    """Lock-protected outcome counters + latency histograms."""

    def __init__(self, tenants: set[str]):
        self._lock = threading.Lock()
        self.counts = {o: 0 for o in _OUTCOMES}
        self.tenant_counts = {
            t: {o: 0 for o in _OUTCOMES} for t in sorted(tenants)
        }
        self.hist = StreamingHistogram()
        self.tenant_hist = {t: StreamingHistogram() for t in sorted(tenants)}

    def record(
        self, tenant: str, outcome: str, latency_s: float | None
    ) -> None:
        with self._lock:
            self.counts[outcome] += 1
            self.tenant_counts[tenant][outcome] += 1
            if latency_s is not None:
                self.hist.observe(latency_s)
                self.tenant_hist[tenant].observe(latency_s)


class LoadDriver:
    """Bind a :class:`LoadSpec` to its schedule/workload and drive targets.

    The schedule and workload are built once (both pure functions of the
    spec) and reused across :meth:`run` calls, so driving two services —
    or the same service twice — replays bit-identical traffic.
    """

    def __init__(self, spec: LoadSpec):
        self.spec = spec
        self._schedule: np.ndarray | None = None
        self._workload: list[LoadItem] | None = None

    # ------------------------------------------------------------------ #
    def schedule(self) -> np.ndarray:
        """Arrival offsets (cached; pure function of the spec)."""
        if self._schedule is None:
            self._schedule = arrival_schedule(
                self.spec.arrival,
                self.spec.rps,
                self.spec.duration_s,
                self.spec.seed,
                on_fraction=self.spec.on_fraction,
                period_s=self.spec.period_s,
            )
        return self._schedule

    def workload(self) -> list[LoadItem]:
        """One :class:`LoadItem` per arrival (cached; pure function)."""
        if self._workload is None:
            self._workload = build_workload(
                self.spec.mix, len(self.schedule()), self.spec.seed
            )
        return self._workload

    # ------------------------------------------------------------------ #
    def run(self, service) -> SLOReport:
        """Drive ``service`` through the full schedule; emit the report."""
        items = self.workload()
        recorder = _Recorder({item.tenant for item in items})
        with get_tracer().span(
            "loadgen.run",
            mode=self.spec.mode,
            arrival=self.spec.arrival,
            offered=len(items),
        ):
            if self.spec.warmup:
                self._warmup(service, items)
            start = time.monotonic()
            if self.spec.mode == "open":
                self._run_open(service, items, recorder)
            else:
                self._run_closed(service, items, recorder)
            elapsed = time.monotonic() - start
        return self._report(recorder, elapsed)

    # ------------------------------------------------------------------ #
    def _warmup(self, service, items: list[LoadItem]) -> None:
        """Serve the first occurrence of each distinct prompt, unmeasured.

        One request per ``prompt_key`` touches every shard the measured
        traffic will route to (same routing hash) and populates the
        prepare/prefix caches.  The warmup seed is derived away from the
        measured lanes, so the *result* cache stays cold for every
        measured (prompt, seed) pair — warmup removes deployment costs,
        not the run's own first decodes.  Failures are ignored: a shard
        that cannot even warm will fail the measured window loudly.
        """
        seen: set[str] = set()
        with get_tracer().span("loadgen.warmup"):
            for item in items:
                key = item.request.prompt_key
                if key in seen:
                    continue
                seen.add(key)
                probe = replace(
                    item.request,
                    seed=derive_seed(self.spec.seed, "loadgen", "warmup", key),
                    timeout_s=None,
                )
                try:
                    service.submit(probe)
                except Exception:
                    pass

    def _classify(self, response) -> str:
        return "degraded" if getattr(response, "degraded", False) else "ok"

    def _run_open(self, service, items: list[LoadItem], recorder: _Recorder):
        schedule = self.schedule()
        t0 = time.monotonic()
        pending: list[tuple[LoadItem, float, Future]] = []
        for item, offset in zip(items, schedule):
            target = t0 + float(offset)
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                future = service.submit_async(item.request)
            except ServiceOverloadedError:
                recorder.record(item.tenant, "shed", None)
                continue
            except ServiceError:
                recorder.record(item.tenant, "errors", None)
                continue
            # Completion time is captured in the resolving thread, not
            # at drain: latency must not include the driver's own wait
            # over the pending list.
            future._loadgen_done = []
            future.add_done_callback(
                lambda f: f._loadgen_done.append(time.monotonic())
            )
            pending.append((item, target, future))

        deadline = (
            t0 + float(self.spec.duration_s) + self.spec.drain_timeout_s
        )
        with get_tracer().span("loadgen.drain", pending=len(pending)):
            for item, target, future in pending:
                wait = max(deadline - time.monotonic(), 0.0)
                try:
                    response = future.result(timeout=wait)
                except FuturesTimeoutError:
                    future.cancel()
                    recorder.record(item.tenant, "timeouts", None)
                except RequestTimeoutError:
                    recorder.record(item.tenant, "timeouts", None)
                except ServiceOverloadedError:
                    recorder.record(item.tenant, "shed", None)
                except Exception:
                    recorder.record(item.tenant, "errors", None)
                else:
                    recorder.record(
                        item.tenant,
                        self._classify(response),
                        max(self._latency(future, target), 0.0),
                    )

    @staticmethod
    def _latency(future: Future, target: float) -> float:
        """Open-loop latency: completion stamp minus *scheduled* arrival.

        The done-callback stamp fires in the resolving thread before
        ``result()`` unblocks; if it is somehow missing, degrade to the
        drain loop's "now" rather than crash.
        """
        stamps = getattr(future, "_loadgen_done", None)
        done = stamps[0] if stamps else time.monotonic()
        return done - target

    def _run_closed(self, service, items: list[LoadItem], recorder: _Recorder):
        cursor = iter(items)
        cursor_lock = threading.Lock()

        def worker() -> None:
            while True:
                with cursor_lock:
                    item = next(cursor, None)
                if item is None:
                    return
                start = time.monotonic()
                try:
                    response = service.submit(item.request)
                except RequestTimeoutError:
                    recorder.record(item.tenant, "timeouts", None)
                except ServiceOverloadedError:
                    recorder.record(item.tenant, "shed", None)
                except Exception:
                    recorder.record(item.tenant, "errors", None)
                else:
                    recorder.record(
                        item.tenant,
                        self._classify(response),
                        time.monotonic() - start,
                    )

        threads = [
            threading.Thread(
                target=worker, name=f"repro-loadgen-{i}", daemon=True
            )
            for i in range(self.spec.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # ------------------------------------------------------------------ #
    def _report(self, recorder: _Recorder, elapsed: float) -> SLOReport:
        counts = recorder.counts
        hist = recorder.hist
        tenants = {}
        for tenant, tcounts in recorder.tenant_counts.items():
            thist = recorder.tenant_hist[tenant]
            tenants[tenant] = TenantSlice(
                offered=sum(tcounts.values()),
                ok=tcounts["ok"],
                errors=tcounts["errors"],
                shed=tcounts["shed"],
                timeouts=tcounts["timeouts"],
                degraded=tcounts["degraded"],
                p50_ms=thist.quantile(0.50) * 1000.0,
                p95_ms=thist.quantile(0.95) * 1000.0,
                p99_ms=thist.quantile(0.99) * 1000.0,
            )
        offered = sum(counts.values())
        return SLOReport(
            mode=self.spec.mode,
            arrival=self.spec.arrival,
            rps=float(self.spec.rps),
            duration_s=float(self.spec.duration_s),
            seed=int(self.spec.seed),
            schedule_digest=schedule_digest(self.schedule()),
            workload_digest=workload_digest(self.workload()),
            offered=offered,
            ok=counts["ok"],
            errors=counts["errors"],
            shed=counts["shed"],
            timeouts=counts["timeouts"],
            degraded=counts["degraded"],
            p50_ms=hist.quantile(0.50) * 1000.0,
            p95_ms=hist.quantile(0.95) * 1000.0,
            p99_ms=hist.quantile(0.99) * 1000.0,
            mean_ms=hist.mean * 1000.0,
            max_ms=(hist.max if hist.n else 0.0) * 1000.0,
            elapsed_s=elapsed,
            achieved_rps=(counts["ok"] + counts["degraded"]) / elapsed
            if elapsed > 0
            else 0.0,
            tenants=tenants,
        )
