"""Map a finished :class:`~repro.loadgen.slo.SLOReport` onto obs metrics.

The loadgen driver records into its own streaming histograms while the
test runs (per-request registry updates would perturb the latencies it
is measuring); this module publishes the finished report into a
:class:`~repro.obs.metrics.MetricsRegistry` after the fact, in the same
instrument vocabulary :func:`~repro.obs.metrics.collect_service_metrics`
uses for the service side — so one registry render shows offered load,
conformance, and the service's internal counters side by side.
"""

from __future__ import annotations

from repro.loadgen.slo import SLOReport
from repro.obs.metrics import MetricsRegistry

__all__ = ["collect_loadgen_metrics"]


def collect_loadgen_metrics(
    report: SLOReport, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Publish ``report`` onto labelled instruments.

    Idempotent like the other collectors: counters are set to the
    report's absolute totals, so re-publishing the same (or an updated)
    report into one registry never compounds.
    """
    registry = registry if registry is not None else MetricsRegistry()

    for outcome, count in (
        ("offered", report.offered),
        ("ok", report.ok),
        ("degraded", report.degraded),
        ("shed", report.shed),
        ("timeout", report.timeouts),
        ("error", report.errors),
    ):
        registry.counter("loadgen.requests", outcome=outcome).set_absolute(
            count
        )

    registry.gauge("loadgen.goodput").set(report.goodput)
    registry.gauge("loadgen.error_rate").set(report.error_rate)
    registry.gauge("loadgen.shed_rate").set(report.shed_rate)
    registry.gauge("loadgen.degraded_rate").set(report.degraded_rate)
    registry.gauge("loadgen.offered_rps").set(report.rps)
    registry.gauge("loadgen.achieved_rps").set(report.achieved_rps)
    for quantile, value in (
        ("p50", report.p50_ms),
        ("p95", report.p95_ms),
        ("p99", report.p99_ms),
        ("mean", report.mean_ms),
        ("max", report.max_ms),
    ):
        registry.gauge("loadgen.latency_ms", quantile=quantile).set(value)

    for tenant, ts in sorted(report.tenants.items()):
        for outcome, count in ts.counts().items():
            registry.counter(
                "loadgen.tenant_requests", tenant=tenant, outcome=outcome
            ).set_absolute(count)
        registry.gauge(
            "loadgen.tenant_latency_ms", tenant=tenant, quantile="p95"
        ).set(ts.p95_ms)
    return registry
