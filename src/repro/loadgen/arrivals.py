"""Seeded arrival processes: when each load-test request is offered.

An arrival schedule is the *timeline* half of a workload: a sorted array
of offsets (seconds from test start) at which the driver offers one
request to the service.  Every process here is a **pure function of
``(seed, kind, rps, duration_s, shape params)``** via
:func:`repro.utils.rng.derive_seed` — no global RNG, no wall clock — so
two hosts given the same spec produce byte-identical schedules, and a CI
latency regression can never hide behind "the load was different today".

Three processes cover the shapes that matter for SLO work:

``constant``
    Evenly spaced arrivals (``i / rps``) — the baseline closed-form
    timeline, useful for pinning driver math.
``poisson``
    Exponential inter-arrival gaps at rate ``rps`` — memoryless open-loop
    traffic, the standard model for independent users.
``onoff``
    Bursty on/off modulation: a Poisson process at burst rate
    ``rps / on_fraction`` confined to the "on" windows of a fixed
    ``period_s`` cycle, preserving the requested *mean* rate while
    stressing queue drain during bursts (the classic MMPP-style stressor
    that exposes backlog-sensitive p99s a constant-rate test never sees).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import LoadgenError
from repro.utils.rng import derive_seed

__all__ = ["ARRIVAL_KINDS", "arrival_schedule", "schedule_digest"]

#: Supported arrival-process names (the CLI's ``--arrival`` choices).
ARRIVAL_KINDS = ("constant", "poisson", "onoff")

#: Exponential gaps are drawn in chunks of this many until the horizon
#: is covered (chunking is deterministic: one generator, fixed order).
_CHUNK = 1024


def _check_spec(kind: str, rps: float, duration_s: float) -> None:
    if kind not in ARRIVAL_KINDS:
        raise LoadgenError(
            f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
        )
    if not rps > 0:
        raise LoadgenError(f"rps must be > 0, got {rps}")
    if not duration_s > 0:
        raise LoadgenError(f"duration_s must be > 0, got {duration_s}")


def _poisson_offsets(
    rng: np.random.Generator, rate: float, horizon_s: float
) -> np.ndarray:
    """Cumulative exponential gaps at ``rate`` cut to ``[0, horizon_s)``."""
    gaps: list[np.ndarray] = []
    total = 0.0
    while total < horizon_s:
        chunk = rng.exponential(1.0 / rate, size=_CHUNK)
        gaps.append(chunk)
        total += float(chunk.sum())
    times = np.cumsum(np.concatenate(gaps))
    return times[times < horizon_s]


def arrival_schedule(
    kind: str,
    rps: float,
    duration_s: float,
    seed: int,
    *,
    on_fraction: float = 0.5,
    period_s: float = 2.0,
) -> np.ndarray:
    """Build a sorted float64 array of arrival offsets in ``[0, duration_s)``.

    Parameters
    ----------
    kind:
        One of :data:`ARRIVAL_KINDS`.
    rps:
        Mean offered rate (requests/second) — for ``onoff`` this is the
        *long-run* mean; the instantaneous rate inside a burst window is
        ``rps / on_fraction``.
    duration_s:
        Schedule horizon in seconds.
    seed:
        Root seed; the generator is derived through
        ``derive_seed(seed, "loadgen", "arrivals", kind, rps, duration_s)``
        so the schedule is a pure function of the full spec (changing any
        knob yields an unrelated, equally deterministic timeline).
    on_fraction, period_s:
        ``onoff`` shape: each ``period_s`` cycle spends
        ``on_fraction * period_s`` seconds accepting arrivals, the rest
        silent.  Ignored by the other kinds.
    """
    _check_spec(kind, rps, duration_s)
    rps = float(rps)
    duration_s = float(duration_s)
    if kind == "constant":
        n = int(np.floor(rps * duration_s))
        return np.arange(n, dtype=np.float64) / rps

    child = derive_seed(seed, "loadgen", "arrivals", kind, rps, duration_s)
    rng = np.random.default_rng(child)
    if kind == "poisson":
        return _poisson_offsets(rng, rps, duration_s)

    # onoff: draw a Poisson process on the *compressed* on-time axis at
    # the burst rate, then splice the off gaps back in.  The mapping
    # u -> wall time is affine per window, so ordering and determinism
    # are preserved exactly.
    if not 0.0 < on_fraction <= 1.0:
        raise LoadgenError(
            f"on_fraction must be in (0, 1], got {on_fraction}"
        )
    if not period_s > 0:
        raise LoadgenError(f"period_s must be > 0, got {period_s}")
    on_s = on_fraction * period_s
    burst_rate = rps / on_fraction
    # Total on-time inside the horizon: whole cycles plus the (possibly
    # clipped) on-window of the trailing partial cycle.
    whole = np.floor(duration_s / period_s)
    on_budget = whole * on_s + min(duration_s - whole * period_s, on_s)
    compressed = _poisson_offsets(rng, burst_rate, on_budget)
    window = np.floor(compressed / on_s)
    times = window * period_s + (compressed - window * on_s)
    return times[times < duration_s]


def schedule_digest(times: np.ndarray) -> str:
    """Byte-exact fingerprint of a schedule (blake2b over the raw float64s).

    Two schedules with equal digests are *bit-identical* timelines — the
    pin the determinism tests and the loadtest report rely on.
    """
    arr = np.ascontiguousarray(np.asarray(times, dtype=np.float64))
    return hashlib.blake2b(arr.tobytes(), digest_size=12).hexdigest()
