"""Streaming latency histograms, declarative SLO policies, SLO reports.

The driver records every request outcome into a
:class:`StreamingHistogram` — fixed log-spaced buckets, O(1) per
observation, mergeable — rather than keeping raw samples: a nightly soak
at hundreds of requests per second would otherwise accumulate millions
of floats for no benefit, and fixed bucket *edges* make quantile
estimates deterministic functions of the counts (pinned by
``tests/test_loadgen_slo.py``).

An :class:`SLOPolicy` is the declarative conformance contract: latency
ceilings per quantile, a goodput floor, and ceilings on the error /
shed / degraded fractions.  :meth:`SLOReport.check` evaluates a report
against a policy and returns typed :class:`SLOViolation`\\ s — the CI
soak gate is exactly "``check`` returned an empty list".

Accounting vocabulary (used consistently everywhere):

``offered``
    Arrivals the schedule produced (the denominator of every rate).
``ok``
    Requests answered by the live path, un-degraded.
``degraded``
    Answered, but by the resilience layer's fallback chain.
``shed``
    Rejected at admission (:class:`~repro.errors.ServiceOverloadedError`)
    — the open-loop driver does *not* retry them; shedding under load is
    the signal being measured.
``errors`` / ``timeouts``
    Failed with any other service error / missed their deadline.
``goodput``
    ``ok / offered`` — degraded and shed responses explicitly do **not**
    count toward goodput, so a service cannot hit its SLO by degrading
    or refusing traffic.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.errors import LoadgenError
from repro.utils.tables import Table

__all__ = [
    "DEFAULT_SLO",
    "SLOPolicy",
    "SLOReport",
    "SLOViolation",
    "StreamingHistogram",
    "TenantSlice",
]


class StreamingHistogram:
    """Log-spaced latency histogram with deterministic quantile edges.

    Buckets span ``[lo, hi)`` with ``buckets_per_decade`` geometric
    steps per factor of ten; observations outside the span clamp into
    the first/last bucket.  Quantiles interpolate linearly *inside* the
    owning bucket, so the estimate is a pure function of the counts —
    identical counts give identical quantiles on every host.

    Not thread-safe by itself; the driver serializes writes through its
    own bookkeeping lock.
    """

    __slots__ = ("lo", "bpd", "edges", "counts", "n", "total", "min", "max")

    def __init__(
        self,
        lo: float = 1e-5,
        hi: float = 1e3,
        buckets_per_decade: int = 16,
    ):
        if not 0 < lo < hi:
            raise LoadgenError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if buckets_per_decade < 1:
            raise LoadgenError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.lo = float(lo)
        self.bpd = int(buckets_per_decade)
        n_buckets = int(
            math.ceil(round(math.log10(hi / lo), 9) * self.bpd)
        )
        #: ``edges[k]`` is the lower bound of bucket ``k``; bucket ``k``
        #: covers ``[edges[k], edges[k + 1])``.
        self.edges = self.lo * np.power(
            10.0, np.arange(n_buckets + 1, dtype=np.float64) / self.bpd
        )
        self.counts = np.zeros(n_buckets, dtype=np.int64)
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        k = int(math.floor(round(math.log10(value / self.lo), 9) * self.bpd))
        return min(k, len(self.counts) - 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise LoadgenError(f"latencies are non-negative, got {value}")
        self.counts[self._bucket(value)] += 1
        self.n += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram (bucket layouts must match)."""
        if (
            other.lo != self.lo
            or other.bpd != self.bpd
            or len(other.counts) != len(self.counts)
        ):
            raise LoadgenError("cannot merge histograms with different buckets")
        self.counts += other.counts
        self.n += other.n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]); 0.0 when empty.

        The target rank is ``ceil(q * n)`` (nearest-rank), located in
        its bucket, then interpolated linearly between the bucket's
        edges by fractional position — deterministic given the counts.
        """
        if not 0.0 <= q <= 1.0:
            raise LoadgenError(f"q must be in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        target = max(1, math.ceil(q * self.n))
        cum = 0
        for k, count in enumerate(self.counts):
            if count == 0:
                continue
            if cum + count >= target:
                frac = (target - cum) / count
                lower, upper = self.edges[k], self.edges[k + 1]
                return float(lower + frac * (upper - lower))
            cum += count
        return float(self.edges[-1])  # pragma: no cover - unreachable

    def snapshot(self) -> dict:
        """JSON-friendly counts + exact moments (for report payloads)."""
        return {
            "n": self.n,
            "mean_s": self.mean,
            "min_s": self.min if self.n else 0.0,
            "max_s": self.max if self.n else 0.0,
        }


@dataclass(frozen=True)
class SLOPolicy:
    """Declarative conformance thresholds for one load test.

    Latency ceilings are milliseconds over the *client-observed* latency
    distribution (open loop: completion minus scheduled arrival, so
    coordinated omission cannot flatter a backlogged service).  A
    ``None`` ceiling leaves that quantile ungated.  Rates are fractions
    of offered requests.
    """

    max_p50_ms: float | None = 50.0
    max_p95_ms: float | None = 500.0
    max_p99_ms: float | None = 2000.0
    min_goodput: float = 0.98
    max_error_rate: float = 0.0
    max_shed_rate: float = 0.01
    max_degraded_rate: float = 0.05

    def __post_init__(self):
        for name in ("max_p50_ms", "max_p95_ms", "max_p99_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise LoadgenError(f"{name} must be positive, got {value}")
        for name in (
            "min_goodput",
            "max_error_rate",
            "max_shed_rate",
            "max_degraded_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise LoadgenError(f"{name} must be in [0, 1], got {value}")

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, obj: dict) -> "SLOPolicy":
        known = set(cls.__dataclass_fields__)
        unknown = set(obj) - known
        if unknown:
            raise LoadgenError(
                f"unknown SLO policy fields: {sorted(unknown)}"
            )
        return cls(**obj)

    @classmethod
    def from_file(cls, path: str | Path) -> "SLOPolicy":
        try:
            obj = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise LoadgenError(f"cannot load SLO policy {path}: {exc}")
        return cls.from_json(obj)


#: The committed default gate (what ``repro loadtest --slo default`` and
#: the nightly soak check against).
DEFAULT_SLO = SLOPolicy()


@dataclass(frozen=True)
class SLOViolation:
    """One threshold the measured report crossed."""

    name: str
    limit: float
    actual: float

    def describe(self) -> str:
        return f"{self.name}: {self.actual:.6g} violates limit {self.limit:.6g}"


@dataclass(frozen=True)
class TenantSlice:
    """Per-tenant outcome counts plus that tenant's latency quantiles."""

    offered: int
    ok: int
    errors: int
    shed: int
    timeouts: int
    degraded: int
    p50_ms: float
    p95_ms: float
    p99_ms: float

    def counts(self) -> dict:
        """The deterministic (wall-clock-free) part of the slice."""
        return {
            "offered": self.offered,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class SLOReport:
    """The complete result of one load test.

    Two layers with different determinism guarantees:

    * the **schedule layer** (spec echo, digests, outcome counts,
      per-tenant counts, goodput) is a pure function of the seed on a
      healthy run — :meth:`deterministic_payload` extracts exactly this
      slice and the CLI determinism check compares it byte-for-byte;
    * the **measured layer** (latency quantiles, achieved rps, elapsed
      wall time) reflects the actual execution and differs run to run.
    """

    mode: str
    arrival: str
    rps: float
    duration_s: float
    seed: int
    schedule_digest: str
    workload_digest: str
    offered: int
    ok: int
    errors: int
    shed: int
    timeouts: int
    degraded: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    elapsed_s: float
    achieved_rps: float
    tenants: dict[str, TenantSlice] = field(default_factory=dict)
    #: Optional ride-along campaign summary (``repro loadtest
    #: --sessions``): completed evaluations + fairness, or ``None``.
    sessions: dict | None = None

    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        """Requests that received *some* answer (live or degraded)."""
        return self.ok + self.degraded

    @property
    def goodput(self) -> float:
        """Fraction of offered requests answered live and un-degraded."""
        return self.ok / self.offered if self.offered else 1.0

    @property
    def error_rate(self) -> float:
        return (
            (self.errors + self.timeouts) / self.offered
            if self.offered
            else 0.0
        )

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.offered if self.offered else 0.0

    # ------------------------------------------------------------------ #
    def check(self, policy: SLOPolicy) -> list[SLOViolation]:
        """Evaluate this report against ``policy`` (empty list = pass)."""
        violations: list[SLOViolation] = []

        def over(name: str, actual: float, limit: float | None) -> None:
            if limit is not None and actual > limit:
                violations.append(SLOViolation(name, limit, actual))

        over("p50_ms", self.p50_ms, policy.max_p50_ms)
        over("p95_ms", self.p95_ms, policy.max_p95_ms)
        over("p99_ms", self.p99_ms, policy.max_p99_ms)
        if self.goodput < policy.min_goodput:
            violations.append(
                SLOViolation("goodput", policy.min_goodput, self.goodput)
            )
        over("error_rate", self.error_rate, policy.max_error_rate)
        over("shed_rate", self.shed_rate, policy.max_shed_rate)
        over("degraded_rate", self.degraded_rate, policy.max_degraded_rate)
        return violations

    # ------------------------------------------------------------------ #
    def deterministic_payload(self) -> dict:
        """The seed-determined slice: spec, digests, and outcome counts
        (all wall-clock-derived fields dropped, including per-tenant
        latency quantiles)."""
        return {
            "mode": self.mode,
            "arrival": self.arrival,
            "rps": self.rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "schedule_digest": self.schedule_digest,
            "workload_digest": self.workload_digest,
            "outcomes": {
                "offered": self.offered,
                "ok": self.ok,
                "errors": self.errors,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "degraded": self.degraded,
            },
            "goodput": self.goodput,
            "tenants": {
                tenant: slice_.counts()
                for tenant, slice_ in sorted(self.tenants.items())
            },
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, trailing newline) for
        ``--report-json`` and the bench report-source mechanism."""
        payload = self.deterministic_payload()
        payload["latency_ms"] = {
            "p50": self.p50_ms,
            "p95": self.p95_ms,
            "p99": self.p99_ms,
            "mean": self.mean_ms,
            "max": self.max_ms,
        }
        payload["measured"] = {
            "elapsed_s": self.elapsed_s,
            "achieved_rps": self.achieved_rps,
        }
        payload["tenant_latency_ms"] = {
            tenant: {
                "p50": s.p50_ms, "p95": s.p95_ms, "p99": s.p99_ms,
            }
            for tenant, s in sorted(self.tenants.items())
        }
        payload["sessions"] = self.sessions
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def with_sessions(self, summary: dict) -> "SLOReport":
        return replace(self, sessions=dict(summary))

    def render(self, title: str = "load test") -> str:
        """ASCII report body (the ``repro loadtest`` stdout)."""
        t = Table(["metric", "value"], title=title)
        t.add_row(["mode / arrival", f"{self.mode} / {self.arrival}"])
        t.add_row(["target rate", f"{self.rps:g} req/s"])
        t.add_row(["duration", f"{self.duration_s:g} s"])
        t.add_row(["offered", self.offered])
        t.add_row(["ok", self.ok])
        t.add_row(["degraded", self.degraded])
        t.add_row(["shed (overload)", self.shed])
        t.add_row(["errors", self.errors])
        t.add_row(["timeouts", self.timeouts])
        t.add_row(["goodput", f"{self.goodput:.2%}"])
        t.add_row(["p50 latency", f"{self.p50_ms:.2f} ms"])
        t.add_row(["p95 latency", f"{self.p95_ms:.2f} ms"])
        t.add_row(["p99 latency", f"{self.p99_ms:.2f} ms"])
        t.add_row(["achieved rate", f"{self.achieved_rps:.1f} req/s"])
        t.add_row(["schedule digest", self.schedule_digest])
        t.add_row(["workload digest", self.workload_digest])
        lines = [t.render()]
        if self.tenants:
            tt = Table(
                ["tenant", "offered", "ok", "shed", "err", "p95 ms"],
                title="per-tenant breakdown",
            )
            for tenant, s in sorted(self.tenants.items()):
                tt.add_row([
                    tenant, s.offered, s.ok, s.shed,
                    s.errors + s.timeouts, round(s.p95_ms, 2),
                ])
            lines.append("")
            lines.append(tt.render())
        if self.sessions is not None:
            lines.append("")
            lines.append(
                f"sessions: {self.sessions.get('completed', 0)} evaluations "
                f"across {self.sessions.get('n_sessions', 0)} campaigns, "
                f"fairness (Jain) {self.sessions.get('fairness_jain', 1.0):.3f}"
            )
        return "\n".join(lines)

    @classmethod
    def from_json(cls, text: str) -> "SLOReport":
        """Rebuild a report from :meth:`to_json` output."""
        obj = json.loads(text)
        out = obj["outcomes"]
        lat = obj["latency_ms"]
        tenants = {}
        for tenant, counts in obj.get("tenants", {}).items():
            tlat = obj.get("tenant_latency_ms", {}).get(tenant, {})
            tenants[tenant] = TenantSlice(
                p50_ms=float(tlat.get("p50", 0.0)),
                p95_ms=float(tlat.get("p95", 0.0)),
                p99_ms=float(tlat.get("p99", 0.0)),
                **{k: int(v) for k, v in counts.items()},
            )
        return cls(
            mode=obj["mode"],
            arrival=obj["arrival"],
            rps=float(obj["rps"]),
            duration_s=float(obj["duration_s"]),
            seed=int(obj["seed"]),
            schedule_digest=obj["schedule_digest"],
            workload_digest=obj["workload_digest"],
            offered=int(out["offered"]),
            ok=int(out["ok"]),
            errors=int(out["errors"]),
            shed=int(out["shed"]),
            timeouts=int(out["timeouts"]),
            degraded=int(out["degraded"]),
            p50_ms=float(lat["p50"]),
            p95_ms=float(lat["p95"]),
            p99_ms=float(lat["p99"]),
            mean_ms=float(lat["mean"]),
            max_ms=float(lat["max"]),
            elapsed_s=float(obj["measured"]["elapsed_s"]),
            achieved_rps=float(obj["measured"]["achieved_rps"]),
            tenants=tenants,
            sessions=obj.get("sessions"),
        )
