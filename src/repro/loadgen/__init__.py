"""repro.loadgen — deterministic load generation + SLO conformance.

The serving stack (micro-batching service, sharded backend, session
manager) is measured here the way production systems are: a **seeded
arrival process** decides *when* requests are offered, a **workload
mix** decides *what* each one asks for, a driver replays the timeline
open- or closed-loop against a live service, and the outcome is an
:class:`~repro.loadgen.slo.SLOReport` checked against a declarative
:class:`~repro.loadgen.slo.SLOPolicy`.

Everything offered is a pure function of the seed (arrival offsets,
prompt choice, tenant attribution, request seeds), fingerprinted by
schedule/workload digests in the report — so the nightly CI soak gates
on SLO conformance knowing the load can never silently drift.

Entry points: ``repro loadtest`` (CLI), :class:`LoadDriver` (library),
:func:`collect_loadgen_metrics` (obs bridge).
"""

from repro.loadgen.arrivals import ARRIVAL_KINDS, arrival_schedule, schedule_digest
from repro.loadgen.driver import LoadDriver, LoadSpec
from repro.loadgen.metrics import collect_loadgen_metrics
from repro.loadgen.slo import (
    DEFAULT_SLO,
    SLOPolicy,
    SLOReport,
    SLOViolation,
    StreamingHistogram,
    TenantSlice,
)
from repro.loadgen.workload import (
    LoadItem,
    WorkloadMix,
    build_workload,
    workload_digest,
)

__all__ = [
    "ARRIVAL_KINDS",
    "arrival_schedule",
    "schedule_digest",
    "LoadDriver",
    "LoadSpec",
    "collect_loadgen_metrics",
    "DEFAULT_SLO",
    "SLOPolicy",
    "SLOReport",
    "SLOViolation",
    "StreamingHistogram",
    "TenantSlice",
    "LoadItem",
    "WorkloadMix",
    "build_workload",
    "workload_digest",
]
