"""CSV persistence for performance datasets.

The paper's artifacts ship performance data as CSV ("a feature-rich
text-based CSV format" per the prompt of Figure 1); this module writes and
reads the same layout: one column per tunable parameter, one ``size``
column, and an ``objective`` column with the runtime.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.dataset.generate import PerformanceDataset
from repro.dataset.space import ConfigSpace
from repro.errors import DatasetError

__all__ = ["save_dataset_csv", "load_dataset_csv"]

_OBJECTIVE_COLUMN = "objective"
_SIZE_COLUMN = "size"


def save_dataset_csv(dataset: PerformanceDataset, path: str | Path) -> None:
    """Write a dataset as CSV with one row per configuration."""
    path = Path(path)
    names = dataset.space.parameter_names
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([_SIZE_COLUMN, *names, _OBJECTIVE_COLUMN])
        for row in range(len(dataset)):
            cfg = dataset.config(row)
            writer.writerow(
                [
                    dataset.size,
                    *(cfg[name] for name in names),
                    repr(float(dataset.runtimes[row])),
                ]
            )


def _parse_value(param, text: str):
    """Parse a CSV cell back into the parameter's value type."""
    for value in param.values:
        if str(value) == text:
            return value
    raise DatasetError(
        f"CSV value {text!r} is not in the domain of parameter {param.name!r}"
    )


def load_dataset_csv(path: str | Path, space: ConfigSpace) -> PerformanceDataset:
    """Read a dataset CSV written by :func:`save_dataset_csv`.

    Raises
    ------
    DatasetError
        On missing columns, domain violations, mixed sizes, or unparsable
        objective values.
    """
    path = Path(path)
    names = space.parameter_names
    indices: list[int] = []
    runtimes: list[float] = []
    size: str | None = None
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        missing = {_SIZE_COLUMN, _OBJECTIVE_COLUMN, *names} - set(header)
        if missing:
            raise DatasetError(f"CSV {path} is missing columns: {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            if size is None:
                size = row[_SIZE_COLUMN]
            elif row[_SIZE_COLUMN] != size:
                raise DatasetError(
                    f"CSV {path}:{lineno} mixes sizes "
                    f"({row[_SIZE_COLUMN]!r} vs {size!r})"
                )
            cfg = {
                name: _parse_value(space.parameter(name), row[name])
                for name in names
            }
            indices.append(space.to_index(cfg))
            try:
                runtimes.append(float(row[_OBJECTIVE_COLUMN]))
            except ValueError:
                raise DatasetError(
                    f"CSV {path}:{lineno} has unparsable objective "
                    f"{row[_OBJECTIVE_COLUMN]!r}"
                ) from None
    if size is None:
        raise DatasetError(f"CSV {path} contains no data rows")
    return PerformanceDataset(
        space=space,
        size=size,
        indices=np.asarray(indices, dtype=np.int64),
        runtimes=np.asarray(runtimes, dtype=float),
    )
