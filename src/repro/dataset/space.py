"""Finite configuration spaces with an index bijection and edit distances.

A :class:`ConfigSpace` is an ordered tuple of :class:`Parameter` objects.
Every configuration (a dict ``{param_name: value}``) corresponds to exactly
one integer in ``range(space.size)`` via a mixed-radix encoding, which is
how the dataset generator enumerates all 10,648 syr2k configurations and
how samplers draw without replacement.

The space also provides the two notions of configuration similarity the
paper relies on:

* **Hamming edit distance** — the number of differing parameters, used to
  define the "minimal configuration-space editing distance" curated ICL
  sets of Section III-B;
* **weighted distance** — Hamming refined by per-parameter normalized value
  distance, used to rank ties (two configs differing by one adjacent tile
  size are closer than two differing by a far-apart tile size).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.dataset.parameters import Parameter
from repro.errors import ConfigSpaceError, InvalidConfigurationError, UnknownParameterError

__all__ = ["Configuration", "ConfigSpace"]

#: A configuration is a plain mapping from parameter name to value.
Configuration = dict


class ConfigSpace:
    """An ordered product of finite parameters.

    Parameters
    ----------
    parameters:
        The parameters, in significance order for the mixed-radix index
        (first parameter varies slowest).
    name:
        Optional human-readable space name (used in prompts and reports).
    """

    def __init__(self, parameters: Sequence[Parameter], name: str = "space"):
        params = tuple(parameters)
        if not params:
            raise ConfigSpaceError("a ConfigSpace needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ConfigSpaceError(f"duplicate parameter names in {names}")
        self.name = name
        self.parameters = params
        self._by_name = {p.name: p for p in params}
        # Mixed-radix place values: radix of parameter i is its cardinality;
        # place value is the product of cardinalities of the params after it.
        cards = np.array([p.cardinality for p in params], dtype=np.int64)
        place = np.ones(len(params), dtype=np.int64)
        for i in range(len(params) - 2, -1, -1):
            place[i] = place[i + 1] * cards[i + 1]
        self._cards = cards
        self._place = place
        self.size = int(cards.prod())

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of all parameters, in index-significance order."""
        return tuple(p.name for p in self.parameters)

    def parameter(self, name: str) -> Parameter:
        """Return the parameter called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownParameterError(name, self.parameter_names) from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.parameters)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, config: Mapping[str, object]) -> Configuration:
        """Check ``config`` assigns every parameter a domain value.

        Returns a plain dict copy in parameter order.

        Raises
        ------
        InvalidConfigurationError
            On missing names, extra names, or out-of-domain values.
        """
        extra = set(config) - set(self._by_name)
        if extra:
            raise InvalidConfigurationError(
                f"configuration has unknown parameters: {sorted(extra)}"
            )
        missing = set(self._by_name) - set(config)
        if missing:
            raise InvalidConfigurationError(
                f"configuration is missing parameters: {sorted(missing)}"
            )
        out: Configuration = {}
        for p in self.parameters:
            value = config[p.name]
            p.index_of(value)  # raises if out of domain
            out[p.name] = value
        return out

    # ------------------------------------------------------------------ #
    # Index bijection
    # ------------------------------------------------------------------ #
    def to_index(self, config: Mapping[str, object]) -> int:
        """Map a configuration to its unique index in ``range(self.size)``."""
        cfg = self.validate(config)
        idx = 0
        for p, place in zip(self.parameters, self._place):
            idx += p.index_of(cfg[p.name]) * int(place)
        return idx

    def from_index(self, index: int) -> Configuration:
        """Map an index in ``range(self.size)`` back to its configuration."""
        i = int(index)
        if not 0 <= i < self.size:
            raise InvalidConfigurationError(
                f"index {index} out of range for space of size {self.size}"
            )
        out: Configuration = {}
        for p, place in zip(self.parameters, self._place):
            digit, i = divmod(i, int(place))
            out[p.name] = p.value_at(digit)
        return out

    def ordinal_matrix(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Return per-parameter ordinal digits as an ``(n, n_params)`` array.

        Row ``r`` holds the mixed-radix digits of configuration
        ``indices[r]`` (all configurations when ``indices`` is ``None``).
        This is the vectorized workhorse behind dataset generation and
        distance computations.
        """
        if indices is None:
            idx = np.arange(self.size, dtype=np.int64)
        else:
            idx = np.asarray(indices, dtype=np.int64)
            if idx.ndim != 1:
                raise InvalidConfigurationError("indices must be 1-D")
            if idx.size and (idx.min() < 0 or idx.max() >= self.size):
                raise InvalidConfigurationError(
                    f"indices out of range for space of size {self.size}"
                )
        # digits[:, j] = (idx // place[j]) % card[j]
        return (idx[:, None] // self._place[None, :]) % self._cards[None, :]

    def __iter__(self) -> Iterator[Configuration]:
        for i in range(self.size):
            yield self.from_index(i)

    # ------------------------------------------------------------------ #
    # Sampling and distances
    # ------------------------------------------------------------------ #
    def sample_indices(
        self, rng: np.random.Generator, n: int, *, replace: bool = False
    ) -> np.ndarray:
        """Draw ``n`` configuration indices uniformly at random."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if not replace and n > self.size:
            raise ValueError(
                f"cannot draw {n} distinct configurations from a space of "
                f"size {self.size}"
            )
        return rng.choice(self.size, size=n, replace=replace)

    def hamming_distance(
        self, a: Mapping[str, object], b: Mapping[str, object]
    ) -> int:
        """Number of parameters on which ``a`` and ``b`` differ."""
        ca, cb = self.validate(a), self.validate(b)
        return sum(ca[p.name] != cb[p.name] for p in self.parameters)

    def weighted_distance(
        self, a: Mapping[str, object], b: Mapping[str, object]
    ) -> float:
        """Sum of per-parameter normalized value distances (in [0, n_params])."""
        ca, cb = self.validate(a), self.validate(b)
        return float(
            sum(p.distance(ca[p.name], cb[p.name]) for p in self.parameters)
        )

    def pairwise_weighted_distances(
        self, center_index: int, indices: Sequence[int] | None = None
    ) -> np.ndarray:
        """Vectorized weighted distance from one config to many.

        Parameters
        ----------
        center_index:
            Index of the reference configuration.
        indices:
            Candidate indices (all configurations when ``None``).
        """
        digits = self.ordinal_matrix(indices)
        center = self.ordinal_matrix([center_index])[0]
        dist = np.zeros(digits.shape[0], dtype=float)
        for j, p in enumerate(self.parameters):
            dj = digits[:, j] - center[j]
            if p.is_numeric and p.cardinality > 1:
                dist += np.abs(dj) / (p.cardinality - 1)
            else:
                dist += (dj != 0).astype(float)
        return dist

    def neighbors(self, index: int) -> list[int]:
        """Indices of all Hamming-1 neighbours of configuration ``index``."""
        base = self.from_index(index)
        out: list[int] = []
        for p in self.parameters:
            for v in p.values:
                if v != base[p.name]:
                    cfg = dict(base)
                    cfg[p.name] = v
                    out.append(self.to_index(cfg))
        return out

    def __repr__(self) -> str:
        return (
            f"ConfigSpace({self.name!r}, {len(self.parameters)} parameters, "
            f"size={self.size})"
        )
