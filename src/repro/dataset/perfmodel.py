"""Analytical performance model for the syr2k loop nest.

The paper uses empirical runtimes measured on a 2x AMD EPYC 7742 machine
(Randall et al., ICS'23) for all 10,648 configurations at two sizes.  That
trace is not redistributable, so this module implements the substitution
documented in DESIGN.md: a first-principles cache/loop-nest cost model over
the *identical* configuration space, producing a fixed, deterministic table
of runtimes whose magnitudes, output-string statistics, and learnability
match the paper's:

* all SM runtimes are below one second (the paper's Figure-1 example is
  ``0.0022155``), XL runtimes lie in ``[1, 10)`` seconds, so the tokenized
  value strings exercise exactly the positions analysed in Table II;
* XL is smoother (more learnable) than SM, reproducing Table I's ordering,
  because small kernels are dominated by unmodelable micro-architectural
  ruggedness and measurement jitter which the model injects deterministically.

The model multiplies a flop-derived base time by physically motivated
factors:

``cache``        working-set pressure of a tile across L1/L2 capacity,
``loop``         loop-control overhead and lost vectorization of tiny tiles,
``remainder``    padding waste when tiles do not divide loop extents,
``interchange``  locality shift from swapping the outer loops (interacts
                 with tile aspect ratio, size, and packing),
``packing``      copy overhead vs. conflict-miss relief for each array,
``rugged``       deterministic per-configuration hash "noise" standing in
                 for alignment/TLB/conflict effects no feature explains,
``noise``        lognormal measurement jitter (fixed per configuration for
                 the dataset table; fresh draws available via ``measure``).

Everything is vectorized over configuration indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.space import ConfigSpace
from repro.dataset.syr2k import TILE_SIZES, Syr2kTask, syr2k_space
from repro.errors import DatasetError
from repro.utils.rng import rng_from

__all__ = ["PerfModelParams", "Syr2kPerformanceModel"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class PerfModelParams:
    """Tunable constants of the analytical cost model.

    The defaults are calibrated (see ``benchmarks/test_table1_gbt_metrics``)
    so a gradient-boosted-tree baseline reaches Table-I-like scores:
    R^2 around 0.8 on SM and around 0.98 on XL with the full training set.
    """

    #: Peak effective flop rate (flops/second) for a perfectly tuned kernel.
    peak_rate: float = 2.0e10
    #: Half-saturation constant for size-dependent efficiency: small
    #: problems cannot amortize startup/parallel overheads.
    efficiency_halfsat: float = 400.0
    #: L1 and L2 capacities in units of 8-byte doubles.
    l1_doubles: float = 4096.0
    l2_doubles: float = 65536.0
    #: Added slowdown when the tile working set spills L1 / L2.
    cache_l1_penalty: float = 0.8
    cache_l2_penalty: float = 1.4
    #: Loop-control overhead charged per tile traversal (per loop level).
    loop_overhead: float = 1.6
    #: Inner tiles below this lose vector efficiency ...
    vector_width: float = 16.0
    #: ... at this maximal relative cost.
    vector_penalty: float = 0.6
    #: Weight of partial-tile padding waste.
    remainder_weight: float = 0.5
    #: Interchange sensitivity per size class (sign encodes whether the
    #: interchanged order streams the larger array more favourably).
    interchange_beta: Mapping[str, float] = field(
        default_factory=lambda: {
            "S": 0.14, "SM": 0.12, "M": 0.06,
            "ML": -0.04, "L": -0.10, "XL": -0.16,
        }
    )
    #: Relative copy overhead of packing per size class (copying is poorly
    #: amortized for small problems).
    pack_cost: Mapping[str, float] = field(
        default_factory=lambda: {
            "S": 0.10, "SM": 0.08, "M": 0.05,
            "ML": 0.03, "L": 0.015, "XL": 0.010,
        }
    )
    #: Maximal relative benefit of packing once the working set spills L2.
    pack_benefit: float = 0.22
    #: Std-dev of the deterministic lognormal ruggedness term per size.
    sigma_rugged: Mapping[str, float] = field(
        default_factory=lambda: {
            "S": 0.12, "SM": 0.085, "M": 0.06,
            "ML": 0.04, "L": 0.025, "XL": 0.018,
        }
    )
    #: Std-dev of lognormal measurement noise per size.
    sigma_noise: Mapping[str, float] = field(
        default_factory=lambda: {
            "S": 0.06, "SM": 0.040, "M": 0.028,
            "ML": 0.018, "L": 0.012, "XL": 0.009,
        }
    )

    def for_size(self, size: str) -> tuple[float, float, float, float]:
        """Return ``(beta, pack_cost, sigma_rugged, sigma_noise)`` for a size."""
        try:
            return (
                float(self.interchange_beta[size]),
                float(self.pack_cost[size]),
                float(self.sigma_rugged[size]),
                float(self.sigma_noise[size]),
            )
        except KeyError:
            raise DatasetError(f"no model constants for size {size!r}") from None

    def with_overrides(self, **kwargs) -> "PerfModelParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


class Syr2kPerformanceModel:
    """Deterministic runtime model for one :class:`Syr2kTask`.

    Parameters
    ----------
    task:
        The syr2k size to model.
    params:
        Model constants; defaults reproduce the paper's regimes.
    seed:
        Root seed for the deterministic ruggedness and noise tables.  Two
        models with equal task/params/seed produce identical runtimes.
    """

    def __init__(
        self,
        task: Syr2kTask,
        params: PerfModelParams | None = None,
        seed: int = 20250705,
    ):
        self.task = task
        self.params = params or PerfModelParams()
        self.seed = int(seed)
        self.space: ConfigSpace = syr2k_space()
        self._tiles = np.asarray(TILE_SIZES, dtype=float)
        # Kernel-specific noise namespaces; the syr2k paths predate the
        # kernel tag and are kept as-is so its calibrated tables are stable.
        kernel = getattr(task, "kernel", "syr2k")
        self._noise_ns: tuple = () if kernel == "syr2k" else (kernel,)
        # Pre-drawn deterministic tables over the full space.
        n = self.space.size
        self._rugged_z = rng_from(
            self.seed, "rugged", *self._noise_ns, task.size
        ).standard_normal(n)
        self._noise_z = rng_from(
            self.seed, "noise", *self._noise_ns, task.size, 0
        ).standard_normal(n)

    # ------------------------------------------------------------------ #
    def _features(self, indices: np.ndarray):
        """Decode indices into model feature arrays."""
        digits = self.space.ordinal_matrix(indices)
        pack_a = digits[:, 0].astype(float)
        pack_b = digits[:, 1].astype(float)
        interchange = digits[:, 2].astype(float)
        ti = self._tiles[digits[:, 3]]
        tj = self._tiles[digits[:, 4]]
        tk = self._tiles[digits[:, 5]]
        return pack_a, pack_b, interchange, ti, tj, tk

    def _base_time(self) -> float:
        """Best-case kernel time from flops and size efficiency."""
        n = self.task.n
        efficiency = n / (n + self.params.efficiency_halfsat)
        return self.task.flops / (self.params.peak_rate * efficiency)

    def _loop_extents(self) -> tuple[float, float, float]:
        """(outer, middle, inner) loop trip extents.

        syr2k iterates ``i`` over N, ``j`` over M, and ``k`` up to ``i``
        (bounded by N).  Kernel subclasses override this.
        """
        return float(self.task.n), float(self.task.m), float(self.task.n)

    def noiseless_runtimes(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Model runtimes *without* measurement noise (ruggedness included).

        This is the machine's "true" mean behaviour; the published dataset
        adds one fixed measurement-noise draw on top (see :meth:`runtimes`).
        """
        p = self.params
        i_ext, j_ext, k_ext = self._loop_extents()
        beta, pack_cost, sigma_rug, _ = p.for_size(self.task.size)

        if indices is None:
            idx = np.arange(self.space.size, dtype=np.int64)
        else:
            idx = np.asarray(indices, dtype=np.int64)
        pack_a, pack_b, interchange, ti, tj, tk = self._features(idx)

        # Tiles cannot exceed the loop extents they block.
        ti_eff = np.minimum(ti, i_ext)
        tj_eff = np.minimum(tj, j_ext)
        tk_eff = np.minimum(tk, k_ext)

        # --- cache pressure -------------------------------------------- #
        working_set = ti_eff * tk_eff + tj_eff * tk_eff + ti_eff * tj_eff
        cache = (
            1.0
            + p.cache_l1_penalty
            * _sigmoid((working_set - p.l1_doubles) / (0.25 * p.l1_doubles))
            + p.cache_l2_penalty
            * _sigmoid((working_set - p.l2_doubles) / (0.25 * p.l2_doubles))
        )

        # --- loop overhead and vectorization --------------------------- #
        loop = (
            (1.0 + p.loop_overhead / ti_eff)
            * (1.0 + p.loop_overhead / tj_eff)
            * (1.0 + 0.5 * p.loop_overhead / tk_eff)
        )
        vec = 1.0 + p.vector_penalty * np.maximum(
            0.0, (p.vector_width - tk_eff) / p.vector_width
        )

        # --- partial-tile remainder waste ------------------------------ #
        def waste(tile: np.ndarray, extent: float) -> np.ndarray:
            return np.ceil(extent / tile) * tile / extent

        remainder = 1.0 + p.remainder_weight * (
            (waste(ti_eff, i_ext) - 1.0)
            + (waste(tj_eff, j_ext) - 1.0)
            + 0.5 * (waste(tk_eff, k_ext) - 1.0)
        ) / 2.5

        # --- interchange ------------------------------------------------ #
        # Swapping i/j trades streaming of the N-extent against the
        # M-extent; its sign flips with tile aspect ratio and the benefit
        # shrinks when the first array is packed (packing normalizes
        # layout).  This interaction is what makes SM rugged for learners.
        aspect = np.tanh(np.log(tj_eff / ti_eff))
        inter_effect = beta * (0.6 + aspect)
        interchange_factor = np.exp(
            interchange * inter_effect * (1.0 - 0.5 * pack_a)
        )

        # --- packing ----------------------------------------------------- #
        spill = _sigmoid((working_set - p.l2_doubles) / (0.25 * p.l2_doubles))
        pack_a_factor = 1.0 + pack_a * (pack_cost - p.pack_benefit * spill)
        pack_b_factor = 1.0 + pack_b * (0.9 * pack_cost - 0.8 * p.pack_benefit * spill)

        # --- deterministic ruggedness ----------------------------------- #
        rugged = np.exp(sigma_rug * self._rugged_z[idx])

        runtime = (
            self._base_time()
            * cache
            * loop
            * vec
            * remainder
            * interchange_factor
            * pack_a_factor
            * pack_b_factor
            * rugged
        )
        return runtime

    def runtimes(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """The dataset's runtimes: noiseless model plus the fixed noise draw.

        This is the deterministic table standing in for the paper's
        measured data; every call returns identical values.
        """
        if indices is None:
            idx = np.arange(self.space.size, dtype=np.int64)
        else:
            idx = np.asarray(indices, dtype=np.int64)
        sigma_noise = self.params.for_size(self.task.size)[3]
        base = self.noiseless_runtimes(idx)
        return base * np.exp(sigma_noise * self._noise_z[idx])

    def runtime(self, config: Mapping[str, object]) -> float:
        """Dataset runtime of a single configuration dict."""
        return float(self.runtimes([self.space.to_index(config)])[0])

    def measure(
        self, indices: Sequence[int], rep: int = 1
    ) -> np.ndarray:
        """Fresh empirical measurements (new noise draw per ``rep``).

        ``rep=0`` is reserved for the dataset table; autotuners evaluating
        configurations "on the machine" should pass ``rep >= 1`` (or vary
        ``rep``) to model run-to-run variance.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if rep == 0:
            return self.runtimes(idx)
        sigma_noise = self.params.for_size(self.task.size)[3]
        z = rng_from(
            self.seed, "noise", *self._noise_ns, self.task.size, int(rep)
        ).standard_normal(self.space.size)
        return self.noiseless_runtimes(idx) * np.exp(sigma_noise * z[idx])

    def __repr__(self) -> str:
        return f"Syr2kPerformanceModel({self.task}, seed={self.seed})"
