"""The Polybench/C ``syr2k`` autotuning task from the paper.

The tunable space matches Section III-A and Figure 1 exactly:

* ``first_array_packed``  — optionally pack (prefetch-copy) array ``A``;
* ``second_array_packed`` — optionally pack array ``B``;
* ``interchange_first_two_loops`` — optionally interchange the ``i``/``j``
  loops of the nest;
* ``outer/middle/inner_loop_tiling_factor`` — independent tile sizes for
  the three loops, 11 choices each.

That yields ``2 * 2 * 2 * 11**3 = 10,648`` unique configurations — the
cardinality the paper reports.  The problem *size* (S, SM, M, ML, L, XL) is
an invariant of each task, not a tunable (the prompt states this verbatim);
the paper evaluates SM (``M=130, N=160``) and XL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.parameters import BooleanParameter, OrdinalParameter
from repro.dataset.space import ConfigSpace
from repro.errors import DatasetError

__all__ = [
    "TILE_SIZES",
    "SIZE_NAMES",
    "SIZE_DIMENSIONS",
    "syr2k_space",
    "Syr2kTask",
]

#: The 11 tile-size choices per loop (powers of two plus the cache-line
#: friendly intermediates that appear in the paper's example prompts:
#: 64, 80, 100, 128 all occur in Figure 1).
TILE_SIZES: tuple[int, ...] = (4, 8, 16, 20, 32, 48, 64, 80, 96, 100, 128)

#: Problem sizes smallest-to-largest, as enumerated in the prompt of Fig. 1.
SIZE_NAMES: tuple[str, ...] = ("S", "SM", "M", "ML", "L", "XL")

#: ``(M, N)`` array dimensions per size.  SM is fixed by the paper
#: (``M=130, N=160``); the others interpolate/extrapolate the Polybench 4.2
#: dataset sizes so that relative magnitudes are realistic.
SIZE_DIMENSIONS: dict[str, tuple[int, int]] = {
    "S": (60, 80),
    "SM": (130, 160),
    "M": (200, 240),
    "ML": (450, 560),
    "L": (1000, 1200),
    "XL": (2000, 2600),
}


def syr2k_space() -> ConfigSpace:
    """Build the 10,648-configuration syr2k tuning space."""
    return ConfigSpace(
        (
            BooleanParameter("first_array_packed"),
            BooleanParameter("second_array_packed"),
            BooleanParameter("interchange_first_two_loops"),
            OrdinalParameter("outer_loop_tiling_factor", TILE_SIZES),
            OrdinalParameter("middle_loop_tiling_factor", TILE_SIZES),
            OrdinalParameter("inner_loop_tiling_factor", TILE_SIZES),
        ),
        name="polybench-syr2k",
    )


@dataclass(frozen=True)
class Syr2kTask:
    """A syr2k tuning task: the shared space plus an invariant size.

    Attributes
    ----------
    size:
        One of :data:`SIZE_NAMES`.
    """

    size: str

    #: Kernel identifier used for prompt dispatch and noise-table seeding.
    kernel = "syr2k"

    def __post_init__(self):
        if self.size not in SIZE_DIMENSIONS:
            raise DatasetError(
                f"unknown syr2k size {self.size!r}; choose from {SIZE_NAMES}"
            )

    @property
    def dimensions(self) -> tuple[int, int]:
        """The ``(M, N)`` array dimensions of this size."""
        return SIZE_DIMENSIONS[self.size]

    @property
    def m(self) -> int:
        """Columns of the rectangular operands ``A`` and ``B``."""
        return self.dimensions[0]

    @property
    def n(self) -> int:
        """Rows of the operands and the order of the symmetric output ``C``."""
        return self.dimensions[1]

    @property
    def flops(self) -> float:
        """Approximate floating-point operations of the kernel.

        ``syr2k`` updates the lower triangle of ``C`` (``N*(N+1)/2``
        entries), each with a length-``M`` fused multiply-add pair, i.e.
        roughly ``3 * M`` flops per entry.
        """
        n, m = self.n, self.m
        return 3.0 * m * n * (n + 1) / 2.0

    def space(self) -> ConfigSpace:
        """The tuning space (identical across sizes)."""
        return syr2k_space()

    def __str__(self) -> str:
        return f"syr2k[{self.size}] (M={self.m}, N={self.n})"
