"""A second Polybench kernel: GEMM, sharing the tuning-space design.

The paper evaluates syr2k only, but a usable autotuning library covers
more than one kernel; GEMM (``C[N,M] += alpha * A[N,K] @ B[K,M]``) is the
canonical companion.  The tunable space mirrors the syr2k one — two
independent packing flags, an optional interchange of the outer loops,
and three tile factors over the same 11 choices — so the prompt pipeline,
encoders and tuners all work unchanged, and cross-kernel transfer
(`repro.tuning.copula`) becomes testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.perfmodel import PerfModelParams, Syr2kPerformanceModel
from repro.dataset.space import ConfigSpace
from repro.dataset.syr2k import SIZE_NAMES, syr2k_space
from repro.errors import DatasetError

__all__ = ["GEMM_DIMENSIONS", "GemmTask", "GemmPerformanceModel", "gemm_space"]

#: ``(M, N, K)`` dimensions per size (N rows, M columns, K depth).
GEMM_DIMENSIONS: dict[str, tuple[int, int, int]] = {
    "S": (70, 90, 60),
    "SM": (140, 170, 120),
    "M": (220, 250, 190),
    "ML": (480, 600, 420),
    "L": (1100, 1300, 950),
    "XL": (2100, 2700, 1900),
}


def gemm_space() -> ConfigSpace:
    """The GEMM tuning space (same structure as syr2k's)."""
    space = syr2k_space()
    return ConfigSpace(space.parameters, name="polybench-gemm")


@dataclass(frozen=True)
class GemmTask:
    """A GEMM tuning task at one problem size."""

    size: str

    #: Kernel identifier used for prompt dispatch.
    kernel = "gemm"

    def __post_init__(self):
        if self.size not in GEMM_DIMENSIONS:
            raise DatasetError(
                f"unknown gemm size {self.size!r}; choose from {SIZE_NAMES}"
            )

    @property
    def dimensions(self) -> tuple[int, int, int]:
        """``(M, N, K)``."""
        return GEMM_DIMENSIONS[self.size]

    @property
    def m(self) -> int:
        return self.dimensions[0]

    @property
    def n(self) -> int:
        return self.dimensions[1]

    @property
    def k(self) -> int:
        return self.dimensions[2]

    @property
    def flops(self) -> float:
        """2 flops (multiply-add) per (i, j, k) triple."""
        m, n, k = self.dimensions
        return 2.0 * m * n * k

    def space(self) -> ConfigSpace:
        return gemm_space()

    def __str__(self) -> str:
        return f"gemm[{self.size}] (M={self.m}, N={self.n}, K={self.k})"


class GemmPerformanceModel(Syr2kPerformanceModel):
    """Analytical GEMM runtime model (rectangular ``k`` extent)."""

    def __init__(
        self,
        task: GemmTask,
        params: PerfModelParams | None = None,
        seed: int = 20250705,
    ):
        if not isinstance(task, GemmTask):
            raise DatasetError("GemmPerformanceModel requires a GemmTask")
        super().__init__(task, params=params, seed=seed)
        self.space = gemm_space()

    def _loop_extents(self) -> tuple[float, float, float]:
        return float(self.task.n), float(self.task.m), float(self.task.k)
