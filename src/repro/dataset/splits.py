"""Sampling utilities for the experiment grid.

Three samplers mirror Section III-B of the paper:

* :func:`train_test_split` — the 80/20 split behind the XGBoost baseline
  (Table I uses up to "8519 (80% Train)" examples);
* :func:`disjoint_example_sets` — "five disjoint datasets with the same
  number of in-context learning examples to limit the possibility of poor
  examples biasing the results", plus a query row disjoint from all of them;
* :func:`curated_neighborhood` — the "minimal configuration-space editing
  distance" setting where all ICL examples and the query are nearly
  identical configurations.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.generate import PerformanceDataset
from repro.errors import DatasetError
from repro.utils.rng import rng_from

__all__ = ["train_test_split", "disjoint_example_sets", "curated_neighborhood"]


def train_test_split(
    dataset: PerformanceDataset,
    train_fraction: float = 0.8,
    seed: int = 0,
) -> tuple[PerformanceDataset, PerformanceDataset]:
    """Split a dataset into disjoint train/test partitions.

    Parameters
    ----------
    train_fraction:
        Fraction (in (0, 1)) of rows assigned to the training partition.
    seed:
        Split permutation seed.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    n = len(dataset)
    if n < 2:
        raise DatasetError("need at least two rows to split")
    n_train = int(round(n * train_fraction))
    n_train = min(max(n_train, 1), n - 1)
    perm = rng_from(seed, "train-test-split", n).permutation(n)
    return dataset.subset(perm[:n_train]), dataset.subset(perm[n_train:])


def disjoint_example_sets(
    dataset: PerformanceDataset,
    n_sets: int,
    set_size: int,
    seed: int = 0,
    n_queries: int = 1,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Draw ``n_sets`` pairwise-disjoint row sets plus disjoint query rows.

    Returns
    -------
    (sets, query_rows):
        ``sets`` is a list of ``n_sets`` row arrays of length ``set_size``;
        ``query_rows`` holds ``n_queries`` rows disjoint from all sets.

    Raises
    ------
    DatasetError
        If the dataset is too small to supply disjoint material.
    """
    if n_sets < 1 or set_size < 1 or n_queries < 1:
        raise DatasetError("n_sets, set_size and n_queries must all be >= 1")
    need = n_sets * set_size + n_queries
    n = len(dataset)
    if need > n:
        raise DatasetError(
            f"need {need} rows for {n_sets} disjoint sets of {set_size} "
            f"plus {n_queries} queries, but dataset has only {n}"
        )
    perm = rng_from(seed, "disjoint-sets", n_sets, set_size).permutation(n)
    sets = [
        perm[k * set_size : (k + 1) * set_size].copy() for k in range(n_sets)
    ]
    start = n_sets * set_size
    query_rows = perm[start : start + n_queries].copy()
    return sets, query_rows


def curated_neighborhood(
    dataset: PerformanceDataset,
    set_size: int,
    seed: int = 0,
) -> tuple[np.ndarray, int]:
    """Draw a query plus the ``set_size`` nearest configurations to it.

    Implements the paper's curated setting: "all examples and the
    prediction task have minimal configuration-space editing distance".
    A random query row is chosen, then the examples are the rows whose
    configurations have the smallest weighted edit distance to the query
    (ties broken deterministically by row order).

    Returns
    -------
    (example_rows, query_row)
    """
    n = len(dataset)
    if set_size < 1:
        raise DatasetError("set_size must be >= 1")
    if set_size + 1 > n:
        raise DatasetError(
            f"need {set_size + 1} rows for a curated neighbourhood, "
            f"dataset has {n}"
        )
    rng = rng_from(seed, "curated", set_size)
    query_row = int(rng.integers(n))
    query_index = int(dataset.indices[query_row])
    dist = dataset.space.pairwise_weighted_distances(
        query_index, dataset.indices
    )
    dist[query_row] = np.inf  # the query must not be its own example
    # stable argsort => deterministic tie-breaking by row position
    order = np.argsort(dist, kind="stable")
    return order[:set_size].copy(), query_row
