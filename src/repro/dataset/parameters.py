"""Tunable-parameter types for autotuning configuration spaces.

A :class:`Parameter` is a named, finite, *ordered* domain of values.  The
ordering gives every parameter an integer codomain ``0..cardinality-1`` used
for the mixed-radix index bijection in :class:`repro.dataset.space.ConfigSpace`
and for normalized distances between values (used by the minimal-edit-distance
curation the paper describes in Section III-B).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import InvalidConfigurationError

__all__ = [
    "Parameter",
    "CategoricalParameter",
    "BooleanParameter",
    "OrdinalParameter",
]


class Parameter:
    """Base class: a named, finite, ordered value domain.

    Parameters
    ----------
    name:
        Identifier used in configurations and natural-language prompts.
    values:
        The ordered domain.  Values must be hashable and distinct.
    """

    #: Set by subclasses: whether inter-value distance reflects magnitude.
    is_numeric = False

    def __init__(self, name: str, values: Sequence[object]):
        if not name or not isinstance(name, str):
            raise ValueError(f"parameter name must be a non-empty str, got {name!r}")
        vals = tuple(values)
        if len(vals) == 0:
            raise ValueError(f"parameter {name!r} must have at least one value")
        if len(set(vals)) != len(vals):
            raise ValueError(f"parameter {name!r} has duplicate values")
        self.name = name
        self.values = vals
        self._index = {v: i for i, v in enumerate(vals)}

    @property
    def cardinality(self) -> int:
        """Number of values in the domain."""
        return len(self.values)

    def index_of(self, value: object) -> int:
        """Return the ordinal index of ``value`` in the domain.

        Raises
        ------
        InvalidConfigurationError
            If ``value`` is not in the domain.
        """
        try:
            return self._index[value]
        except (KeyError, TypeError):
            raise InvalidConfigurationError(
                f"value {value!r} is not in the domain of parameter "
                f"{self.name!r} (domain: {self.values})"
            ) from None

    def value_at(self, index: int) -> object:
        """Return the value at ordinal ``index``."""
        if not 0 <= index < len(self.values):
            raise InvalidConfigurationError(
                f"index {index} out of range for parameter {self.name!r} "
                f"with cardinality {self.cardinality}"
            )
        return self.values[index]

    def contains(self, value: object) -> bool:
        """Whether ``value`` is in the domain."""
        try:
            return value in self._index
        except TypeError:
            return False

    def distance(self, a: object, b: object) -> float:
        """Normalized distance in [0, 1] between two domain values.

        For plain categorical parameters this is 0/1 (same/different); the
        ordinal subclass refines it to normalized rank distance.
        """
        ia, ib = self.index_of(a), self.index_of(b)
        return 0.0 if ia == ib else 1.0

    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {list(self.values)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.name == other.name
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name, self.values))


class CategoricalParameter(Parameter):
    """An unordered finite domain (order used only for indexing)."""


class BooleanParameter(Parameter):
    """The two-valued domain ``(False, True)``."""

    def __init__(self, name: str):
        super().__init__(name, (False, True))


class OrdinalParameter(Parameter):
    """A numerically ordered domain (e.g. tile sizes).

    Values must be real numbers sorted strictly ascending; distance is
    normalized rank distance, so neighbouring tile sizes are "close" for the
    purposes of edit-distance curation even when their magnitudes differ.
    """

    is_numeric = True

    def __init__(self, name: str, values: Sequence[float]):
        vals = tuple(values)
        if any(not isinstance(v, (int, float)) or isinstance(v, bool) for v in vals):
            raise ValueError(f"ordinal parameter {name!r} requires numeric values")
        if list(vals) != sorted(vals):
            raise ValueError(f"ordinal parameter {name!r} values must be ascending")
        super().__init__(name, vals)

    def distance(self, a: object, b: object) -> float:
        ia, ib = self.index_of(a), self.index_of(b)
        if self.cardinality == 1:
            return 0.0
        return abs(ia - ib) / (self.cardinality - 1)
