"""Configuration-space and performance-dataset substrate.

This package reconstructs the data side of the paper's experiments: the
Polybench/C ``syr2k`` loop-nest configuration space (2 x 2 x 2 x 11^3 =
10,648 configurations), an analytical performance model standing in for the
paper's empirical measurements (see DESIGN.md, substitutions), dataset
generation and CSV I/O, and the sampling utilities the experiment grid
needs (train/test splits, disjoint ICL example sets, minimal-edit-distance
curated neighbourhoods).
"""

from repro.dataset.parameters import (
    BooleanParameter,
    CategoricalParameter,
    OrdinalParameter,
    Parameter,
)
from repro.dataset.space import ConfigSpace, Configuration
from repro.dataset.syr2k import (
    SIZE_DIMENSIONS,
    SIZE_NAMES,
    TILE_SIZES,
    Syr2kTask,
    syr2k_space,
)
from repro.dataset.perfmodel import PerfModelParams, Syr2kPerformanceModel
from repro.dataset.gemm import (
    GEMM_DIMENSIONS,
    GemmPerformanceModel,
    GemmTask,
    gemm_space,
)
from repro.dataset.generate import PerformanceDataset, generate_dataset
from repro.dataset.splits import (
    curated_neighborhood,
    disjoint_example_sets,
    train_test_split,
)
from repro.dataset.io import load_dataset_csv, save_dataset_csv

__all__ = [
    "Parameter",
    "BooleanParameter",
    "CategoricalParameter",
    "OrdinalParameter",
    "ConfigSpace",
    "Configuration",
    "SIZE_NAMES",
    "SIZE_DIMENSIONS",
    "TILE_SIZES",
    "Syr2kTask",
    "syr2k_space",
    "PerfModelParams",
    "Syr2kPerformanceModel",
    "GEMM_DIMENSIONS",
    "GemmTask",
    "GemmPerformanceModel",
    "gemm_space",
    "PerformanceDataset",
    "generate_dataset",
    "train_test_split",
    "disjoint_example_sets",
    "curated_neighborhood",
    "load_dataset_csv",
    "save_dataset_csv",
]
