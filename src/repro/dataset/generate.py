"""Dataset generation: the fixed (configuration, runtime) table per task.

:func:`generate_dataset` evaluates the analytical performance model over the
whole configuration space (or a subset) and returns a
:class:`PerformanceDataset` — the in-memory analogue of the CSV files the
paper's experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.dataset.perfmodel import PerfModelParams, Syr2kPerformanceModel
from repro.dataset.space import ConfigSpace, Configuration
from repro.dataset.syr2k import Syr2kTask
from repro.errors import DatasetError

__all__ = ["PerformanceDataset", "generate_dataset"]


@dataclass
class PerformanceDataset:
    """A fixed table of configurations and their measured runtimes.

    Attributes
    ----------
    space:
        The configuration space the rows are drawn from.
    size:
        Problem-size label (invariant across rows; ``"SM"``/``"XL"`` in the
        paper's experiments).
    indices:
        Configuration indices into ``space`` of each row.
    runtimes:
        Measured runtime (seconds) of each row; lower is better.
    """

    space: ConfigSpace
    size: str
    indices: np.ndarray
    runtimes: np.ndarray

    def __post_init__(self):
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.runtimes = np.asarray(self.runtimes, dtype=float)
        if self.indices.ndim != 1 or self.runtimes.ndim != 1:
            raise DatasetError("indices and runtimes must be 1-D")
        if self.indices.shape != self.runtimes.shape:
            raise DatasetError(
                f"indices ({self.indices.shape[0]}) and runtimes "
                f"({self.runtimes.shape[0]}) differ in length"
            )
        if len(np.unique(self.indices)) != len(self.indices):
            raise DatasetError("dataset rows must be unique configurations")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.space.size
        ):
            raise DatasetError("configuration index out of range for space")
        if np.any(~np.isfinite(self.runtimes)) or np.any(self.runtimes <= 0):
            raise DatasetError("runtimes must be finite and positive")

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def __iter__(self) -> Iterator[tuple[Configuration, float]]:
        for i in range(len(self)):
            yield self.config(i), float(self.runtimes[i])

    def config(self, row: int) -> Configuration:
        """The configuration dict of table row ``row``."""
        return self.space.from_index(int(self.indices[row]))

    def subset(self, rows: Sequence[int]) -> "PerformanceDataset":
        """A new dataset containing only ``rows`` (positions, not indices)."""
        rows = np.asarray(rows, dtype=np.int64)
        return PerformanceDataset(
            space=self.space,
            size=self.size,
            indices=self.indices[rows],
            runtimes=self.runtimes[rows],
        )

    def row_of_index(self, config_index: int) -> int:
        """The table row holding configuration ``config_index``.

        Raises
        ------
        DatasetError
            If the configuration is not in the table.
        """
        rows = np.nonzero(self.indices == int(config_index))[0]
        if rows.size == 0:
            raise DatasetError(
                f"configuration index {config_index} not present in dataset"
            )
        return int(rows[0])

    @property
    def best_row(self) -> int:
        """Row of the fastest configuration."""
        if len(self) == 0:
            raise DatasetError("dataset is empty")
        return int(np.argmin(self.runtimes))

    @property
    def best_runtime(self) -> float:
        """The minimal runtime in the table."""
        return float(self.runtimes[self.best_row])

    def ordinal_features(self, rows: Sequence[int] | None = None) -> np.ndarray:
        """Per-parameter ordinal digits for the given rows (all when None)."""
        idx = self.indices if rows is None else self.indices[np.asarray(rows)]
        return self.space.ordinal_matrix(idx)

    def summary(self) -> dict:
        """Descriptive statistics used by reports and examples."""
        return {
            "size": self.size,
            "rows": len(self),
            "runtime_min": float(self.runtimes.min()),
            "runtime_median": float(np.median(self.runtimes)),
            "runtime_max": float(self.runtimes.max()),
        }


def generate_dataset(
    task,
    params: PerfModelParams | None = None,
    seed: int = 20250705,
    indices: Sequence[int] | None = None,
) -> PerformanceDataset:
    """Generate the fixed performance table for a kernel task.

    Parameters
    ----------
    task:
        A :class:`Syr2kTask`, a :class:`repro.dataset.gemm.GemmTask`, or a
        size label (``"SM"``, ``"XL"``, ...) meaning syr2k at that size.
    params, seed:
        Forwarded to the performance model; defaults give the calibrated
        tables used throughout the benchmarks.
    indices:
        Optionally restrict to a subset of configuration indices (the full
        10,648-row table is generated when omitted).
    """
    if isinstance(task, str):
        task = Syr2kTask(task)
    if getattr(task, "kernel", "syr2k") == "gemm":
        from repro.dataset.gemm import GemmPerformanceModel

        model = GemmPerformanceModel(task, params=params, seed=seed)
    else:
        model = Syr2kPerformanceModel(task, params=params, seed=seed)
    if indices is None:
        idx = np.arange(model.space.size, dtype=np.int64)
    else:
        idx = np.asarray(indices, dtype=np.int64)
    return PerformanceDataset(
        space=model.space,
        size=task.size,
        indices=idx,
        runtimes=model.runtimes(idx),
    )
