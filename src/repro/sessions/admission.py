"""Admission control: per-tenant quotas, token buckets, load shedding.

Every dispatch the :class:`~repro.sessions.manager.SessionManager` wants
to make passes through :meth:`AdmissionController.admit` first.  Denials
come in two flavours:

* **permanent** (``retryable=False``): the tenant's lifetime evaluation
  quota is exhausted — the campaign can never make further progress and
  the manager fails it.
* **retryable** (``retryable=True``): rate limit, concurrency cap, or
  service saturation.  The manager skips the session this scheduler turn
  and tries again later; the session's cached proposal guarantees the
  retry submits the identical configuration.

Check ordering matters: the rate-limit token is consumed *last*, so a
dispatch denied for saturation or concurrency does not burn the tenant's
token budget.  Conversely :meth:`refund` returns quota/concurrency (not
tokens) when an admitted dispatch is subsequently shed by the service —
tokens model offered load, which the shed attempt genuinely was.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import SessionError

__all__ = [
    "TokenBucket",
    "TenantQuota",
    "AdmissionDecision",
    "AdmissionController",
]


class TokenBucket:
    """Classic token-bucket rate limiter with an injectable clock.

    The bucket holds up to ``burst`` tokens and refills continuously at
    ``rate_per_s``.  :meth:`try_take` consumes one token when available.
    The clock is injectable so tests (and deterministic chaos drills)
    can drive time explicitly.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0:
            raise SessionError(f"rate_per_s must be positive, got {rate_per_s}")
        if burst < 1:
            raise SessionError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_evaluations`` is a lifetime cap across all of the tenant's
    sessions (None = unlimited); ``max_concurrent`` bounds in-flight
    evaluations; ``rate_per_s`` (None = unlimited) adds a token-bucket
    rate limit with capacity ``burst``.
    """

    max_evaluations: int | None = None
    max_concurrent: int = 4
    rate_per_s: float | None = None
    burst: float = 8.0

    def __post_init__(self):
        if self.max_evaluations is not None and self.max_evaluations < 0:
            raise SessionError(
                f"max_evaluations must be >= 0, got {self.max_evaluations}"
            )
        if self.max_concurrent < 1:
            raise SessionError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise SessionError(
                f"rate_per_s must be positive, got {self.rate_per_s}"
            )


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    reason: str
    retryable: bool = False

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Gate dispatches by tenant quota, rate limit, and service load.

    Parameters
    ----------
    quotas:
        Per-tenant :class:`TenantQuota` overrides.
    default_quota:
        Quota applied to tenants without an explicit entry.
    max_inflight:
        Global in-flight ceiling, the load-shedding threshold: admission
        returns a retryable ``"saturated"`` denial once this many
        admitted evaluations are outstanding.  Size it to the service's
        queue capacity so the controller sheds *before* the service
        raises ``ServiceOverloadedError``.
    clock:
        Injectable time source shared by all token buckets.
    """

    def __init__(
        self,
        quotas: Mapping[str, TenantQuota] | None = None,
        *,
        default_quota: TenantQuota | None = None,
        max_inflight: int = 32,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 1:
            raise SessionError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._quotas = dict(quotas or {})
        self._default = default_quota or TenantQuota()
        self.max_inflight = max_inflight
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self._inflight: dict[str, int] = {}
        self.n_shed = 0
        self.n_denied: dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default)

    def _bucket_for(self, tenant: str) -> TokenBucket | None:
        quota = self.quota_for(tenant)
        if quota.rate_per_s is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(quota.rate_per_s, quota.burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    @property
    def total_inflight(self) -> int:
        return sum(self._inflight.values())

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def admitted(self, tenant: str) -> int:
        """Lifetime admitted (non-refunded) evaluations for ``tenant``."""
        return self._admitted.get(tenant, 0)

    def _deny(self, reason: str, *, retryable: bool) -> AdmissionDecision:
        self.n_denied[reason] = self.n_denied.get(reason, 0) + 1
        if reason == "saturated":
            self.n_shed += 1
        return AdmissionDecision(False, reason, retryable=retryable)

    def admit(self, tenant: str) -> AdmissionDecision:
        """Decide one evaluation dispatch for ``tenant``.

        Order: lifetime quota (permanent) → global saturation (shed) →
        per-tenant concurrency → rate limit.  Only a fully admitted
        dispatch consumes a rate token or counts against quota.
        """
        quota = self.quota_for(tenant)
        if (
            quota.max_evaluations is not None
            and self._admitted.get(tenant, 0) >= quota.max_evaluations
        ):
            return self._deny("quota", retryable=False)
        if self.total_inflight >= self.max_inflight:
            return self._deny("saturated", retryable=True)
        if self._inflight.get(tenant, 0) >= quota.max_concurrent:
            return self._deny("concurrency", retryable=True)
        bucket = self._bucket_for(tenant)
        if bucket is not None and not bucket.try_take():
            return self._deny("rate", retryable=True)
        self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        return AdmissionDecision(True, "admitted")

    def complete(self, tenant: str) -> None:
        """Mark one admitted evaluation finished (success or failure)."""
        current = self._inflight.get(tenant, 0)
        if current <= 0:
            raise SessionError(
                f"complete() without matching admit() for tenant {tenant!r}"
            )
        self._inflight[tenant] = current - 1

    def refund(self, tenant: str) -> None:
        """Return quota + concurrency for an admitted-then-shed dispatch.

        Called when the service rejected a dispatch the controller had
        already admitted (queue filled in between): the evaluation never
        ran, so it must not count against the tenant's lifetime quota.
        The rate token is deliberately not returned.
        """
        self.complete(tenant)
        current = self._admitted.get(tenant, 0)
        if current <= 0:
            raise SessionError(
                f"refund() without matching admit() for tenant {tenant!r}"
            )
        self._admitted[tenant] = current - 1

    def snapshot(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "total_inflight": self.total_inflight,
            "inflight": dict(self._inflight),
            "admitted": dict(self._admitted),
            "shed": self.n_shed,
            "denied": dict(self.n_denied),
        }
