"""Multi-tenant autotuning-as-a-service: concurrent resumable campaigns.

The session layer closes the loop between :mod:`repro.tuning` (single
synchronous search loops) and :mod:`repro.serve` (a batched, cached,
resilient surrogate service): a :class:`SessionManager` hosts many
stateful :class:`TuningSession` campaigns — each a tenant's tuner,
budget, priority class, and optional deadline — and drives their
evaluations concurrently through the shared service with

* admission control (:class:`AdmissionController`): per-tenant lifetime
  quotas and token-bucket rate limits, plus load shedding when the
  service saturates;
* fair-share scheduling (:class:`DeficitRoundRobin`): priority-weighted
  deficit round robin, so one tenant's huge campaign cannot starve the
  others (fairness measured by :func:`jains_index`);
* crash-resume: an fsynced JSONL event journal
  (:mod:`repro.sessions.events`) through :mod:`repro.core.storage`,
  replayed on restart to the exact
  :class:`~repro.tuning.base.TuningHistory` the killed run had durably
  completed;
* observability: :func:`collect_session_metrics` and ``sessions.*``
  tracer spans.
"""

from repro.sessions.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantQuota,
    TokenBucket,
)
from repro.sessions.events import (
    EVENT_KIND,
    SessionEventLog,
    eval_event,
    register_event,
    replay_log,
    state_event,
)
from repro.sessions.manager import SessionManager
from repro.sessions.metrics import collect_session_metrics
from repro.sessions.scheduler import DEFICIT_CAP, DeficitRoundRobin
from repro.sessions.session import (
    DONE,
    FAILED,
    PAUSED,
    PENDING,
    RUNNING,
    SESSION_STATES,
    TERMINAL_STATES,
    SessionRegistry,
    TuningSession,
    jains_index,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantQuota",
    "TokenBucket",
    "DeficitRoundRobin",
    "DEFICIT_CAP",
    "SessionManager",
    "SessionRegistry",
    "TuningSession",
    "SessionEventLog",
    "EVENT_KIND",
    "register_event",
    "state_event",
    "eval_event",
    "replay_log",
    "collect_session_metrics",
    "jains_index",
    "PENDING",
    "RUNNING",
    "PAUSED",
    "DONE",
    "FAILED",
    "SESSION_STATES",
    "TERMINAL_STATES",
]
