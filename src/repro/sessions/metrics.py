"""Map a session manager's snapshot onto the obs metrics vocabulary.

The companion of :func:`repro.obs.metrics.collect_service_metrics`, one
layer up: per-tenant throughput and completed-evaluation counters, the
shed/denied breakdown from admission control, session-state gauges, and
the fairness gauge (Jain's index) the scheduler is graded on.  Pass the
same registry to both collectors for a single unified dashboard of the
whole serving stack.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["collect_session_metrics"]


def collect_session_metrics(
    manager, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Freeze a :class:`~repro.sessions.manager.SessionManager`'s state
    into labelled instruments.

    Idempotent, like the service collector: counters are set to the
    snapshot's absolute totals, so the telemetry sampler can scrape the
    same registry every interval without compounding.
    """
    registry = registry if registry is not None else MetricsRegistry()
    snap = manager.snapshot()

    for tenant, agg in snap["tenants"].items():
        registry.counter("sessions.evaluations", tenant=tenant).set_absolute(
            agg["completed_evaluations"]
        )
        registry.counter("sessions.shed", tenant=tenant).set_absolute(
            agg["shed"]
        )
        registry.counter("sessions.eval_errors", tenant=tenant).set_absolute(
            agg["eval_errors"]
        )
        registry.gauge("sessions.throughput_eps", tenant=tenant).set(
            agg["throughput_eps"]
        )
    for state, count in snap["states"].items():
        registry.gauge("sessions.sessions", state=state).set(count)
    for reason, count in snap["admission"]["denied"].items():
        registry.counter("sessions.denied", reason=reason).set_absolute(count)
    registry.counter("sessions.shed_total").set_absolute(
        snap["admission"]["shed"]
    )
    registry.gauge("sessions.inflight").set(
        snap["admission"]["total_inflight"]
    )
    registry.gauge("sessions.fairness_jain").set(snap["fairness_jain"])

    # Journal durability: every resume should be a clean one; surface
    # the storage-integrity counters beside the session dashboard.
    from repro.obs.metrics import collect_storage_metrics

    collect_storage_metrics(registry)
    return registry
