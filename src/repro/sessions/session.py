"""Stateful tuning campaigns: lifecycle, per-tenant identity, registry.

A :class:`TuningSession` is one autotuning campaign owned by a tenant: a
tuner, an evaluation budget, a priority class, and an optional deadline,
plus the campaign's accumulated :class:`~repro.tuning.base.TuningHistory`.
Sessions move through the lifecycle::

    PENDING -> RUNNING <-> PAUSED
                  |  \\
                  v   v
               FAILED  DONE

The session itself never talks to the serving stack — the
:class:`~repro.sessions.manager.SessionManager` proposes/evaluates on its
behalf — so the same session semantics hold under any execution backend.
Proposals are cached on the session until an evaluation is *recorded*:
a load-shed or retried dispatch re-submits the identical configuration
instead of burning a fresh tuner draw, which is what keeps campaigns
deterministic under admission-control backpressure.

:func:`jains_index` is the fairness measure the scheduler is graded on:
``(sum x)^2 / (n * sum x^2)`` over per-tenant completed-evaluation
counts — 1.0 for a perfectly even split, ``1/n`` for a single tenant
monopolizing the service.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dataset.perfmodel import Syr2kPerformanceModel
from repro.errors import SessionError, TuningError
from repro.tuning.base import EvaluationBudget, Tuner, TuningHistory

__all__ = [
    "PENDING",
    "RUNNING",
    "PAUSED",
    "DONE",
    "FAILED",
    "SESSION_STATES",
    "TERMINAL_STATES",
    "TuningSession",
    "SessionRegistry",
    "jains_index",
]

PENDING = "PENDING"
RUNNING = "RUNNING"
PAUSED = "PAUSED"
DONE = "DONE"
FAILED = "FAILED"

SESSION_STATES = (PENDING, RUNNING, PAUSED, DONE, FAILED)
TERMINAL_STATES = (DONE, FAILED)


def jains_index(counts: Iterable[float]) -> float:
    """Jain's fairness index over per-tenant allocation counts.

    Returns 1.0 for an empty or all-zero allocation (nothing was unfair
    about serving nobody).
    """
    values = [float(c) for c in counts]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


class TuningSession:
    """One tenant-owned autotuning campaign.

    Parameters
    ----------
    session_id:
        Unique identifier within a :class:`SessionRegistry`.
    tenant:
        Owning tenant; quotas, rate limits, and fairness are per-tenant.
    tuner:
        The proposal strategy.  Its space must match the model's.
    model:
        The performance model "machine" evaluations are measured on.
        Measurements use ``rep = step + 1`` exactly like
        :func:`repro.tuning.harness.run_tuner`, so a session's final
        history is bit-identical to a sequential ``run_tuner`` run of
        the same tuner/model/budget.
    budget:
        Evaluation budget (int or :class:`EvaluationBudget`).
    priority:
        Fair-share weight (>= 1); the deficit-round-robin scheduler
        serves tenants proportionally to it.
    deadline_s:
        Optional wall-clock deadline relative to the manager run start;
        expiry fails the campaign with its partial history intact.
    seed:
        Root of the per-evaluation service-request seeds.
    context_examples:
        How many recent observations ride along as ICL examples in each
        surrogate request.
    """

    def __init__(
        self,
        session_id: str,
        tenant: str,
        tuner: Tuner,
        model: Syr2kPerformanceModel,
        budget: EvaluationBudget | int,
        *,
        priority: int = 1,
        deadline_s: float | None = None,
        seed: int = 0,
        context_examples: int = 8,
    ):
        if not session_id:
            raise SessionError("session_id must be non-empty")
        if not tenant:
            raise SessionError("tenant must be non-empty")
        if isinstance(budget, int):
            budget = EvaluationBudget(budget)
        if priority < 1:
            raise SessionError(f"priority must be >= 1, got {priority}")
        if deadline_s is not None and deadline_s <= 0:
            raise SessionError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        if context_examples < 1:
            raise SessionError(
                f"context_examples must be >= 1, got {context_examples}"
            )
        if tuner.space.size != model.space.size:
            raise SessionError(
                f"session {session_id!r}: tuner and model spaces differ"
            )
        self.session_id = session_id
        self.tenant = tenant
        self.tuner = tuner
        self.model = model
        self.budget = budget
        self.priority = int(priority)
        self.deadline_s = deadline_s
        self.seed = int(seed)
        self.context_examples = int(context_examples)

        self.state = PENDING
        self.failure_reason: str | None = None
        self.history = TuningHistory()
        self.inflight = False
        #: Dispatches refused by service backpressure (queue full).
        self.n_shed = 0
        #: Admission-controller denials (rate/concurrency/saturation).
        self.n_denied = 0
        #: Service-side evaluation attempts that raised and were retried.
        self.n_eval_errors = 0
        self._pending_proposal: int | None = None
        self._consecutive_errors = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def step(self) -> int:
        """Next evaluation ordinal (== completed evaluations so far)."""
        return len(self.history)

    @property
    def remaining(self) -> int:
        return self.budget.n_evaluations - len(self.history)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def __repr__(self) -> str:
        return (
            f"TuningSession({self.session_id!r}, tenant={self.tenant!r}, "
            f"state={self.state}, {self.step}/{self.budget.n_evaluations})"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """PENDING -> RUNNING; resets the tuner for a fresh campaign.

        A session resumed from an event log already holds replayed
        history — the tuner was fast-forwarded during replay, so start
        skips the reset in that case.
        """
        if self.state != PENDING:
            raise SessionError(
                f"cannot start session {self.session_id!r} from {self.state}"
            )
        if len(self.history) == 0:
            self.tuner.reset()
        self.state = RUNNING

    def pause(self) -> None:
        if self.state != RUNNING:
            raise SessionError(
                f"cannot pause session {self.session_id!r} from {self.state}"
            )
        self.state = PAUSED

    def unpause(self) -> None:
        if self.state != PAUSED:
            raise SessionError(
                f"cannot unpause session {self.session_id!r} "
                f"from {self.state}"
            )
        self.state = RUNNING

    def fail(self, reason: str) -> None:
        if self.terminal:
            raise SessionError(
                f"cannot fail session {self.session_id!r} from {self.state}"
            )
        self.state = FAILED
        self.failure_reason = reason

    # ------------------------------------------------------------------ #
    # Proposal / evaluation
    # ------------------------------------------------------------------ #
    def _propose(self) -> int:
        try:
            index = self.tuner.propose(self.history)
        except TuningError as exc:
            raise TuningError(
                f"session {self.session_id!r}: tuner {self.tuner.name!r} "
                f"propose() failed at evaluation {self.step}: {exc}"
            ) from exc
        except Exception as exc:
            raise TuningError(
                f"session {self.session_id!r}: tuner {self.tuner.name!r} "
                f"propose() raised {type(exc).__name__} at evaluation "
                f"{self.step}: {exc}"
            ) from exc
        if not 0 <= index < self.model.space.size:
            raise TuningError(
                f"session {self.session_id!r}: tuner {self.tuner.name!r} "
                f"proposed out-of-range index {index}"
            )
        return int(index)

    def next_proposal(self) -> int:
        """The configuration index to evaluate next (cached until recorded).

        The cache is what makes load shedding harmless: a dispatch that
        was shed or errored re-submits the *same* proposal, so the
        campaign's trajectory is independent of backpressure timing.
        """
        if self.remaining <= 0:
            raise SessionError(
                f"session {self.session_id!r} has no budget left"
            )
        if self._pending_proposal is None:
            self._pending_proposal = self._propose()
        return self._pending_proposal

    def record(self, index: int, runtime: float) -> None:
        """Record one completed evaluation; DONE once the budget is spent."""
        if self.state not in (RUNNING, PAUSED):
            raise SessionError(
                f"cannot record onto session {self.session_id!r} "
                f"in state {self.state}"
            )
        self.history.record(index, runtime)
        self._pending_proposal = None
        self._consecutive_errors = 0
        if self.remaining <= 0:
            self.state = DONE

    def note_eval_error(self, max_attempts: int) -> bool:
        """Count one failed evaluation attempt; True if the session should
        fail (``max_attempts`` consecutive errors without a completion)."""
        self.n_eval_errors += 1
        self._consecutive_errors += 1
        return self._consecutive_errors >= max_attempts

    def replay(self, evals: list[tuple[int, int, float]]) -> None:
        """Fast-forward a PENDING session from logged ``(step, index,
        runtime)`` evaluations.

        The tuner is reset and re-proposes every replayed step against
        the growing history, so its internal RNG/search state lands
        exactly where the killed run left it; a proposal that diverges
        from the log means the log belongs to a different campaign and
        raises.  Steps must be the contiguous prefix 0..k.
        """
        if self.state != PENDING or len(self.history) > 0:
            raise SessionError(
                f"can only replay into a fresh PENDING session, "
                f"not {self.session_id!r} in {self.state}"
            )
        self.tuner.reset()
        for expected_step, (step, index, runtime) in enumerate(evals):
            if step != expected_step:
                raise SessionError(
                    f"session {self.session_id!r}: event log has gap at "
                    f"step {expected_step} (found step {step})"
                )
            proposed = self._propose()
            if proposed != index:
                raise SessionError(
                    f"session {self.session_id!r}: event log diverges at "
                    f"step {step} (log index {index}, tuner re-proposed "
                    f"{proposed})"
                )
            self.history.record(index, runtime)
        self._pending_proposal = None
        if self.remaining <= 0:
            self.state = DONE


class SessionRegistry:
    """All sessions a manager hosts, with per-tenant aggregate snapshots."""

    def __init__(self):
        self._sessions: dict[str, TuningSession] = {}

    def add(self, session: TuningSession) -> None:
        if session.session_id in self._sessions:
            raise SessionError(
                f"duplicate session id {session.session_id!r}"
            )
        self._sessions[session.session_id] = session

    def get(self, session_id: str) -> TuningSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def __iter__(self) -> Iterator[TuningSession]:
        return iter(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    def by_state(self, state: str) -> list[TuningSession]:
        return [s for s in self if s.state == state]

    def active(self) -> list[TuningSession]:
        """Sessions that are not yet DONE/FAILED."""
        return [s for s in self if not s.terminal]

    def tenants(self) -> list[str]:
        seen: dict[str, None] = {}
        for session in self:
            seen.setdefault(session.tenant, None)
        return list(seen)

    def fairness(self) -> float:
        """Jain's index over per-tenant completed-evaluation counts."""
        per_tenant: dict[str, int] = {}
        for session in self:
            per_tenant[session.tenant] = (
                per_tenant.get(session.tenant, 0) + len(session.history)
            )
        return jains_index(per_tenant.values())

    def snapshot(self, elapsed_s: float | None = None) -> dict:
        """JSON-friendly point-in-time view (the obs metrics source).

        Per-tenant: completed evaluations, shed/denied/error counts, and
        throughput (evaluations/s over ``elapsed_s`` when given).  Plus
        session-state counts and the fairness gauge.
        """
        tenants: dict[str, dict] = {}
        states = {state: 0 for state in SESSION_STATES}
        for session in self:
            states[session.state] += 1
            agg = tenants.setdefault(
                session.tenant,
                {
                    "sessions": 0,
                    "completed_evaluations": 0,
                    "shed": 0,
                    "denied": 0,
                    "eval_errors": 0,
                    "throughput_eps": 0.0,
                },
            )
            agg["sessions"] += 1
            agg["completed_evaluations"] += len(session.history)
            agg["shed"] += session.n_shed
            agg["denied"] += session.n_denied
            agg["eval_errors"] += session.n_eval_errors
        if elapsed_s and elapsed_s > 0:
            for agg in tenants.values():
                agg["throughput_eps"] = (
                    agg["completed_evaluations"] / elapsed_s
                )
        return {
            "tenants": tenants,
            "states": states,
            "fairness_jain": self.fairness(),
            "elapsed_s": elapsed_s,
        }
