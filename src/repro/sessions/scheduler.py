"""Deficit-round-robin fair-share scheduling with priority classes.

Classic DRR (Shreedhar & Varghese, 1996) serves flows from a rotating
queue, crediting each flow a quantum per visit and serving while its
deficit covers the next packet.  Here every "packet" is one evaluation
dispatch of unit cost, and the quantum is weighted by the session's
priority class.  Credits are normalised by the *maximum* active weight so
the highest-priority session earns exactly 1.0 credit per rotation (one
dispatch per turn) while a weight-1 session among weight-4 peers earns
0.25 per rotation and is served every fourth turn — long-run throughput
proportional to weight, which is the fairness property the Jain's-index
tests pin.

The deficit is capped at :data:`DEFICIT_CAP` credits so a session that
sat ineligible (paused, rate-limited, at its concurrency cap) for many
rotations cannot return and monopolise the service with a giant burst.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SessionError

__all__ = ["DeficitRoundRobin", "DEFICIT_CAP"]

#: Maximum accumulated credit, in dispatches. Bounds the burst a
#: session can issue after a period of ineligibility.
DEFICIT_CAP = 2.0


class DeficitRoundRobin:
    """Weighted fair-share selector over session ids.

    Usage: :meth:`add` sessions with their priority weight, then call
    :meth:`select` with the currently *eligible* ids (those with budget
    left, not paused, not already in flight); it returns the id to
    dispatch next, or None when no eligible session has enough credit
    accrued — callers treat that as "nothing to do this turn" and let
    credit accumulate on subsequent calls.
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise SessionError(f"quantum must be positive, got {quantum}")
        self.quantum = float(quantum)
        self._ring: deque[str] = deque()
        self._weights: dict[str, float] = {}
        self._deficits: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._weights

    def add(self, session_id: str, weight: float = 1.0) -> None:
        if session_id in self._weights:
            raise SessionError(
                f"session {session_id!r} already scheduled"
            )
        if weight <= 0:
            raise SessionError(f"weight must be positive, got {weight}")
        self._ring.append(session_id)
        self._weights[session_id] = float(weight)
        self._deficits[session_id] = 0.0

    def remove(self, session_id: str) -> None:
        if session_id not in self._weights:
            return
        self._ring.remove(session_id)
        del self._weights[session_id]
        del self._deficits[session_id]

    def deficit(self, session_id: str) -> float:
        return self._deficits.get(session_id, 0.0)

    def select(self, eligible: set[str]) -> str | None:
        """Pick the next session id to dispatch, rotating the ring.

        Each visited *eligible* session accrues
        ``quantum * weight / max_eligible_weight`` credit; the first one
        whose deficit reaches 1.0 is charged one dispatch and returned.
        Ineligible sessions are rotated past without credit (their share
        is not banked while they cannot run — the deficit cap enforces
        the same bound on re-entry).  One full rotation without a serve
        returns None.
        """
        if not self._ring or not eligible:
            return None
        max_weight = max(
            (self._weights[sid] for sid in self._ring if sid in eligible),
            default=0.0,
        )
        if max_weight <= 0:
            return None
        for _ in range(len(self._ring)):
            sid = self._ring[0]
            self._ring.rotate(-1)
            if sid not in eligible:
                continue
            credit = self.quantum * self._weights[sid] / max_weight
            self._deficits[sid] = min(
                DEFICIT_CAP, self._deficits[sid] + credit
            )
            if self._deficits[sid] >= 1.0:
                self._deficits[sid] -= 1.0
                return sid
        return None

    def refund(self, session_id: str) -> None:
        """Return the dispatch charge after a denied/shed dispatch."""
        if session_id in self._deficits:
            self._deficits[session_id] = min(
                DEFICIT_CAP, self._deficits[session_id] + 1.0
            )

    def snapshot(self) -> dict:
        return {
            "order": list(self._ring),
            "weights": dict(self._weights),
            "deficits": {
                sid: round(d, 6) for sid, d in self._deficits.items()
            },
        }
