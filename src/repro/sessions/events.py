"""Session event log: append-only JSONL journal + crash-tolerant replay.

The :class:`~repro.sessions.manager.SessionManager` journals three event
types through :func:`repro.core.storage.append_events_jsonl` (kind
``"session-events"``, same fsync + tolerant-tail discipline as the grid
checkpoint format):

``register``
    One per session, at manager start: everything needed to rebuild the
    campaign from scratch (tenant, tuner name + seed, budget, priority,
    session seed, task size, context width, deadline).
``state``
    A lifecycle transition (``RUNNING``/``PAUSED``/``DONE``/``FAILED``)
    with an optional reason.
``eval``
    One completed evaluation: step ordinal, configuration index, the
    ground-truth runtime recorded into the history, plus advisory
    surrogate metadata (predicted value, provenance, degraded flag).

Replay (:func:`replay_log`) reconstructs per-session evaluation prefixes:
events are deduplicated first-wins by step (a crash between the service
completing and the fsync landing can re-emit a step on resume) and
truncated at the first gap, so the result is always the exact contiguous
prefix 0..k the campaign had durably completed.  Feeding that prefix to
:meth:`TuningSession.replay` re-proposes every step through the tuner,
fast-forwarding its RNG/search state to exactly where the killed run was.
"""

from __future__ import annotations

import logging
from pathlib import Path

from repro.core.storage import append_events_jsonl, load_events_jsonl
from repro.errors import SessionError

__all__ = [
    "EVENT_KIND",
    "register_event",
    "state_event",
    "eval_event",
    "SessionEventLog",
    "ReplayState",
    "replay_log",
]

logger = logging.getLogger("repro.sessions")

EVENT_KIND = "session-events"


def register_event(session) -> dict:
    """Registration record for a :class:`TuningSession` (rebuild recipe)."""
    return {
        "event": "register",
        "session": session.session_id,
        "tenant": session.tenant,
        "tuner": session.tuner.name,
        "tuner_seed": session.tuner.seed,
        "budget": session.budget.n_evaluations,
        "priority": session.priority,
        "deadline_s": session.deadline_s,
        "seed": session.seed,
        "context_examples": session.context_examples,
        "size": session.model.task.size,
    }


def state_event(session_id: str, state: str, reason: str | None = None) -> dict:
    event = {"event": "state", "session": session_id, "state": state}
    if reason is not None:
        event["reason"] = reason
    return event


def eval_event(
    session_id: str,
    step: int,
    index: int,
    runtime: float,
    *,
    predicted: float | None = None,
    provenance: str | None = None,
    degraded: bool = False,
) -> dict:
    return {
        "event": "eval",
        "session": session_id,
        "step": step,
        "index": index,
        "runtime": runtime,
        "predicted": predicted,
        "provenance": provenance,
        "degraded": degraded,
    }


class SessionEventLog:
    """Thin buffered writer over the storage-layer event functions.

    Events queue in memory via :meth:`emit` and hit disk (one fsync) on
    :meth:`flush` — the manager flushes once per completion-drain, not
    once per event, so journaling cost stays off the dispatch path.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._buffer: list[dict] = []

    def emit(self, event: dict) -> None:
        self._buffer.append(event)

    def flush(self) -> None:
        if not self._buffer:
            return
        append_events_jsonl(self._buffer, self.path, kind=EVENT_KIND)
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class ReplayState(dict):
    """``{session_id: replay-entry}`` plus the journal's
    :class:`~repro.core.storage.RecoveryReport` as ``.report`` — resume
    paths can tell a pristine journal from a recovered one."""

    report = None


def replay_log(path: str | Path) -> ReplayState:
    """Parse a session event log into per-session replay state.

    Returns ``{session_id: {"meta": register-record | None,
    "state": last-logged-state | None, "reason": last failure/pause
    reason, "evals": [(step, index, runtime), ...]}}`` (a
    :class:`ReplayState` carrying the journal's recovery report) where
    ``evals`` is the deduplicated contiguous prefix from step 0.
    Unreadable, torn, or checksum-failing tails are tolerated and
    truncated at the first gap (crash recovery — the storage layer
    quarantines and reports whatever was dropped); a malformed event
    that *did* durably land raises :class:`SessionError`.
    """
    sessions: ReplayState = ReplayState()
    events = load_events_jsonl(path, kind=EVENT_KIND, tolerate_partial=True)
    sessions.report = events.report
    if not events.report.clean:
        logger.warning(
            "session journal recovered: %s", events.report.summary()
        )
    for event in events:
        kind = event.get("event")
        sid = event.get("session")
        if not isinstance(sid, str) or not sid:
            raise SessionError(f"event log {path}: event without session id")
        entry = sessions.setdefault(
            sid, {"meta": None, "state": None, "reason": None, "evals": {}}
        )
        if kind == "register":
            if entry["meta"] is None:
                entry["meta"] = event
        elif kind == "state":
            entry["state"] = event.get("state")
            entry["reason"] = event.get("reason")
        elif kind == "eval":
            try:
                step = int(event["step"])
                index = int(event["index"])
                runtime = float(event["runtime"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SessionError(
                    f"event log {path}: corrupt eval event for "
                    f"session {sid!r}: {exc}"
                ) from exc
            # First-wins: a resume after a crash between service
            # completion and fsync can legitimately re-log a step.
            entry["evals"].setdefault(step, (index, runtime))
        else:
            raise SessionError(
                f"event log {path}: unknown event type {kind!r}"
            )
    for entry in sessions.values():
        evals: list[tuple[int, int, float]] = []
        by_step = entry["evals"]
        for step in range(len(by_step)):
            if step not in by_step:
                break  # gap: keep only the contiguous durable prefix
            index, runtime = by_step[step]
            evals.append((step, index, runtime))
        entry["evals"] = evals
    return sessions
