"""The session manager: concurrent campaigns over the shared service.

The :class:`SessionManager` replaces N sequential
:func:`~repro.tuning.harness.run_tuner` loops with one event loop that
keeps many campaigns' evaluations in flight against a shared
:class:`~repro.serve.service.PredictionService` (or its
:class:`~repro.serve.resilience.ResilientService` wrapper):

1. **drain** — harvest finished surrogate responses, measure the ground
   truth, record into each session's history, journal ``eval`` events;
2. **expire** — fail campaigns past their deadline;
3. **dispatch** — repeatedly ask the deficit-round-robin scheduler for
   the next eligible session, pass it through admission control, and
   submit its (cached) proposal asynchronously.

Determinism contract: the surrogate prediction is *advisory* — it is
journaled as metadata, but the runtime recorded into the history is the
ground-truth ``model.measure([index], rep=step+1)``, exactly what
``run_tuner`` records.  Because each session also has at most one
evaluation in flight (tuners are history-dependent), a session's final
:class:`~repro.tuning.base.TuningHistory` is bit-identical to the
sequential loop's regardless of batching, faults, shedding, or
interleaving — which is what makes exact crash-resume (re-propose and
replay the journal) possible at all.

Concurrency therefore comes from *cross-session* parallelism; tenants
that share a tuner seed produce identical prompts and ride one lockstep
batch decode in the service's prefix group, which is where the
throughput win over sequential loops comes from.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    SessionError,
    TuningError,
)
from repro.obs import get_tracer
from repro.serve.request import Request
from repro.sessions.admission import AdmissionController
from repro.sessions.events import (
    SessionEventLog,
    eval_event,
    register_event,
    replay_log,
    state_event,
)
from repro.sessions.scheduler import DeficitRoundRobin
from repro.sessions.session import (
    DONE,
    FAILED,
    PAUSED,
    PENDING,
    RUNNING,
    SessionRegistry,
    TuningSession,
)
from repro.utils.rng import derive_seed

__all__ = ["SessionManager"]

#: Replay-consistency fields a resumed session must match in its
#: ``register`` event; a mismatch means the log belongs to a different
#: campaign configuration.
_META_FIELDS = (
    ("tenant", "tenant"),
    ("budget", "budget"),
    ("seed", "seed"),
    ("context_examples", "context_examples"),
)


class SessionManager:
    """Host and drive many concurrent tuning campaigns.

    Parameters
    ----------
    service:
        A :class:`~repro.serve.service.PredictionService` (used via
        ``submit_async``) or any object with a blocking ``submit`` —
        e.g. :class:`~repro.serve.resilience.ResilientService` — which
        is then driven through a small thread pool.
    sessions:
        Initial campaigns (more can be added with :meth:`add_session`
        before :meth:`run`).
    admission:
        :class:`AdmissionController`; default allows 32 in-flight
        evaluations with unlimited per-tenant quota.
    scheduler:
        :class:`DeficitRoundRobin`; default unit quantum.
    log_path:
        JSONL event-log path.  ``None`` disables journaling (no resume).
    resume:
        Replay an existing log at ``log_path`` into the given sessions
        before running (see :meth:`TuningSession.replay`).
    eval_max_attempts:
        Consecutive failed evaluation attempts before a session FAILs.
    clock, sleep:
        Injectable time sources (tests drive deadlines without waiting).
    tick_s:
        Idle-loop sleep while waiting on in-flight work.
    executor_workers:
        Thread-pool width for sync-only services.
    """

    def __init__(
        self,
        service,
        *,
        sessions: Sequence[TuningSession] = (),
        admission: AdmissionController | None = None,
        scheduler: DeficitRoundRobin | None = None,
        log_path: str | Path | None = None,
        resume: bool = False,
        eval_max_attempts: int = 4,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tick_s: float = 0.0005,
        executor_workers: int = 4,
    ):
        if eval_max_attempts < 1:
            raise SessionError(
                f"eval_max_attempts must be >= 1, got {eval_max_attempts}"
            )
        self.service = service
        self.registry = SessionRegistry()
        self.admission = admission or AdmissionController()
        self.scheduler = scheduler or DeficitRoundRobin()
        self.eval_max_attempts = int(eval_max_attempts)
        self._clock = clock
        self._sleep = sleep
        self.tick_s = float(tick_s)
        self._executor_workers = int(executor_workers)
        self._executor: ThreadPoolExecutor | None = None
        self._log = SessionEventLog(log_path) if log_path else None
        self._replayed: dict[str, dict] = {}
        #: :class:`~repro.core.storage.RecoveryReport` of the journal
        #: this manager resumed from (``None`` for a fresh start) — lets
        #: operators distinguish a pristine resume from a recovered one.
        self.resume_report = None
        if resume:
            if self._log is None:
                raise SessionError("resume=True requires a log_path")
            if self._log.path.exists():
                self._replayed = replay_log(self._log.path)
                self.resume_report = self._replayed.report
        #: session_id -> (future, proposal index, dispatch timestamp)
        self._inflight: dict[str, tuple[Future, int, float]] = {}
        #: sessions paused by a stop limit (not by the user); the next
        #: run() restarts exactly these.
        self._stopped: set[str] = set()
        self._start_time: float | None = None
        self._elapsed = 0.0
        self.n_completed = 0
        for session in sessions:
            self.add_session(session)

    # ------------------------------------------------------------------ #
    # Registration / resume
    # ------------------------------------------------------------------ #
    def add_session(self, session: TuningSession) -> None:
        """Register a campaign (replaying its journal when resuming)."""
        replayed = self._replayed.get(session.session_id)
        self.registry.add(session)
        if replayed is not None:
            self._check_meta(session, replayed["meta"])
            session.replay(replayed["evals"])
            if replayed["state"] == FAILED and not session.terminal:
                session.fail(replayed["reason"] or "failed before resume")
        else:
            if self._log is not None:
                self._log.emit(register_event(session))
        if not session.terminal:
            self.scheduler.add(session.session_id, session.priority)

    def _check_meta(self, session: TuningSession, meta: dict | None) -> None:
        if meta is None:
            return
        for field, attr in _META_FIELDS:
            logged = meta.get(field)
            actual = getattr(session, attr)
            if field == "budget":
                actual = session.budget.n_evaluations
            if logged != actual:
                raise SessionError(
                    f"session {session.session_id!r}: log {field} "
                    f"{logged!r} != configured {actual!r}; refusing to "
                    f"resume a different campaign"
                )
        if meta.get("tuner") != session.tuner.name:
            raise SessionError(
                f"session {session.session_id!r}: log tuner "
                f"{meta.get('tuner')!r} != configured "
                f"{session.tuner.name!r}"
            )

    # ------------------------------------------------------------------ #
    # Lifecycle controls
    # ------------------------------------------------------------------ #
    def pause_session(self, session_id: str, reason: str = "paused") -> None:
        session = self.registry.get(session_id)
        session.pause()
        self._emit(state_event(session_id, PAUSED, reason))

    def resume_session(self, session_id: str) -> None:
        session = self.registry.get(session_id)
        session.unpause()
        self._stopped.discard(session_id)
        self._emit(state_event(session_id, RUNNING, "unpaused"))

    def _emit(self, event: dict) -> None:
        if self._log is not None:
            self._log.emit(event)

    def _flush(self) -> None:
        if self._log is not None:
            self._log.flush()

    # ------------------------------------------------------------------ #
    # Request construction / dispatch
    # ------------------------------------------------------------------ #
    def _build_request(self, session: TuningSession, index: int) -> Request:
        """The surrogate query for one proposed configuration.

        ICL examples are the session's most recent observations; a fresh
        campaign bootstraps with the dataset-table value of config 0 so
        the request is well-formed (a Request needs >= 1 example).  The
        seed derives from the *session* seed and step, so tenants sharing
        a tuner trajectory (identical prompt) still issue distinct-seed
        requests that ride one lockstep prefix-group decode.
        """
        space = session.model.space
        history = session.history
        pairs = list(zip(history.indices, history.runtimes))
        pairs = pairs[-session.context_examples:]
        if pairs:
            examples = [(space.from_index(i), rt) for i, rt in pairs]
        else:
            examples = [
                (space.from_index(0), float(session.model.runtimes([0])[0]))
            ]
        return Request(
            examples=examples,
            query_config=space.from_index(index),
            seed=derive_seed(session.seed, "request", session.step),
            size=session.model.task.size,
        )

    def _submit(self, request: Request) -> Future:
        """Async dispatch: native ``submit_async`` when the service has
        one, else the blocking ``submit`` wrapped in a thread pool (the
        ResilientService path — retries/backoff run on the worker)."""
        submit_async = getattr(self.service, "submit_async", None)
        if submit_async is not None:
            return submit_async(request)
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._executor_workers,
                thread_name_prefix="sessions",
            )
        return self._executor.submit(self.service.submit, request)

    def _fail_session(self, session: TuningSession, reason: str) -> None:
        session.fail(reason)
        self._emit(state_event(session.session_id, FAILED, reason))
        self.scheduler.remove(session.session_id)

    def _dispatch_once(self, eligible: set[str]) -> str | None:
        """One scheduler turn: select, admit, submit.

        Returns the served session id, ``"saturated"`` to stop
        dispatching this tick, or None when nothing could be served.
        Mutates ``eligible`` to drop sessions denied retryably so the
        next turn does not re-select them.
        """
        tracer = get_tracer()
        sid = self.scheduler.select(eligible)
        if sid is None:
            return None
        session = self.registry.get(sid)
        with tracer.span(
            "sessions.admit", session=sid, tenant=session.tenant
        ) as span:
            decision = self.admission.admit(session.tenant)
            span.set(admitted=decision.admitted, reason=decision.reason)
        if not decision.admitted:
            if not decision.retryable:
                self._fail_session(
                    session, f"admission denied: {decision.reason}"
                )
                eligible.discard(sid)
                return None
            session.n_denied += 1
            self.scheduler.refund(sid)
            eligible.discard(sid)
            return "saturated" if decision.reason == "saturated" else None
        try:
            proposal = session.next_proposal()
        except TuningError as exc:
            self.admission.refund(session.tenant)
            self._fail_session(session, str(exc))
            eligible.discard(sid)
            return None
        request = self._build_request(session, proposal)
        try:
            future = self._submit(request)
        except ServiceOverloadedError:
            # Admitted but the queue filled underneath us: shed.  The
            # proposal stays cached, quota/credit are returned, and the
            # whole dispatch phase backs off this tick.
            session.n_shed += 1
            self.admission.refund(session.tenant)
            self.scheduler.refund(sid)
            eligible.discard(sid)
            return "saturated"
        except ServiceClosedError:
            self.admission.refund(session.tenant)
            self.scheduler.refund(sid)
            raise
        session.inflight = True
        self._inflight[sid] = (future, proposal, self._clock())
        eligible.discard(sid)
        return sid

    # ------------------------------------------------------------------ #
    # Completion drain
    # ------------------------------------------------------------------ #
    def _drain(self, *, wait: bool = False) -> int:
        """Harvest finished futures; returns completions recorded.

        With ``wait=True`` blocks until every in-flight evaluation has
        resolved (shutdown/stop path).
        """
        tracer = get_tracer()
        recorded = 0
        while True:
            done = [
                sid
                for sid, (future, _, _) in self._inflight.items()
                if future.done()
            ]
            for sid in done:
                future, proposal, t0 = self._inflight.pop(sid)
                session = self.registry.get(sid)
                session.inflight = False
                self.admission.complete(session.tenant)
                if session.terminal:
                    # Failed (deadline, admission) while in flight: the
                    # result is discarded, never recorded or journaled.
                    continue
                exc = future.exception()
                if exc is not None:
                    if isinstance(exc, ServiceClosedError):
                        raise exc
                    if session.note_eval_error(self.eval_max_attempts):
                        self._fail_session(
                            session,
                            f"evaluation failed "
                            f"{self.eval_max_attempts}x: {exc}",
                        )
                    # else: proposal stays cached; redispatched next tick
                    continue
                response = future.result()
                step = session.step
                runtime = float(
                    session.model.measure([proposal], rep=step + 1)[0]
                )
                session.record(proposal, runtime)
                self.n_completed += 1
                recorded += 1
                self._emit(
                    eval_event(
                        sid,
                        step,
                        proposal,
                        runtime,
                        predicted=response.value,
                        provenance=response.provenance,
                        degraded=response.degraded,
                    )
                )
                tracer.record_span(
                    "sessions.step",
                    t0,
                    self._clock(),
                    session=sid,
                    tenant=session.tenant,
                    step=step,
                    provenance=response.provenance,
                )
                if session.state == DONE:
                    self._emit(state_event(sid, DONE))
                    self.scheduler.remove(sid)
            if done:
                self._flush()
            if not wait or not self._inflight:
                return recorded
            self._sleep(self.tick_s)

    def _expire_deadlines(self) -> None:
        now = self._clock() - (self._start_time or 0.0)
        for session in self.registry.by_state(RUNNING):
            if session.deadline_s is not None and now >= session.deadline_s:
                entry = self._inflight.get(session.session_id)
                if entry is not None:
                    entry[0].cancel()  # drain discards it either way
                self._fail_session(
                    session,
                    f"deadline ({session.deadline_s:g}s) expired",
                )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        max_evaluations: int | None = None,
        max_wall_s: float | None = None,
    ) -> dict:
        """Drive all campaigns to completion (or the given stop limits).

        Returns the final registry snapshot.  On a stop limit, in-flight
        evaluations are drained (recorded, journaled) and still-RUNNING
        sessions are PAUSED with reason ``"stopped"`` — a subsequent
        ``resume`` run picks every campaign up exactly where it stopped.
        """
        tracer = get_tracer()
        self._start_time = self._clock()
        start_completed = self.n_completed
        for session in self.registry.by_state(PENDING):
            session.start()
            self._emit(state_event(session.session_id, RUNNING))
        for session_id in sorted(self._stopped):
            # Sessions paused by a previous run's stop limit restart
            # here; user-paused sessions stay paused.
            session = self.registry.get(session_id)
            if session.state == PAUSED:
                session.unpause()
                self._emit(state_event(session_id, RUNNING, "restarted"))
        self._stopped.clear()
        self._flush()
        try:
            while True:
                with tracer.span("sessions.tick"):
                    progress = self._drain() > 0
                    self._expire_deadlines()
                    stop = (
                        max_evaluations is not None
                        and self.n_completed - start_completed
                        >= max_evaluations
                    ) or (
                        max_wall_s is not None
                        and self._clock() - self._start_time >= max_wall_s
                    )
                    if stop:
                        self._drain(wait=True)
                        for session in self.registry.by_state(RUNNING):
                            session.pause()
                            self._stopped.add(session.session_id)
                            self._emit(
                                state_event(
                                    session.session_id, PAUSED, "stopped"
                                )
                            )
                        break
                    eligible = {
                        s.session_id
                        for s in self.registry.by_state(RUNNING)
                        if not s.inflight and s.remaining > 0
                    }
                    while eligible:
                        # Global saturation is checked before selecting:
                        # charging the scheduler for a dispatch that can
                        # never be admitted would skew fair shares (the
                        # ring parity can then starve low-weight
                        # tenants outright).
                        if (
                            self.admission.total_inflight
                            >= self.admission.max_inflight
                        ):
                            break
                        served = self._dispatch_once(eligible)
                        if served == "saturated":
                            break
                        if served is not None:
                            progress = True
                    if not self._inflight and not self.registry.by_state(
                        RUNNING
                    ):
                        break
                    if not progress:
                        self._sleep(self.tick_s)
        finally:
            self._flush()
            self._elapsed = self._clock() - self._start_time
        return self.snapshot()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Registry snapshot + admission/scheduler state (obs source)."""
        snap = self.registry.snapshot(self._elapsed or None)
        snap["completed"] = self.n_completed
        snap["admission"] = self.admission.snapshot()
        snap["scheduler"] = self.scheduler.snapshot()
        return snap

    def close(self) -> None:
        self._flush()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
