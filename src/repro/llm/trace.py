"""Generation traces: the recorded logits the paper's analyses consume.

A :class:`GenerationTrace` stores, for every generated token, the full
sparse candidate set (ids + logits) and which candidate was sampled —
"record all generated nonzero logit values" (Section III-C).  The trace
exposes the *value region* (the steps from the first digit onward) in the
plain :class:`repro.analysis.decoding.StepCandidates` form so analysis does
not depend on this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.decoding import StepCandidates
from repro.errors import GenerationError
from repro.llm.vocab import Vocabulary

__all__ = ["GenerationStep", "GenerationTrace"]


@dataclass(frozen=True)
class GenerationStep:
    """One generation step: sparse candidates and the sampled choice."""

    candidate_ids: np.ndarray
    logits: np.ndarray
    chosen_position: int

    def __post_init__(self):
        ids = np.asarray(self.candidate_ids, dtype=np.int64)
        logits = np.asarray(self.logits, dtype=float)
        object.__setattr__(self, "candidate_ids", ids)
        object.__setattr__(self, "logits", logits)
        if ids.shape != logits.shape or ids.ndim != 1:
            raise GenerationError("candidate ids/logits must be 1-D, aligned")
        if not 0 <= self.chosen_position < ids.size:
            raise GenerationError(
                f"chosen position {self.chosen_position} out of range"
            )

    @property
    def chosen_id(self) -> int:
        return int(self.candidate_ids[self.chosen_position])

    @property
    def n_candidates(self) -> int:
        return int(self.candidate_ids.size)


@dataclass
class GenerationTrace:
    """The full record of one generation."""

    prompt_ids: np.ndarray
    steps: list[GenerationStep] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        self.prompt_ids = np.asarray(self.prompt_ids, dtype=np.int64)

    @property
    def generated_ids(self) -> list[int]:
        """Sampled token ids, in order."""
        return [s.chosen_id for s in self.steps]

    def generated_text(self, vocab: Vocabulary) -> str:
        """Surface text of the generation (special tokens skipped)."""
        out = []
        for s in self.steps:
            tid = s.chosen_id
            if not vocab.is_special(tid):
                out.append(vocab.string_of(tid))
        return "".join(out)

    def step_candidates(self, vocab: Vocabulary) -> list[StepCandidates]:
        """All steps in analysis form (token strings + logits)."""
        return [
            StepCandidates(
                tokens=vocab.strings_of(s.candidate_ids),
                logits=s.logits,
                chosen=s.chosen_position,
            )
            for s in self.steps
        ]

    def value_region(self, vocab: Vocabulary) -> list[StepCandidates]:
        """Steps from the first sampled digit token onward.

        This is the region the decoding-tree analysis enumerates; empty
        when the generation never produced a digit.
        """
        for i, s in enumerate(self.steps):
            if vocab.string_of(s.chosen_id).isdigit():
                return [
                    StepCandidates(
                        tokens=vocab.strings_of(st.candidate_ids),
                        logits=st.logits,
                        chosen=st.chosen_position,
                    )
                    for st in self.steps[i:]
                ]
        return []

    def __len__(self) -> int:
        return len(self.steps)
