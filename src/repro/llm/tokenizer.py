"""Greedy tokenizer with Llama-3-style digit chunking.

Segmentation rules (mirroring the properties of modern BPE tokenizers that
matter for the paper's analysis):

* text is pre-split into *pieces*: runs of letters (optionally preceded by
  one space), runs of digits, and individual other characters (optionally
  space-prefixed for punctuation that has a space variant);
* digit runs are chunked **left-to-right into groups of three** — Llama 3
  tokenizes ``0022155`` as ``002 | 215 | 5`` — so every decimal value
  string becomes ``<int chunks> . <fraction chunks>``;
* each piece is looked up in the vocabulary; misses fall back to single
  characters and finally UTF-8 byte tokens, so encoding never fails and
  ``decode(encode(text)) == text`` for all text.
"""

from __future__ import annotations

import re

from repro.errors import TokenizationError
from repro.llm.vocab import Vocabulary, build_default_vocabulary

__all__ = ["chunk_digits", "Tokenizer"]

# Pieces: special markers | space?+letters | digits | space?+single other char.
_PIECE_RE = re.compile(
    r"<\|[a-z_]+\|>"  # special tokens pass through whole
    r"|\n\n|\n"
    r"| ?[A-Za-z]+"
    r"|[0-9]+"
    r"| ?[^\sA-Za-z0-9]"
    r"| +"
)


def _is_ascii_digits(s: str) -> bool:
    """ASCII-only digit check (``str.isdigit`` accepts Unicode digits
    like '²' which are not in the vocabulary's digit-chunk set)."""
    return bool(s) and all("0" <= c <= "9" for c in s)


def chunk_digits(digits: str) -> list[str]:
    """Split a digit run into Llama-3-style chunks of up to three digits.

    Chunking is left-to-right: ``"1234567" -> ["123", "456", "7"]``.
    """
    if not _is_ascii_digits(digits):
        raise TokenizationError(f"not a digit run: {digits!r}")
    return [digits[i : i + 3] for i in range(0, len(digits), 3)]


class Tokenizer:
    """Encode/decode text against a :class:`Vocabulary`."""

    def __init__(self, vocab: Vocabulary | None = None):
        self.vocab = vocab or build_default_vocabulary()

    # ------------------------------------------------------------------ #
    def encode(self, text: str) -> list[int]:
        """Encode ``text`` into token ids (never fails; byte fallback)."""
        ids: list[int] = []
        pos = 0
        for match in _PIECE_RE.finditer(text):
            if match.start() != pos:
                # Characters the piece regex skipped (exotic whitespace).
                self._encode_fallback(text[pos : match.start()], ids)
            self._encode_piece(match.group(0), ids)
            pos = match.end()
        if pos != len(text):
            self._encode_fallback(text[pos:], ids)
        return ids

    def _encode_piece(self, piece: str, ids: list[int]) -> None:
        if _is_ascii_digits(piece):
            for chunk in chunk_digits(piece):
                ids.append(self.vocab.id_of(chunk))
            return
        if piece in self.vocab:
            ids.append(self.vocab.id_of(piece))
            return
        # Space-prefixed word not in lexicon: try emitting the space
        # separately, then the bare word.
        if piece.startswith(" ") and len(piece) > 1:
            bare = piece[1:]
            ids.append(self.vocab.id_of(" "))
            if _is_ascii_digits(bare):
                for chunk in chunk_digits(bare):
                    ids.append(self.vocab.id_of(chunk))
            elif bare in self.vocab:
                ids.append(self.vocab.id_of(bare))
            else:
                self._encode_fallback(bare, ids)
            return
        self._encode_fallback(piece, ids)

    def _encode_fallback(self, text: str, ids: list[int]) -> None:
        """Character-then-byte fallback for out-of-lexicon text."""
        for ch in text:
            if ch in self.vocab:
                ids.append(self.vocab.id_of(ch))
            else:
                for b in ch.encode("utf-8"):
                    ids.append(self.vocab.byte_id(b))

    # ------------------------------------------------------------------ #
    def decode(self, ids) -> str:
        """Decode token ids back to text (inverse of :meth:`encode`)."""
        out: list[str] = []
        pending_bytes = bytearray()

        def flush() -> None:
            if pending_bytes:
                out.append(pending_bytes.decode("utf-8", errors="replace"))
                pending_bytes.clear()

        for token_id in ids:
            tid = int(token_id)
            if self.vocab.is_byte(tid):
                pending_bytes.extend(self.vocab.decode_bytes(tid))
            else:
                flush()
                out.append(self.vocab.string_of(tid))
        flush()
        return "".join(out)

    def token_strings(self, ids) -> list[str]:
        """Per-token surface strings (byte tokens render as ``<0xNN>``)."""
        return [self.vocab.string_of(int(i)) for i in ids]

    def encode_value(self, value_text: str) -> list[int]:
        """Encode a decimal value string, validating the paper's shape.

        Raises
        ------
        TokenizationError
            If ``value_text`` is not a plain non-negative decimal literal.
        """
        if not re.fullmatch(r"[0-9]+(\.[0-9]+)?", value_text):
            raise TokenizationError(
                f"not a plain decimal literal: {value_text!r}"
            )
        return self.encode(value_text)
