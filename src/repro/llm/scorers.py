"""Next-token scorers composing the surrogate LM.

Each scorer inspects the context and returns a :class:`SparseScores` —
additive logit contributions over a sparse token support.  The scorers
model the mechanisms the ICL literature (and the paper's own post-hoc
analysis) identify in instruction-tuned transformers:

* :class:`InductionScorer` — induction heads: find earlier occurrences of
  the current context suffix and vote for the tokens that followed them,
  with exponentially stronger votes for longer matches and a mild recency
  bias.  This is the "parroting" mechanism behind Figure 3.
* :class:`RecencyUnigramScorer` — the prompt's token frequency with
  exponential recency decay (attention sinks on recent content).
* :class:`FormatScorer` — instruction-following: the model aligns its
  response with the *demonstrated* answer format.  It anchors on the
  ``Performance: `` cue occurrences in the prompt (what starts a value,
  how many decimals the demonstrations carry), spreads a noisy low-level
  prior over all digit chunks (which is what makes hundreds of tokens
  "selectable" at fractional positions — Table II), and ramps a stop
  signal once the value matches the demonstrated length.
* :class:`PriorScorer` — a fixed, hash-derived pretraining prior plus weak
  "world knowledge": a magnitude hint keyed to the problem-size keyword in
  the prompt (XL runtimes have a nonzero integer part; SM's start with 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.llm.vocab import Vocabulary
from repro.utils.rng import rng_from

__all__ = [
    "SparseScores",
    "InductionScorer",
    "RecencyUnigramScorer",
    "FormatScorer",
    "FormatAnalysis",
    "FormatPrefixIndex",
    "PriorScorer",
]


@dataclass
class SparseScores:
    """Additive logit contributions over a sparse token support."""

    ids: np.ndarray
    scores: np.ndarray

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=float)
        if self.ids.shape != self.scores.shape or self.ids.ndim != 1:
            raise ValueError("ids and scores must be equal-length 1-D arrays")

    @staticmethod
    def empty() -> "SparseScores":
        return SparseScores(np.empty(0, dtype=np.int64), np.empty(0))

    @staticmethod
    def accumulate(parts: list["SparseScores"]) -> "SparseScores":
        """Sum several sparse score vectors over the union support."""
        parts = [p for p in parts if p.ids.size]
        if not parts:
            return SparseScores.empty()
        all_ids = np.concatenate([p.ids for p in parts])
        all_scores = np.concatenate([p.scores for p in parts])
        uniq, inverse = np.unique(all_ids, return_inverse=True)
        summed = np.zeros(uniq.size)
        np.add.at(summed, inverse, all_scores)
        return SparseScores(uniq, summed)


class InductionScorer:
    """Suffix-match voting over earlier context positions.

    Parameters
    ----------
    max_ngram:
        Longest suffix length searched.
    match_base:
        Per-extra-token multiplier on vote weight: a length-``L`` match
        votes with weight ``match_base**(L-1)``.
    recency_halflife:
        Votes decay by half every this many tokens of distance from the
        context end (the recency bias the paper highlights).
    scale, offset:
        The normalized vote distribution ``p`` contributes logits
        ``offset + scale * log(p)`` — ``offset`` sets how decisively
        induction evidence beats the diffuse format prior.
    """

    def __init__(
        self,
        max_ngram: int = 4,
        match_base: float = 1.8,
        recency_halflife: float = 1200.0,
        scale: float = 1.5,
        offset: float = 12.0,
    ):
        if max_ngram < 1:
            raise ValueError(f"max_ngram must be >= 1, got {max_ngram}")
        if match_base < 1.0:
            raise ValueError(f"match_base must be >= 1, got {match_base}")
        self.max_ngram = max_ngram
        self.match_base = match_base
        self.recency_halflife = recency_halflife
        self.scale = scale
        self.offset = offset

    def score(
        self, context: np.ndarray, offset_shift: float = 0.0
    ) -> SparseScores:
        """Vote weights for the token following ``context``.

        ``offset_shift`` lowers (negative) or raises the decisiveness
        offset — the model uses it to fade induction dominance at late
        value positions, where generations diverge from exact ICL copies.
        """
        ctx = np.asarray(context, dtype=np.int64)
        n = ctx.size
        if n < 2:
            return SparseScores.empty()
        votes: dict[int, float] = {}
        decay = np.log(2.0) / self.recency_halflife
        max_l = min(self.max_ngram, n - 1)
        for length in range(1, max_l + 1):
            suffix = ctx[n - length :]
            # Window starts 0..n-length-1 can be followed by a next token.
            windows = np.lib.stride_tricks.sliding_window_view(
                ctx[: n - 1], length
            )
            eq = np.all(windows == suffix, axis=1)
            starts = np.nonzero(eq)[0]
            if starts.size == 0:
                continue
            weight_l = self.match_base ** (length - 1)
            next_tokens = ctx[starts + length]
            recency = np.exp(-decay * (n - (starts + length)))
            for tok, rec in zip(next_tokens, recency):
                votes[int(tok)] = votes.get(int(tok), 0.0) + weight_l * float(rec)
        if not votes:
            return SparseScores.empty()
        ids = np.fromiter(votes.keys(), dtype=np.int64, count=len(votes))
        w = np.fromiter(votes.values(), dtype=float, count=len(votes))
        p = w / w.sum()
        return SparseScores(
            ids, self.offset + offset_shift + self.scale * np.log(p + 1e-12)
        )

    # ------------------------------------------------------------------ #
    # Prefix-indexed fast path.  ``score`` above stays the reference
    # implementation; ``score_indexed`` must be bit-identical to it (the
    # prefix-cache determinism tests diff full logit arrays both ways).
    # ------------------------------------------------------------------ #
    def build_index(
        self, prefix: np.ndarray
    ) -> dict[int, dict[bytes, np.ndarray]]:
        """Precompute the suffix-match table for a fixed prompt prefix.

        For every n-gram length the index maps window bytes to the sorted
        window-start positions within the prefix whose *next token* is
        also inside the prefix (``start <= len(prefix) - 1 - length``) —
        exactly the starts the reference full scan would find there.
        """
        ctx = np.asarray(prefix, dtype=np.int64)
        p = ctx.size
        index: dict[int, dict[bytes, np.ndarray]] = {}
        for length in range(1, self.max_ngram + 1):
            if p - 1 < length:
                break
            windows = np.lib.stride_tricks.sliding_window_view(
                ctx[: p - 1], length
            )
            table: dict[bytes, list[int]] = {}
            for start in range(windows.shape[0]):
                key = windows[start].tobytes()
                table.setdefault(key, []).append(start)
            index[length] = {
                key: np.asarray(starts, dtype=np.int64)
                for key, starts in table.items()
            }
        return index

    def score_indexed(
        self,
        context: np.ndarray,
        index: dict[int, dict[bytes, np.ndarray]],
        prefix_len: int,
        offset_shift: float = 0.0,
    ) -> SparseScores:
        """Suffix-match voting using a prefix index plus a tail delta scan.

        Combines index-listed starts (inside the prefix) with a scan of
        the boundary/suffix region; the concatenation reproduces the
        reference scan's start array element-for-element, and the vote
        accumulation replays the reference dict loop's insertion and
        addition order, so the returned scores are bit-identical.
        """
        ctx = np.asarray(context, dtype=np.int64)
        n = ctx.size
        if n < 2:
            return SparseScores.empty()
        decay = np.log(2.0) / self.recency_halflife
        max_l = min(self.max_ngram, n - 1)
        tok_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        for length in range(1, max_l + 1):
            suffix = np.ascontiguousarray(ctx[n - length :])
            table = index.get(length)
            pre = table.get(suffix.tobytes()) if table else None
            # Starts >= prefix_len - length cross the boundary or live in
            # the suffix; rescan just that region of the full context.
            lo = max(0, prefix_len - length)
            tail = ctx[lo : n - 1]
            tail_starts = None
            if tail.size >= length:
                windows = np.lib.stride_tricks.sliding_window_view(
                    tail, length
                )
                eq = np.all(windows == suffix, axis=1)
                tail_starts = np.nonzero(eq)[0] + lo
            parts = [
                s for s in (pre, tail_starts) if s is not None and s.size
            ]
            if not parts:
                continue
            starts = parts[0] if len(parts) == 1 else np.concatenate(parts)
            weight_l = self.match_base ** (length - 1)
            tok_parts.append(ctx[starts + length])
            weight_parts.append(
                weight_l * np.exp(-decay * (n - (starts + length)))
            )
        if not tok_parts:
            return SparseScores.empty()
        tokens = np.concatenate(tok_parts)
        weights = np.concatenate(weight_parts)
        # First-occurrence-order accumulation: rank tokens by where they
        # first appear in the traversal (== dict insertion order) and let
        # np.add.at replay the per-key additions in traversal order.
        uniq, first_idx, inverse = np.unique(
            tokens, return_index=True, return_inverse=True
        )
        order = np.argsort(first_idx)
        rank = np.empty(uniq.size, dtype=np.int64)
        rank[order] = np.arange(uniq.size)
        w = np.zeros(uniq.size)
        np.add.at(w, rank[inverse], weights)
        ids = uniq[order]
        p = w / w.sum()
        return SparseScores(
            ids, self.offset + offset_shift + self.scale * np.log(p + 1e-12)
        )


class RecencyUnigramScorer:
    """Recency-decayed unigram frequency of the context."""

    def __init__(self, halflife: float = 1500.0, scale: float = 1.0):
        if halflife <= 0:
            raise ValueError(f"halflife must be positive, got {halflife}")
        self.halflife = halflife
        self.scale = scale

    def score(self, context: np.ndarray) -> SparseScores:
        ctx = np.asarray(context, dtype=np.int64)
        n = ctx.size
        if n == 0:
            return SparseScores.empty()
        decay = np.log(2.0) / self.halflife
        weights = np.exp(-decay * (n - 1 - np.arange(n)))
        uniq, inverse = np.unique(ctx, return_inverse=True)
        mass = np.zeros(uniq.size)
        np.add.at(mass, inverse, weights)
        p = mass / mass.sum()
        return SparseScores(uniq, self.scale * np.log(p + 1e-12))

    # ------------------------------------------------------------------ #
    # Prefix-indexed fast path (bit-identical to ``score`` above).
    # ------------------------------------------------------------------ #
    def build_index(
        self, prefix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Precompute the unique-token factorization of a fixed prefix."""
        ctx = np.asarray(prefix, dtype=np.int64)
        uniq, inverse = np.unique(ctx, return_inverse=True)
        return uniq, inverse

    def score_indexed(
        self,
        context: np.ndarray,
        index: tuple[np.ndarray, np.ndarray],
        prefix_len: int,
    ) -> SparseScores:
        """Recency-unigram score reusing the prefix factorization.

        Only the suffix delta is sorted; the prefix's unique/inverse
        decomposition is remapped into the merged support.  The merged
        support equals ``np.unique`` of the full context and the mass
        accumulation runs in the same element order, so the result is
        bit-identical to the reference path.
        """
        ctx = np.asarray(context, dtype=np.int64)
        n = ctx.size
        if n == 0:
            return SparseScores.empty()
        decay = np.log(2.0) / self.halflife
        weights = np.exp(-decay * (n - 1 - np.arange(n)))
        uniq_p, inv_p = index
        suffix = ctx[prefix_len:]
        uniq_s, inv_s = np.unique(suffix, return_inverse=True)
        uniq = np.union1d(uniq_p, uniq_s)
        remap_p = np.searchsorted(uniq, uniq_p)
        remap_s = np.searchsorted(uniq, uniq_s)
        inverse = np.concatenate([remap_p[inv_p], remap_s[inv_s]])
        mass = np.zeros(uniq.size)
        np.add.at(mass, inverse, weights)
        p = mass / mass.sum()
        return SparseScores(uniq, self.scale * np.log(p + 1e-12))


@dataclass
class _ValueState:
    """Where the generation currently stands inside a value string.

    ``phase`` walks ``preamble -> value -> done``: instruction-tuned models
    sometimes echo a label before the number — the format deviations
    Section III-C mentions — so non-numeric tokens before the first digit
    are tolerated as preamble rather than ending the value.
    """

    phase: str = "preamble"
    n_tokens: int = 0
    seen_dot: bool = False
    digits_after_dot: int = 0


@dataclass
class FormatAnalysis:
    """What the format scorer learned from one prompt.

    Attributes
    ----------
    start_votes:
        Recency-weighted votes (token id -> weight) for the token that
        begins a demonstrated value (the token right after the
        ``Performance: `` cue).
    expected_decimals:
        Modal number of digits after the decimal point across the
        demonstrated values (None when no demonstration was found).
    """

    start_votes: dict[int, float] = field(default_factory=dict)
    expected_decimals: int | None = None
    #: First fraction-chunk strings of the demonstrated values (e.g.
    #: ``"002"`` for ``0.0022155``): the prefixes generable alternatives
    #: cluster around (Figure 3).
    fraction_prefixes: list[str] = field(default_factory=list)
    #: True when the demonstrated values carry no decimal point (the
    #: generative bucket-label format): the model should then emit a bare
    #: integer and stop.
    integer_valued: bool = False


@dataclass(frozen=True)
class _CueRecord:
    """One parsed demonstrated value (what follows a ``Performance:`` cue).

    Position-dependent but length-independent: the recency weight of the
    start vote depends on the *current* context length, so it is not
    stored here — only the parse, which is frozen once the value lies
    fully inside a fixed prefix.
    """

    start: int
    first: int
    seen_dot: bool
    decimals: int
    fraction_prefix: str | None


@dataclass(frozen=True)
class FormatPrefixIndex:
    """Parsed cue records of a fixed prompt prefix (FSM prepared state).

    ``records`` holds the cue hits whose 8-token parse window lies fully
    inside the prefix (``hit <= prefix_len - 11``); hits nearer the
    boundary are re-scanned against the full context at analysis time.
    """

    prefix_len: int
    records: tuple[_CueRecord | None, ...]


class FormatScorer:
    """Instruction-following prior for the ``Performance: <decimal>`` format."""

    def __init__(
        self,
        vocab: Vocabulary,
        digit_boost: float = 0.5,
        digit_jitter: float = 1.5,
        dot_boost: float = 12.0,
        start_scale: float = 3.0,
        start_offset: float = 13.0,
        terminate_boost: float = 14.0,
        premature_stop_penalty: float = -4.0,
        jitter_seed: int = 7,
    ):
        self.vocab = vocab
        self.digit_boost = digit_boost
        self.digit_jitter = digit_jitter
        self.dot_boost = dot_boost
        self.start_scale = start_scale
        self.start_offset = start_offset
        self.terminate_boost = terminate_boost
        self.premature_stop_penalty = premature_stop_penalty
        self._digit_ids = np.asarray(vocab.digit_token_ids, dtype=np.int64)
        self._digit_lengths = np.asarray(
            [len(vocab.string_of(int(i))) for i in self._digit_ids],
            dtype=np.int64,
        )
        # Fixed per-token jitter: which digit chunks feel "natural" is a
        # frozen property of pretraining, not of the sampling seed.
        self._jitter = rng_from(jitter_seed, "format-jitter").standard_normal(
            self._digit_ids.size
        )
        # Cues announcing a demonstrated value: "Performance: <value>" in
        # the regression prompts, "... bucket: <label>" in the generative
        # classification prompts.
        self._cues = []
        for lead in ("Performance", " bucket"):
            if lead in vocab:
                self._cues.append(
                    np.asarray(
                        [vocab.id_of(lead), vocab.id_of(":"), vocab.id_of(" ")],
                        dtype=np.int64,
                    )
                )

    # ------------------------------------------------------------------ #
    def _cue_hits(self, ctx: np.ndarray, lo: int = 0) -> np.ndarray:
        """Sorted, deduplicated cue-hit positions ``h >= lo`` in ``ctx``."""
        region = ctx[lo:]
        if region.size < 4:
            return np.empty(0, dtype=np.int64)
        hit_list = []
        for cue in self._cues:
            c0, c1, c2 = cue
            hit_list.append(
                np.nonzero(
                    (region[:-3] == c0)
                    & (region[1:-2] == c1)
                    & (region[2:-1] == c2)
                )[0]
            )
        if not hit_list:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hit_list)) + lo

    def _parse_hit(self, ctx: np.ndarray, h: int, n: int) -> _CueRecord | None:
        """Parse the demonstrated value after cue hit ``h`` (None: no value)."""
        start = h + 3
        first = int(ctx[start])
        if not self.vocab.string_of(first).isdigit():
            return None
        # Count decimals of this demonstrated value and remember its
        # first fraction chunk (the prefix alternatives cluster on).
        seen_dot = False
        decimals = 0
        fraction_prefix: str | None = None
        newline_id = self.vocab.newline_id
        for pos in range(start, min(start + 8, n)):
            s = self.vocab.string_of(int(ctx[pos]))
            if s == "." and not seen_dot:
                seen_dot = True
            elif s.isdigit():
                if seen_dot:
                    if decimals == 0:
                        fraction_prefix = s
                    decimals += len(s)
            elif int(ctx[pos]) == newline_id or not (
                s.isdigit() or s == "."
            ):
                break
        return _CueRecord(start, first, seen_dot, decimals, fraction_prefix)

    def build_prefix(self, prefix_ids: np.ndarray) -> FormatPrefixIndex:
        """Pre-parse the cue records that lie fully inside a fixed prefix."""
        ctx = np.asarray(prefix_ids, dtype=np.int64)
        p = int(ctx.size)
        records = tuple(
            self._parse_hit(ctx, int(h), p)
            for h in self._cue_hits(ctx)
            if int(h) <= p - 11
        )
        return FormatPrefixIndex(prefix_len=p, records=records)

    def analyze_prompt(
        self,
        prompt_ids: np.ndarray,
        prefix: FormatPrefixIndex | None = None,
    ) -> FormatAnalysis:
        """Locate the demonstrated values after each value cue.

        With ``prefix`` (a :meth:`build_prefix` index for a leading slice
        of ``prompt_ids``), only cue hits near or past the prefix
        boundary are re-scanned; cached records merge in hit order, and
        the position-dependent recency weights are recomputed against the
        full length, so the analysis is identical to a cold scan.
        """
        ctx = np.asarray(prompt_ids, dtype=np.int64)
        analysis = FormatAnalysis()
        if ctx.size < 4:
            return analysis
        n = ctx.size
        records: list[_CueRecord | None]
        if prefix is None:
            records = [
                self._parse_hit(ctx, int(h), n) for h in self._cue_hits(ctx)
            ]
        else:
            lo = max(0, prefix.prefix_len - 10)
            records = list(prefix.records)
            records.extend(
                self._parse_hit(ctx, int(h), n)
                for h in self._cue_hits(ctx, lo=lo)
            )
        decimal_counts: list[int] = []
        integer_count = 0
        for rec in records:
            if rec is None:
                continue
            # Recency-weighted start vote.
            weight = float(np.exp(-(n - rec.start) / 4000.0))
            analysis.start_votes[rec.first] = (
                analysis.start_votes.get(rec.first, 0.0) + weight
            )
            if rec.fraction_prefix is not None:
                analysis.fraction_prefixes.append(rec.fraction_prefix)
            if rec.seen_dot and rec.decimals > 0:
                decimal_counts.append(rec.decimals)
            elif not rec.seen_dot:
                integer_count += 1
        if decimal_counts:
            values, counts = np.unique(decimal_counts, return_counts=True)
            analysis.expected_decimals = int(values[np.argmax(counts)])
        if integer_count > len(decimal_counts):
            analysis.integer_valued = True
            analysis.expected_decimals = 0
        return analysis

    # ------------------------------------------------------------------ #
    def value_state(self, generated_strings: list[str]) -> _ValueState:
        """Parse the generated-so-far strings into a value-progress state."""
        state = _ValueState()
        for s in generated_strings:
            if state.phase == "preamble":
                if s.isdigit():
                    state.phase = "value"
                    state.n_tokens = 1
                # anything else stays preamble (label echo etc.)
            elif state.phase == "value":
                if s == "." and not state.seen_dot:
                    state.seen_dot = True
                    state.n_tokens += 1
                elif s.isdigit():
                    state.n_tokens += 1
                    if state.seen_dot:
                        state.digits_after_dot += len(s)
                else:
                    state.phase = "done"
        return state

    def score(
        self,
        generated_strings: list[str],
        analysis: FormatAnalysis | None = None,
    ) -> SparseScores:
        state = self.value_state(generated_strings)
        if state.phase == "done":
            # Value finished: prefer to stop the turn.
            return SparseScores(
                np.asarray([self.vocab.specials.eot], dtype=np.int64),
                np.asarray([self.terminate_boost]),
            )

        ids: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        if state.phase == "preamble" and analysis and analysis.start_votes:
            # Start the value the way the demonstrations did.
            sv_ids = np.fromiter(
                analysis.start_votes.keys(), dtype=np.int64,
                count=len(analysis.start_votes),
            )
            w = np.fromiter(
                analysis.start_votes.values(), dtype=float,
                count=len(analysis.start_votes),
            )
            p = w / w.sum()
            ids.append(sv_ids)
            scores.append(self.start_offset + self.start_scale * np.log(p + 1e-12))

        if state.phase == "value" and not state.seen_dot:
            if analysis and analysis.integer_valued:
                # Demonstrated values are bare integers (bucket labels):
                # finish the turn instead of starting a fraction.
                ids.append(
                    np.asarray(
                        [self.vocab.newline_id, self.vocab.specials.eot],
                        dtype=np.int64,
                    )
                )
                scores.append(
                    np.asarray(
                        [self.terminate_boost, self.terminate_boost - 1.0]
                    )
                )
            else:
                ids.append(np.asarray([self.vocab.dot_id], dtype=np.int64))
                scores.append(np.asarray([self.dot_boost]))

        if state.phase == "value" and state.seen_dot:
            expected = (
                analysis.expected_decimals
                if analysis and analysis.expected_decimals
                else 4
            )
            if state.digits_after_dot >= expected:
                stop = self.terminate_boost * (
                    1.0 + 0.3 * (state.digits_after_dot - expected)
                )
            else:
                stop = self.premature_stop_penalty * (
                    expected - state.digits_after_dot
                )
            ids.append(
                np.asarray(
                    [self.vocab.newline_id, self.vocab.specials.eot],
                    dtype=np.int64,
                )
            )
            scores.append(np.asarray([stop, stop - 1.0]))
        if not ids:
            return SparseScores.empty()
        return SparseScores(np.concatenate(ids), np.concatenate(scores))

    # ------------------------------------------------------------------ #
    def expected_decimals(self, analysis: FormatAnalysis | None) -> int:
        """Demonstrated fraction length (default 4 when undemonstrated)."""
        if analysis and analysis.expected_decimals:
            return analysis.expected_decimals
        return 4

    def digit_noise(
        self,
        generated_strings: list[str],
        analysis: FormatAnalysis | None = None,
    ) -> SparseScores:
        """The diffuse digit-chunk *distribution* (the Table II breadth).

        Returns a normalized probability distribution (as ``scores``) over
        digit tokens whose string length fits the decimals the
        demonstrated format still needs — chunks that would overshoot feel
        unnatural and are excluded.  The caller mixes this with the
        content distribution at a position-scheduled weight.

        Returns an empty score set outside the fraction region or when the
        value is already complete.
        """
        state = self.value_state(generated_strings)
        if state.phase != "value" or not state.seen_dot:
            return SparseScores.empty()
        remaining = self.expected_decimals(analysis) - state.digits_after_dot
        if remaining <= 0:
            return SparseScores.empty()
        lengths = self._digit_lengths
        preferred = min(3, remaining)
        fit = lengths <= remaining
        if not fit.any():
            return SparseScores.empty()
        fit_ids = self._digit_ids[fit]
        logits = self.digit_jitter * self._jitter[fit].copy()
        logits -= 3.5 * (lengths[fit] != preferred)
        if state.digits_after_dot == 0 and analysis:
            # The first fraction chunk pins the value's magnitude: even the
            # "noise" alternatives cluster around the prefixes of the
            # demonstrated values (Figure 3) rather than spreading over all
            # thousand chunks uniformly.
            prefixes = {p[:2] for p in analysis.fraction_prefixes if p}
            singles = {p[0] for p in analysis.fraction_prefixes if p}
            if prefixes or singles:
                strings = [self.vocab.string_of(int(i)) for i in fit_ids]
                affinity = np.zeros(fit_ids.size)
                for k, s in enumerate(strings):
                    if s[:2] in prefixes:
                        affinity[k] = 8.0
                    elif s[0] in singles:
                        affinity[k] = 4.0
                logits = logits + affinity
        z = logits - logits.max()
        q = np.exp(z)
        q /= q.sum()
        return SparseScores(fit_ids, q)


class PriorScorer:
    """Frozen pretraining prior plus weak magnitude "world knowledge".

    * Every token carries a fixed hash-derived bias (pretraining
      idiosyncrasy, constant across prompts and seeds).
    * If the context mentions a problem-size keyword, the *first* value
      token is nudged toward the plausible magnitude: sizes at the small
      end of the scale have sub-second runtimes (leading ``0``), the big
      ones have single-digit-seconds (leading ``1``-``9``).
    """

    #: Size keyword -> preferred leading-digit class ("zero" or "nonzero").
    SIZE_MAGNITUDE = {
        "S": "zero",
        "SM": "zero",
        "M": "zero",
        "ML": "nonzero",
        "L": "nonzero",
        "XL": "nonzero",
    }

    def __init__(
        self,
        vocab: Vocabulary,
        bias_scale: float = 0.35,
        magnitude_boost: float = 2.5,
        prior_seed: int = 13,
    ):
        self.vocab = vocab
        self.bias_scale = bias_scale
        self.magnitude_boost = magnitude_boost
        self._bias = bias_scale * rng_from(
            prior_seed, "pretrain-bias"
        ).standard_normal(len(vocab))

    def bias_for(self, ids: np.ndarray) -> np.ndarray:
        """The frozen per-token bias restricted to ``ids``."""
        return self._bias[np.asarray(ids, dtype=np.int64)]

    def first_token_magnitude(self, size: str | None) -> SparseScores:
        """Magnitude nudge for the first value token given the size keyword."""
        if size is None or size not in self.SIZE_MAGNITUDE:
            return SparseScores.empty()
        kind = self.SIZE_MAGNITUDE[size]
        zero_id = self.vocab.id_of("0")
        nonzero = np.asarray(
            [self.vocab.id_of(str(d)) for d in range(1, 10)], dtype=np.int64
        )
        if kind == "zero":
            return SparseScores(
                np.asarray([zero_id], dtype=np.int64),
                np.asarray([self.magnitude_boost]),
            )
        return SparseScores(
            nonzero, np.full(nonzero.size, self.magnitude_boost / 3.0)
        )
