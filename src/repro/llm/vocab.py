"""Deterministic vocabulary for the surrogate LM.

The vocabulary is built once, in a fixed order, so token ids are stable
across runs and machines:

1. special tokens (Llama-3-style chat markers);
2. all 1-, 2- and 3-digit strings (1110 tokens) — the number pieces whose
   combinatorics Table II analyses;
3. punctuation/whitespace pieces;
4. a fixed English + HPC-domain word lexicon, each word in bare and
   leading-space form (GPT/Llama tokenizers mark word starts with a space);
5. 256 byte-fallback tokens ``<0xNN>`` guaranteeing any text round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VocabularyError

__all__ = ["SpecialTokens", "Vocabulary", "build_default_vocabulary", "WORD_LEXICON"]


@dataclass(frozen=True)
class SpecialTokens:
    """Ids of the structural chat tokens."""

    begin_of_text: int
    end_of_text: int
    start_header: int
    end_header: int
    eot: int  # end of turn


_SPECIAL_STRINGS = (
    "<|begin_of_text|>",
    "<|end_of_text|>",
    "<|start_header_id|>",
    "<|end_header_id|>",
    "<|eot_id|>",
)

_PUNCTUATION = (
    "\n", "\n\n", " ", "  ", ".", ",", ":", ";", "'", '"', "!", "?",
    "(", ")", "[", "]", "{", "}", "-", "--", "_", "*", "**", "/", "\\",
    "=", "+", "<", ">", "#", "%", "&", "|", "~", "`",
    ". ", ", ", ": ", " .", " ,", " :",
)

#: Words common in English plus every domain word the prompt templates use.
#: Extending this list only *improves* tokenization compactness — anything
#: missing falls back to characters/bytes and still round-trips.
WORD_LEXICON: tuple[str, ...] = tuple(
    sorted(
        set(
            """
            a an the is are was were be been being and or not no yes of to in
            for on with by as at from into over under between without within
            this that these those it its they them their there here you your
            yours we our i me my he she his her will would can could may might
            must shall should do does did done have has had having if then
            else when where which what who whom whose why how all any each
            every some few more most other another such only own same so than
            too very just also but because while after before during about
            against again further once both number numbers value values lower
            higher better worse best worst smallest largest small large
            provide provided provides following follow follows followed
            example examples demonstrate demonstrated demonstrates answer
            answers respond response format formats formatted infer inferred
            based need needs needed given problem problems consider considers
            considered user users describe described describes description
            specific context contexts alter altered propose proposed
            configuration configurations hyperparameter hyperparameters
            performance objective objectives runtime runtimes program
            programs compiled compiler source code segment optimization
            optimizations optimize optimized loop loops nest nests tile tiles
            tiled tiling factor factors size sizes input inputs output
            outputs array arrays scalar constant alpha data dataset datasets
            regression feature features rich text based csv represent
            represented representation representing measure measures relative
            relativistic invariant denotes denote sorted smallest largest
            packed packing pack interchange interchanged interchangeable
            outer middle inner outermost innermost first second third two
            three independently independent optional optionally component
            bucket buckets discretized numbered fastest slowest label
            labeled labels index achieve achieves proposing target
            classification Performance

            components tunable options option space spaces parameter
            parameters please complete completion thought process explain
            explanation True False S SM M ML L XL System Instructions
            The Performance Hyperparameter Here Please Do NOT ONLY Tunable
            Sizes Size A B C N code pseudocode
            """.split()
        )
    )
)


class Vocabulary:
    """An immutable bidirectional token-string/id mapping."""

    def __init__(self, tokens: list[str]):
        if len(set(tokens)) != len(tokens):
            dupes = sorted({t for t in tokens if tokens.count(t) > 1})
            raise VocabularyError(f"duplicate token strings: {dupes[:5]}")
        self._tokens = tuple(tokens)
        self._ids = {t: i for i, t in enumerate(self._tokens)}
        try:
            self.specials = SpecialTokens(
                begin_of_text=self._ids["<|begin_of_text|>"],
                end_of_text=self._ids["<|end_of_text|>"],
                start_header=self._ids["<|start_header_id|>"],
                end_header=self._ids["<|end_header_id|>"],
                eot=self._ids["<|eot_id|>"],
            )
        except KeyError as exc:
            raise VocabularyError(f"missing special token: {exc}") from None
        self._byte_ids = {}
        for b in range(256):
            tok = f"<0x{b:02X}>"
            if tok not in self._ids:
                raise VocabularyError(f"missing byte-fallback token {tok}")
            self._byte_ids[b] = self._ids[tok]
        self._digit_ids = tuple(
            i
            for i, t in enumerate(self._tokens)
            if t.isdigit() and len(t) <= 3
        )

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def id_of(self, token: str) -> int:
        """Id of an exact token string."""
        try:
            return self._ids[token]
        except KeyError:
            raise VocabularyError(f"token {token!r} not in vocabulary") from None

    def string_of(self, token_id: int) -> str:
        """Token string for an id (byte tokens render as ``<0xNN>``)."""
        if not 0 <= token_id < len(self._tokens):
            raise VocabularyError(
                f"token id {token_id} out of range ({len(self._tokens)})"
            )
        return self._tokens[token_id]

    def strings_of(self, token_ids) -> tuple[str, ...]:
        """Token strings for a sequence of ids (bulk :meth:`string_of`).

        One bounds check for the whole batch instead of per id; the trace
        post-processing layer converts every recorded candidate set and is
        by far the heaviest ``string_of`` caller.
        """
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.size and not (0 <= int(ids.min()) and int(ids.max()) < len(self._tokens)):
            raise VocabularyError(
                f"token id out of range ({len(self._tokens)})"
            )
        tokens = self._tokens
        return tuple(tokens[i] for i in ids.tolist())

    def byte_id(self, byte: int) -> int:
        """Id of the byte-fallback token for ``byte``."""
        if not 0 <= byte < 256:
            raise VocabularyError(f"byte must be in [0, 256), got {byte}")
        return self._byte_ids[byte]

    def is_byte(self, token_id: int) -> bool:
        """Whether an id is a byte-fallback token."""
        s = self.string_of(token_id)
        return len(s) == 6 and s.startswith("<0x") and s.endswith(">")

    def is_special(self, token_id: int) -> bool:
        """Whether an id is a structural special token."""
        sp = self.specials
        return token_id in (
            sp.begin_of_text,
            sp.end_of_text,
            sp.start_header,
            sp.end_header,
            sp.eot,
        )

    def decode_bytes(self, token_id: int) -> bytes:
        """The raw byte of a byte-fallback token."""
        s = self.string_of(token_id)
        if not self.is_byte(token_id):
            raise VocabularyError(f"token {s!r} is not a byte token")
        return bytes([int(s[3:5], 16)])

    @property
    def digit_token_ids(self) -> tuple[int, ...]:
        """Ids of all pure-digit tokens (1, 2, and 3 digit strings)."""
        return self._digit_ids

    @property
    def dot_id(self) -> int:
        """Id of the ``"."`` token."""
        return self.id_of(".")

    @property
    def newline_id(self) -> int:
        """Id of the ``"\\n"`` token."""
        return self.id_of("\n")


def build_default_vocabulary() -> Vocabulary:
    """Construct the library's canonical vocabulary (deterministic order)."""
    tokens: list[str] = list(_SPECIAL_STRINGS)
    # 1-, 2-, 3-digit strings, shortest first, numeric order.
    for width in (1, 2, 3):
        tokens.extend(str(i).zfill(width) for i in range(10**width))
    seen = set(tokens)
    for p in _PUNCTUATION:
        if p not in seen:
            tokens.append(p)
            seen.add(p)
    for word in WORD_LEXICON:
        for variant in (word, " " + word):
            if variant not in seen:
                tokens.append(variant)
                seen.add(variant)
    # Single printable ASCII characters (bare and space-prefixed letters)
    # give a graceful char-level fallback before bytes.
    for code in range(33, 127):
        ch = chr(code)
        if ch not in seen:
            tokens.append(ch)
            seen.add(ch)
    for b in range(256):
        tok = f"<0x{b:02X}>"
        if tok not in seen:
            tokens.append(tok)
            seen.add(tok)
    return Vocabulary(tokens)
