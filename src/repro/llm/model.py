"""The surrogate language model: a scorer mixture with sparse logits.

:class:`SurrogateLM` composes the four scorers of
:mod:`repro.llm.scorers` into next-token logits over a sparse support (the
"nonzero logit" token set the paper records).  Component weights are
exposed in :class:`LMConfig` both for calibration and for the ablation
benchmarks (knocking out the induction head, the format prior, ...).

Determinism contract: logits depend only on ``(vocab, config, model_seed,
context, sample_seed, step)``.  Across *sampling* seeds only a small jitter
changes — reproducing the paper's observation that "different seeds often
produce identical token sets with slightly altered logit probabilities".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import GenerationError
from repro.llm.prefix_cache import PreparedPrefix, token_fingerprint
from repro.llm.scorers import (
    FormatAnalysis,
    FormatScorer,
    InductionScorer,
    PriorScorer,
    RecencyUnigramScorer,
    SparseScores,
)
from repro.llm.vocab import Vocabulary
from repro.obs import get_tracer
from repro.utils.rng import rng_from

__all__ = ["LMConfig", "SurrogateLM"]


@dataclass(frozen=True)
class LMConfig:
    """Mixture weights and support shaping for the surrogate LM."""

    induction_weight: float = 1.0
    unigram_weight: float = 0.35
    format_weight: float = 1.0
    prior_weight: float = 1.0
    #: Multiplier on induction scores before the value has started: the
    #: assistant-turn boundary (special header tokens) weakens plain
    #: suffix-copying, letting instruction-following pick the answer format.
    preamble_induction_damping: float = 0.3
    #: Induction decisiveness fades by this many logits per fraction digit
    #: already emitted: leading digits parrot the context tightly, trailing
    #: digits diffuse — which is why "very few exact copies are generated"
    #: while values still cluster on ICL prefixes.
    induction_value_decay: float = 1.3
    #: Probability mass diverted to the diffuse digit-chunk distribution at
    #: fraction positions: the first fraction chunk (magnitude-critical),
    #: middle chunks, and the final digits.  This schedule is what shapes
    #: Table II's per-position "selectable token" counts and keeps exact
    #: ICL copies rare while generations still cluster on ICL prefixes.
    noise_eps_first: float = 0.14
    noise_eps_mid: float = 0.60
    noise_eps_last: float = 0.75
    #: Std-dev of the per-sampling-seed logit jitter.
    seed_jitter: float = 0.06
    #: Tokens with softmax probability below this floor are dropped from
    #: the recorded support (they are the "zero logit" tokens).
    support_floor: float = 3e-5
    #: Hard cap on recorded support size per step.
    max_support: int = 1200
    #: Component toggles for ablation studies.
    use_induction: bool = True
    use_unigram: bool = True
    use_format: bool = True
    use_prior: bool = True

    def __post_init__(self):
        if not 0 < self.support_floor < 1:
            raise ValueError(
                f"support_floor must be in (0,1), got {self.support_floor}"
            )
        if self.max_support < 1:
            raise ValueError(f"max_support must be >= 1, got {self.max_support}")

    def ablate(self, **toggles: bool) -> "LMConfig":
        """Return a config with components switched off/on."""
        return replace(self, **toggles)


class SurrogateLM:
    """Sparse-logit next-token model over a fixed vocabulary.

    Parameters
    ----------
    vocab:
        Token vocabulary shared with the tokenizer.
    config:
        Mixture weights (defaults calibrated against the paper's Table II).
    model_seed:
        Freezes the hash-derived "pretraining" components (format jitter
        and prior bias).  Distinct model seeds are distinct "checkpoints".
    """

    def __init__(
        self,
        vocab: Vocabulary,
        config: LMConfig | None = None,
        model_seed: int = 0,
    ):
        self.vocab = vocab
        self.config = config or LMConfig()
        self.model_seed = int(model_seed)
        self.induction = InductionScorer()
        self.unigram = RecencyUnigramScorer()
        self.format = FormatScorer(vocab, jitter_seed=model_seed * 1000 + 7)
        self.prior = PriorScorer(vocab, prior_seed=model_seed * 1000 + 13)
        self._size_ids = {}
        for size in PriorScorer.SIZE_MAGNITUDE:
            for variant in (" " + size, size):
                if variant in vocab:
                    self._size_ids.setdefault(vocab.id_of(variant), size)

    # ------------------------------------------------------------------ #
    def _size_token_counts(self, ctx: np.ndarray) -> dict[str, int]:
        """Problem-size keyword frequencies over a token-id array."""
        counts: dict[str, int] = {}
        ids, freq = np.unique(ctx, return_counts=True)
        for tid, f in zip(ids, freq):
            size = self._size_ids.get(int(tid))
            if size is not None:
                counts[size] = counts.get(size, 0) + int(f)
        return counts

    def detect_size(
        self, context: np.ndarray, prefix: PreparedPrefix | None = None
    ) -> str | None:
        """Guess the problem-size keyword from token frequency.

        The task size appears once per ICL example (``size is SM``) while
        other sizes only occur in the problem description's enumeration, so
        the most frequent size token wins.  With a prepared ``prefix`` only
        the suffix delta is counted (the argmax is order-independent, so
        the result matches the cold path exactly).
        """
        ctx = np.asarray(context, dtype=np.int64)
        if ctx.size == 0:
            return None
        if prefix is not None and prefix.length <= ctx.size:
            counts = dict(prefix.size_counts)
            tail = ctx[prefix.length :]
            if tail.size:
                for size, f in self._size_token_counts(tail).items():
                    counts[size] = counts.get(size, 0) + f
        else:
            counts = self._size_token_counts(ctx)
        if not counts:
            return None
        return max(counts, key=lambda s: (counts[s], s))

    # ------------------------------------------------------------------ #
    def prepare_prefix(self, prefix_ids: np.ndarray) -> PreparedPrefix:
        """Snapshot the prepared state of a fixed prompt prefix.

        The snapshot is immutable and reusable across every prompt that
        extends the prefix, every sampling seed, and every thread; see
        :mod:`repro.llm.prefix_cache` for the determinism contract.
        """
        ids = np.array(prefix_ids, dtype=np.int64, copy=True)
        ids.setflags(write=False)
        with get_tracer().span(
            "llm.prepare_prefix", n_prefix_tokens=int(ids.size)
        ):
            return PreparedPrefix(
                ids=ids,
                fingerprint=token_fingerprint(ids),
                induction=self.induction.build_index(ids),
                unigram=self.unigram.build_index(ids),
                format_index=self.format.build_prefix(ids),
                size_counts=self._size_token_counts(ids),
            )

    def prepare(
        self,
        prompt_ids: np.ndarray,
        prefix: PreparedPrefix | None = None,
    ) -> FormatAnalysis:
        """One-time prompt analysis (cue anchoring, demonstrated format).

        With ``prefix`` (a :meth:`prepare_prefix` snapshot for a leading
        slice of the prompt) only the suffix delta is scanned; the result
        is identical to a cold analysis.
        """
        ids = np.asarray(prompt_ids, dtype=np.int64)
        reused = prefix is not None and prefix.length <= ids.size
        with get_tracer().span(
            "llm.prepare",
            n_prompt_tokens=int(ids.size),
            prefix_reused=bool(reused),
        ):
            return self.format.analyze_prompt(
                ids, prefix=prefix.format_index if reused else None
            )

    def next_token_logits(
        self,
        context: np.ndarray,
        generated_strings: list[str],
        sample_seed: int,
        step: int,
        analysis: FormatAnalysis | None = None,
        prefix: PreparedPrefix | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sparse logits for the next token.

        Parameters
        ----------
        context:
            All token ids so far (prompt + generated).
        generated_strings:
            Surface strings of the tokens generated so far this turn (the
            format scorer's state).
        sample_seed:
            The sampling seed (drives only the small jitter).
        step:
            0-based generation step index.
        analysis:
            Cached :meth:`prepare` result for the prompt (recomputed from
            the context when omitted).
        prefix:
            Optional :meth:`prepare_prefix` snapshot for a leading slice
            of the context: scorers then process only the suffix delta.
            Bit-identical to the cold path for every seed (the prefix-
            cache determinism contract).

        Returns
        -------
        (ids, logits):
            Token ids (sorted ascending) and their logits, restricted to
            the "nonzero" support after the probability floor.
        """
        ctx = np.asarray(context, dtype=np.int64)
        if ctx.size == 0:
            raise GenerationError("cannot score an empty context")
        ids, probs = self._content_probs(ctx, generated_strings, analysis, prefix)
        if probs is None:
            # Degenerate context: fall back to ending the turn.
            return ids, np.zeros(1)
        return self._finalize_logits(ids, probs, sample_seed, step)

    def next_token_logits_batch(
        self,
        context: np.ndarray,
        generated_strings: list[str],
        sample_seeds: list[int],
        step: int,
        analysis: FormatAnalysis | None = None,
        prefix: PreparedPrefix | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Sparse logits for one context under many sampling seeds.

        The seed-independent content pass (scorer mixture, prior bias,
        noise mix) runs once; the per-seed jitter is drawn for all seeds
        and applied in a single vectorized numpy pass over a
        ``(n_seeds, support)`` matrix.  Every row is bit-identical to the
        corresponding scalar :meth:`next_token_logits` call — the matrix
        ops (correctly-rounded ``+``/``*``, exact ``max``) cannot diverge
        from their 1-D counterparts, and the row-wise softmax/floor runs
        on contiguous rows exactly as the scalar path does.
        """
        cfg = self.config
        ctx = np.asarray(context, dtype=np.int64)
        if ctx.size == 0:
            raise GenerationError("cannot score an empty context")
        seeds = [int(s) for s in sample_seeds]
        if not seeds:
            return []
        ids, probs = self._content_probs(ctx, generated_strings, analysis, prefix)
        if probs is None:
            return [(ids, np.zeros(1)) for _ in seeds]
        if cfg.seed_jitter > 0 and len(seeds) > 1:
            base = np.log(probs + 1e-300)
            jitter = np.stack(
                [
                    rng_from(
                        self.model_seed, "seed-jitter", s, int(step)
                    ).standard_normal(ids.size)
                    for s in seeds
                ]
            )
            logit_rows = base[np.newaxis, :] + cfg.seed_jitter * jitter
            row_max = logit_rows.max(axis=1)
            out = []
            for k in range(len(seeds)):
                logits = logit_rows[k]
                z = logits - row_max[k]
                row_probs = np.exp(z)
                row_probs /= row_probs.sum()
                out.append(self._select_support(ids, logits, row_probs))
            return out
        return [self._finalize_logits(ids, probs, s, step) for s in seeds]

    # ------------------------------------------------------------------ #
    def _content_probs(
        self,
        ctx: np.ndarray,
        generated_strings: list[str],
        analysis: FormatAnalysis | None,
        prefix: PreparedPrefix | None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Seed-independent content distribution over the sparse support.

        Returns ``(ids, probs)`` after the noise mix; ``probs`` is None
        for the degenerate fall-back-to-eot case (``ids`` then holds the
        eot token alone).
        """
        cfg = self.config
        if analysis is None and cfg.use_format:
            n_gen = len(generated_strings)
            prompt = ctx[: ctx.size - n_gen] if n_gen else ctx
            fmt_prefix = None
            if prefix is not None and prefix.length <= prompt.size:
                fmt_prefix = prefix.format_index
            analysis = self.format.analyze_prompt(prompt, prefix=fmt_prefix)

        value_started = any(s.isdigit() for s in generated_strings)
        parts: list[SparseScores] = []
        if cfg.use_induction:
            state = self.format.value_state(generated_strings)
            shift = -cfg.induction_value_decay * state.digits_after_dot
            if prefix is not None:
                ind = self.induction.score_indexed(
                    ctx, prefix.induction, prefix.length, offset_shift=shift
                )
            else:
                ind = self.induction.score(ctx, offset_shift=shift)
            w = cfg.induction_weight
            if not value_started:
                w *= cfg.preamble_induction_damping
            parts.append(SparseScores(ind.ids, w * ind.scores))
        if cfg.use_unigram:
            if prefix is not None:
                uni = self.unigram.score_indexed(
                    ctx, prefix.unigram, prefix.length
                )
            else:
                uni = self.unigram.score(ctx)
            parts.append(SparseScores(uni.ids, cfg.unigram_weight * uni.scores))
        if cfg.use_format:
            fmt = self.format.score(generated_strings, analysis)
            parts.append(SparseScores(fmt.ids, cfg.format_weight * fmt.scores))
        if cfg.use_prior and not value_started:
            # Magnitude hint applies to the first value token only.
            mag = self.prior.first_token_magnitude(
                self.detect_size(ctx, prefix=prefix)
            )
            parts.append(SparseScores(mag.ids, cfg.prior_weight * mag.scores))

        merged = SparseScores.accumulate(parts)
        if merged.ids.size == 0:
            eot = np.asarray([self.vocab.specials.eot], dtype=np.int64)
            return eot, None

        content_logits = merged.scores
        if cfg.use_prior:
            content_logits = content_logits + cfg.prior_weight * self.prior.bias_for(
                merged.ids
            )
        z = content_logits - content_logits.max()
        p_content = np.exp(z)
        p_content /= p_content.sum()
        ids = merged.ids
        probs = p_content

        # Mix in the diffuse digit-chunk distribution at the scheduled
        # fraction-position weight (see LMConfig.noise_eps_*).
        eps = self._noise_eps(generated_strings, analysis) if cfg.use_format else 0.0
        if eps > 0.0:
            noise = self.format.digit_noise(generated_strings, analysis)
            if noise.ids.size:
                both = SparseScores.accumulate(
                    [
                        SparseScores(ids, (1.0 - eps) * probs),
                        SparseScores(noise.ids, eps * noise.scores),
                    ]
                )
                ids, probs = both.ids, both.scores
        return ids, probs

    def _finalize_logits(
        self, ids: np.ndarray, probs: np.ndarray, sample_seed: int, step: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-seed jitter, re-softmax, and support selection."""
        cfg = self.config
        logits = np.log(probs + 1e-300)
        if cfg.seed_jitter > 0:
            jitter_rng = rng_from(
                self.model_seed, "seed-jitter", int(sample_seed), int(step)
            )
            logits = logits + cfg.seed_jitter * jitter_rng.standard_normal(
                ids.size
            )
            z = logits - logits.max()
            probs = np.exp(z)
            probs /= probs.sum()
        return self._select_support(ids, logits, probs)

    def _select_support(
        self, ids: np.ndarray, logits: np.ndarray, probs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probability floor + support cap -> the recorded "nonzero" set."""
        cfg = self.config
        keep = probs >= cfg.support_floor
        if not keep.any():
            keep[np.argmax(probs)] = True
        ids, logits = ids[keep], logits[keep]
        if ids.size > cfg.max_support:
            top = np.argsort(logits)[-cfg.max_support :]
            ids, logits = ids[top], logits[top]
        order = np.argsort(ids)
        return ids[order], logits[order]

    def _noise_eps(
        self, generated_strings: list[str], analysis
    ) -> float:
        """The scheduled digit-noise mixture weight for this position."""
        cfg = self.config
        state = self.format.value_state(generated_strings)
        if state.phase != "value" or not state.seen_dot:
            return 0.0
        expected = self.format.expected_decimals(analysis)
        remaining = expected - state.digits_after_dot
        if remaining <= 0:
            return 0.0
        if state.digits_after_dot == 0:
            return cfg.noise_eps_first
        if remaining == 1:
            return cfg.noise_eps_last
        return cfg.noise_eps_mid
