"""Immutable prepared-state snapshots for shared prompt prefixes.

Every prompt a grid sweep (or the serving layer) scores shares one long
ICL few-shot prefix and differs only in a short query suffix, yet the
surrogate LM's hot path — suffix-match window scans, recency-unigram
statistics, format-cue analysis, size detection — rebuilds its prepared
state from the full prompt on every call.  This module snapshots that
state once per *tokenized prefix* and lets every extending prompt process
only the suffix delta:

* :class:`PreparedPrefix` — a frozen bundle of the per-scorer indexes
  (:meth:`InductionScorer.build_index`,
  :meth:`RecencyUnigramScorer.build_index`,
  :meth:`FormatScorer.build_prefix`) plus the prefix's size-token counts,
  keyed by the prefix's token fingerprint.
* :class:`PrefixCache` — a small thread-safe LRU from fingerprint to
  snapshot, owned by each :class:`~repro.core.surrogate
  .DiscriminativeSurrogate` (and shareable across surrogates that wrap
  the same model).

Determinism contract (the hard constraint, pinned by
``tests/test_llm_prefix_cache.py`` and the hypothesis property test):
scoring through a snapshot is **bit-identical** to the cold path for
every sampling seed.  The indexed scorer paths achieve this by combining
index-listed prefix matches with a boundary delta scan into exactly the
arrays the cold scan produces, and by replaying accumulations in the cold
path's element order; nothing downstream of the scorers can tell the two
paths apart.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.llm.scorers import FormatPrefixIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model -> cache)
    from repro.llm.model import SurrogateLM

__all__ = ["PreparedPrefix", "PrefixCache", "token_fingerprint"]


def token_fingerprint(token_ids: np.ndarray) -> str:
    """Stable fingerprint of a token-id sequence (the snapshot key)."""
    ids = np.ascontiguousarray(token_ids, dtype=np.int64)
    return hashlib.blake2b(ids.tobytes(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class PreparedPrefix:
    """Frozen prepared state of one tokenized prompt prefix.

    Attributes
    ----------
    ids:
        The prefix token ids (read-only copy; :meth:`extends` validates
        candidate prompts against it).
    fingerprint:
        :func:`token_fingerprint` of ``ids`` (the cache key).
    induction:
        Suffix-match window index (n-gram length -> window bytes ->
        sorted start positions).
    unigram:
        ``(unique_tokens, inverse)`` factorization of the prefix.
    format_index:
        Parsed format-cue records (the FSM's prepared state).
    size_counts:
        Problem-size keyword frequencies inside the prefix.
    """

    ids: np.ndarray
    fingerprint: str
    induction: Mapping[int, Mapping[bytes, np.ndarray]]
    unigram: tuple[np.ndarray, np.ndarray]
    format_index: FormatPrefixIndex
    size_counts: Mapping[str, int]

    @property
    def length(self) -> int:
        """Prefix length in tokens."""
        return int(self.ids.size)

    def extends(self, prompt_ids: np.ndarray) -> bool:
        """Whether ``prompt_ids`` starts with this snapshot's prefix."""
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        return prompt.size >= self.length and bool(
            np.array_equal(prompt[: self.length], self.ids)
        )


class PrefixCache:
    """Thread-safe LRU of :class:`PreparedPrefix` snapshots for one model.

    Deliberately not :class:`repro.serve.cache.LRUCache`: the llm layer
    must stay importable without the serving stack, and the eviction unit
    here (a multi-index snapshot) is worth its own hit/miss accounting in
    ``obs`` metrics.
    """

    def __init__(self, model: "SurrogateLM", capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.model = model
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, PreparedPrefix] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def snapshot(self) -> tuple[int, int]:
        """Consistent ``(hits, misses)`` pair taken under one lock.

        The separate ``hits``/``misses`` properties each lock, but reading
        them back-to-back can tear around a concurrent lookup; stats
        snapshots use this to keep hit totals internally consistent.
        """
        with self._lock:
            return (self._hits, self._misses)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    # ------------------------------------------------------------------ #
    def prepared(
        self, prompt_ids: np.ndarray, prefix_len: int
    ) -> PreparedPrefix | None:
        """Snapshot for the first ``prefix_len`` tokens of ``prompt_ids``.

        Returns ``None`` for degenerate splits (``prefix_len <= 0`` or
        beyond the prompt).  On a miss the snapshot is built through
        :meth:`SurrogateLM.prepare_prefix` and cached.
        """
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        prefix_len = int(prefix_len)
        if prefix_len <= 0 or prefix_len > prompt.size:
            return None
        prefix_ids = prompt[:prefix_len]
        key = token_fingerprint(prefix_ids)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry
            self._misses += 1
        # Build outside the lock: snapshots are pure functions of the
        # prefix, so a racing duplicate build is wasted work, not a
        # correctness problem.
        entry = self.model.prepare_prefix(prefix_ids)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry
