"""The language-model substrate: tokenizer, surrogate LM, generation engine.

The paper runs Meta-Llama-3.1-8B-Instruct locally to obtain full access to
generation logits.  Offline, this package substitutes a *surrogate LM*
(:class:`SurrogateLM`) built from the mechanisms that drive in-context
numeric prediction in transformer LMs — induction-head suffix matching,
recency-weighted prompt statistics, instruction-tuned format following, and
a fixed pretraining prior — with full per-step sparse logits recorded by
the :class:`GenerationEngine`.  DESIGN.md documents why this substitution
preserves every analysis the paper performs.

The tokenizer mirrors the property of Llama-3's tokenizer that the paper's
Table II hinges on: digit runs are split into chunks of up to three digits,
so a decimal like ``0.0022155`` becomes ``0 | . | 002 | 215 | 5``.
"""

from repro.llm.vocab import SpecialTokens, Vocabulary, build_default_vocabulary
from repro.llm.tokenizer import Tokenizer, chunk_digits
from repro.llm.scorers import (
    FormatScorer,
    InductionScorer,
    PriorScorer,
    RecencyUnigramScorer,
    SparseScores,
)
from repro.llm.prefix_cache import PrefixCache, PreparedPrefix, token_fingerprint
from repro.llm.model import LMConfig, SurrogateLM
from repro.llm.sampling import SamplingParams, sample_token
from repro.llm.trace import GenerationStep, GenerationTrace
from repro.llm.engine import GenerationEngine

__all__ = [
    "Vocabulary",
    "SpecialTokens",
    "build_default_vocabulary",
    "Tokenizer",
    "chunk_digits",
    "SparseScores",
    "InductionScorer",
    "RecencyUnigramScorer",
    "FormatScorer",
    "PriorScorer",
    "PrefixCache",
    "PreparedPrefix",
    "token_fingerprint",
    "LMConfig",
    "SurrogateLM",
    "SamplingParams",
    "sample_token",
    "GenerationStep",
    "GenerationTrace",
    "GenerationEngine",
]
