"""The generation engine: autoregressive decoding with full logit capture."""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError
from repro.llm.model import SurrogateLM
from repro.obs import get_tracer
from repro.llm.sampling import SamplingParams, sample_token
from repro.llm.trace import GenerationStep, GenerationTrace
from repro.utils.rng import rng_from

__all__ = ["GenerationEngine"]


class GenerationEngine:
    """Drive a :class:`SurrogateLM` autoregressively, recording every step.

    Parameters
    ----------
    model:
        The surrogate LM.
    sampling:
        Decoding hyperparameters shared by all generations.
    max_new_tokens:
        Hard cap per generation (the discriminative-surrogate responses
        are a single short value string).
    """

    def __init__(
        self,
        model: SurrogateLM,
        sampling: SamplingParams | None = None,
        max_new_tokens: int = 16,
    ):
        if max_new_tokens < 1:
            raise GenerationError(
                f"max_new_tokens must be >= 1, got {max_new_tokens}"
            )
        self.model = model
        self.sampling = sampling or SamplingParams()
        self.max_new_tokens = max_new_tokens

    def generate(
        self, prompt_ids, seed: int = 0, analysis=None
    ) -> GenerationTrace:
        """Generate a completion for ``prompt_ids`` under ``seed``.

        Decoding stops at the first end-of-turn token, at a newline after
        the value has begun, or at ``max_new_tokens``.

        Determinism contract: generation is a pure function of
        ``(prompt_ids, seed, self.sampling, self.max_new_tokens)`` plus the
        model's frozen identity (vocabulary, config, ``model_seed``).
        Identical (prompt, seed, sampling) triples are bit-reproducible —
        every step's candidate ids, logits, and sampled choice are equal
        across repeated calls and across processes.  The result cache in
        :mod:`repro.serve` memoizes full predictions on exactly this key,
        and ``tests/test_engine_determinism.py`` pins the contract.

        Parameters
        ----------
        prompt_ids:
            Token ids of the prompt.
        seed:
            Sampling seed (drives token choice and the per-seed logit
            jitter; nothing else).
        analysis:
            Optional precomputed :meth:`SurrogateLM.prepare` result for
            this exact prompt.  Passing it skips the per-call prompt
            analysis (the serving layer's prepare cache); it must have
            been computed from ``prompt_ids`` or generations may differ.
        """
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        if prompt.size == 0:
            raise GenerationError("cannot generate from an empty prompt")
        with get_tracer().span(
            "llm.generate", seed=int(seed), n_prompt_tokens=int(prompt.size)
        ) as span:
            vocab = self.model.vocab
            rng = rng_from(seed, "sampling")
            trace = GenerationTrace(prompt_ids=prompt, seed=int(seed))
            context = prompt.copy()
            generated_strings: list[str] = []
            value_started = False
            if analysis is None:
                analysis = self.model.prepare(prompt)

            for step in range(self.max_new_tokens):
                ids, logits = self.model.next_token_logits(
                    context,
                    generated_strings,
                    sample_seed=seed,
                    step=step,
                    analysis=analysis,
                )
                pos = sample_token(ids, logits, self.sampling, rng)
                trace.steps.append(
                    GenerationStep(
                        candidate_ids=ids, logits=logits, chosen_position=pos
                    )
                )
                chosen = int(ids[pos])
                token_str = vocab.string_of(chosen)
                context = np.append(context, chosen)
                generated_strings.append(token_str)

                if chosen == vocab.specials.eot or chosen == vocab.specials.end_of_text:
                    break
                if token_str.isdigit():
                    value_started = True
                elif value_started and not (token_str == "." or token_str.isdigit()):
                    # Value terminated by a non-numeric token (e.g. newline).
                    break
            span.set(n_new_tokens=len(trace.steps))
            return trace
