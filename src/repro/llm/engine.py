"""The generation engine: autoregressive decoding with full logit capture."""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError
from repro.llm.model import SurrogateLM
from repro.obs import get_tracer
from repro.llm.sampling import SamplingParams, sample_token
from repro.llm.trace import GenerationStep, GenerationTrace
from repro.utils.rng import rng_from

__all__ = ["GenerationEngine"]


class GenerationEngine:
    """Drive a :class:`SurrogateLM` autoregressively, recording every step.

    Parameters
    ----------
    model:
        The surrogate LM.
    sampling:
        Decoding hyperparameters shared by all generations.
    max_new_tokens:
        Hard cap per generation (the discriminative-surrogate responses
        are a single short value string).
    """

    def __init__(
        self,
        model: SurrogateLM,
        sampling: SamplingParams | None = None,
        max_new_tokens: int = 16,
    ):
        if max_new_tokens < 1:
            raise GenerationError(
                f"max_new_tokens must be >= 1, got {max_new_tokens}"
            )
        self.model = model
        self.sampling = sampling or SamplingParams()
        self.max_new_tokens = max_new_tokens

    def generate(
        self, prompt_ids, seed: int = 0, analysis=None, prefix=None
    ) -> GenerationTrace:
        """Generate a completion for ``prompt_ids`` under ``seed``.

        Decoding stops at the first end-of-turn token, at a newline after
        the value has begun, or at ``max_new_tokens``.

        Determinism contract: generation is a pure function of
        ``(prompt_ids, seed, self.sampling, self.max_new_tokens)`` plus the
        model's frozen identity (vocabulary, config, ``model_seed``).
        Identical (prompt, seed, sampling) triples are bit-reproducible —
        every step's candidate ids, logits, and sampled choice are equal
        across repeated calls and across processes, whether or not a
        prepared ``prefix`` was supplied.  The result cache in
        :mod:`repro.serve` memoizes full predictions on exactly this key,
        and ``tests/test_engine_determinism.py`` pins the contract.

        Parameters
        ----------
        prompt_ids:
            Token ids of the prompt.
        seed:
            Sampling seed (drives token choice and the per-seed logit
            jitter; nothing else).
        analysis:
            Optional precomputed :meth:`SurrogateLM.prepare` result for
            this exact prompt.  Passing it skips the per-call prompt
            analysis (the serving layer's prepare cache); it must have
            been computed from ``prompt_ids`` or generations may differ.
        prefix:
            Optional :class:`~repro.llm.prefix_cache.PreparedPrefix`
            snapshot for a leading slice of the prompt: per-step scoring
            then processes only the delta past the prefix, bit-identical
            to the cold path.
        """
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        if prompt.size == 0:
            raise GenerationError("cannot generate from an empty prompt")
        if prefix is not None and not prefix.extends(prompt):
            raise GenerationError(
                "prepared prefix does not match the prompt "
                f"(prefix length {prefix.length}, prompt length {prompt.size})"
            )
        with get_tracer().span(
            "llm.generate",
            seed=int(seed),
            n_prompt_tokens=int(prompt.size),
            prefix_reused=prefix is not None,
        ) as span:
            vocab = self.model.vocab
            rng = rng_from(seed, "sampling")
            trace = GenerationTrace(prompt_ids=prompt, seed=int(seed))
            context = prompt.copy()
            generated_strings: list[str] = []
            value_started = False
            if analysis is None:
                analysis = self.model.prepare(prompt, prefix=prefix)

            for step in range(self.max_new_tokens):
                ids, logits = self.model.next_token_logits(
                    context,
                    generated_strings,
                    sample_seed=seed,
                    step=step,
                    analysis=analysis,
                    prefix=prefix,
                )
                pos = sample_token(ids, logits, self.sampling, rng)
                trace.steps.append(
                    GenerationStep(
                        candidate_ids=ids, logits=logits, chosen_position=pos
                    )
                )
                chosen = int(ids[pos])
                token_str = vocab.string_of(chosen)
                context = np.append(context, chosen)
                generated_strings.append(token_str)

                if chosen == vocab.specials.eot or chosen == vocab.specials.end_of_text:
                    break
                if token_str.isdigit():
                    value_started = True
                elif value_started and not (token_str == "." or token_str.isdigit()):
                    # Value terminated by a non-numeric token (e.g. newline).
                    break
            span.set(n_new_tokens=len(trace.steps))
            return trace

    def generate_batch(
        self, prompt_ids, seeds, analysis=None, prefix=None
    ) -> list[GenerationTrace]:
        """Generate one completion per seed for a single shared prompt.

        Decodes all seeds in lockstep: at each step, seeds whose
        generated-so-far token sequences coincide share one call into
        :meth:`SurrogateLM.next_token_logits_batch` (the vectorized
        kernel), so the seed-independent content pass runs once per
        distinct decode state instead of once per seed.  Each returned
        trace is bit-identical to ``generate(prompt_ids, seed=s, ...)``
        for its seed — same candidate ids, logits, and chosen tokens.

        Singleton batches short-circuit to the scalar path (no batch
        bookkeeping overhead), as do empty seed lists.
        """
        prompt = np.asarray(prompt_ids, dtype=np.int64)
        if prompt.size == 0:
            raise GenerationError("cannot generate from an empty prompt")
        seeds = [int(s) for s in seeds]
        if not seeds:
            return []
        if len(seeds) == 1:
            return [
                self.generate(
                    prompt, seed=seeds[0], analysis=analysis, prefix=prefix
                )
            ]
        if prefix is not None and not prefix.extends(prompt):
            raise GenerationError(
                "prepared prefix does not match the prompt "
                f"(prefix length {prefix.length}, prompt length {prompt.size})"
            )
        with get_tracer().span(
            "llm.generate_batch",
            n_seeds=len(seeds),
            n_prompt_tokens=int(prompt.size),
            prefix_reused=prefix is not None,
        ) as span:
            vocab = self.model.vocab
            if analysis is None:
                analysis = self.model.prepare(prompt, prefix=prefix)
            states = [_DecodeState(seed, prompt) for seed in seeds]
            group_widths: list[int] = []
            for step in range(self.max_new_tokens):
                live = [st for st in states if not st.done]
                if not live:
                    break
                # Seeds at the same decode state share one kernel call.
                groups: dict[tuple[int, ...], list[_DecodeState]] = {}
                for st in live:
                    groups.setdefault(tuple(st.generated_ids), []).append(st)
                for members in groups.values():
                    lead = members[0]
                    results = self.model.next_token_logits_batch(
                        lead.context,
                        lead.generated_strings,
                        [m.seed for m in members],
                        step,
                        analysis=analysis,
                        prefix=prefix,
                    )
                    group_widths.append(len(members))
                    for st, (ids, logits) in zip(members, results):
                        st.advance(ids, logits, self.sampling, vocab)
            span.set(
                n_kernel_calls=len(group_widths),
                mean_group_width=(
                    sum(group_widths) / len(group_widths)
                    if group_widths
                    else 0.0
                ),
            )
            return [st.trace for st in states]


class _DecodeState:
    """Per-seed decoding state for :meth:`GenerationEngine.generate_batch`.

    Mirrors the scalar loop's locals exactly (context growth, termination
    conditions) so lockstep decoding stays bit-identical per seed.
    """

    def __init__(self, seed: int, prompt: np.ndarray):
        self.seed = seed
        self.rng = rng_from(seed, "sampling")
        self.trace = GenerationTrace(prompt_ids=prompt, seed=int(seed))
        self.context = prompt.copy()
        self.generated_ids: list[int] = []
        self.generated_strings: list[str] = []
        self.value_started = False
        self.done = False

    def advance(self, ids, logits, sampling, vocab) -> None:
        """Sample one token and apply the scalar loop's termination rules."""
        pos = sample_token(ids, logits, sampling, self.rng)
        self.trace.steps.append(
            GenerationStep(candidate_ids=ids, logits=logits, chosen_position=pos)
        )
        chosen = int(ids[pos])
        token_str = vocab.string_of(chosen)
        self.context = np.append(self.context, chosen)
        self.generated_ids.append(chosen)
        self.generated_strings.append(token_str)
        if chosen == vocab.specials.eot or chosen == vocab.specials.end_of_text:
            self.done = True
        elif token_str.isdigit():
            self.value_started = True
        elif self.value_started and not (token_str == "." or token_str.isdigit()):
            self.done = True
