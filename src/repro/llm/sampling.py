"""Token sampling over sparse logits: temperature, top-k, nucleus (top-p)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GenerationError

__all__ = ["SamplingParams", "sample_token"]


@dataclass(frozen=True)
class SamplingParams:
    """Decoding hyperparameters (Llama-style defaults)."""

    temperature: float = 0.7
    top_p: float = 0.90
    top_k: int = 0  # 0 disables top-k
    greedy: bool = False

    def __post_init__(self):
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError(f"top_p must be in (0, 1], got {self.top_p}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")


def sample_token(
    ids: np.ndarray,
    logits: np.ndarray,
    params: SamplingParams,
    rng: np.random.Generator,
) -> int:
    """Sample one token id from sparse ``(ids, logits)``.

    Greedy decoding (or ``temperature == 0``) returns the argmax.  Otherwise
    logits are tempered, truncated by top-k then top-p, renormalized, and
    sampled.

    Returns the *position* within ``ids`` of the sampled token, so callers
    can index parallel candidate arrays directly.
    """
    ids = np.asarray(ids)
    logits = np.asarray(logits, dtype=float)
    if ids.ndim != 1 or ids.shape != logits.shape or ids.size == 0:
        raise GenerationError("ids and logits must be equal-length non-empty")
    if params.greedy or params.temperature == 0.0:
        return int(np.argmax(logits))

    z = logits / params.temperature
    z = z - z.max()
    probs = np.exp(z)
    probs /= probs.sum()

    order = np.argsort(probs)[::-1]
    if params.top_k > 0:
        order = order[: params.top_k]
    cum = np.cumsum(probs[order])
    # Keep the minimal prefix with mass >= top_p (always at least one).
    cutoff = int(np.searchsorted(cum, params.top_p, side="left")) + 1
    kept = order[:cutoff]
    p = probs[kept]
    p = p / p.sum()
    choice = rng.choice(kept.size, p=p)
    return int(kept[choice])
