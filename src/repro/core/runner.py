"""Experiment execution: probes, per-process caching, parallel fan-out.

Each :class:`ExperimentSpec` expands into ``n_queries`` *probes* (one
prediction each).  Heavy, immutable state — datasets, tokenizer, surrogate
LM — is cached per process so the multiprocessing fan-out only ships specs
and results (chunky tasks, small payloads, per the HPC guides).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from functools import lru_cache, partial
from pathlib import Path

import numpy as np

from repro.analysis.decoding import StepCandidates
from repro.core.grid import ExperimentSpec
from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset.generate import PerformanceDataset, generate_dataset
from repro.dataset.splits import curated_neighborhood, disjoint_example_sets
from repro.dataset.syr2k import Syr2kTask
from repro.errors import ExperimentError
from repro.obs import get_tracer
from repro.utils.parallel import parallel_map
from repro.utils.rng import derive_seed

logger = logging.getLogger("repro.runner")

__all__ = ["ProbeResult", "run_spec", "run_grid"]

#: Cap on disjoint-set material: the largest grid draws 5 sets of 100.
_MAX_SETS = 8


@dataclass
class ProbeResult:
    """One prediction probe: everything the analyses need, no more.

    The value-region candidates are retained (they feed Table II, Figures
    3-4 and the haystack analysis); full prompts are not (only their
    length), keeping result payloads small enough to ship across processes.
    """

    spec: ExperimentSpec
    query_index: int
    truth: float
    predicted: float | None
    predicted_text: str
    generated_text: str
    exact_copy: bool
    icl_value_strings: list[str]
    value_steps: list[StepCandidates]
    n_prompt_tokens: int

    @property
    def parsed(self) -> bool:
        return self.predicted is not None

    @property
    def relative_error(self) -> float:
        """Relative error of the sampled prediction (inf when unparsed)."""
        if self.predicted is None:
            return float("inf")
        return abs(self.predicted - self.truth) / abs(self.truth)


@lru_cache(maxsize=8)
def _dataset(size: str, root_seed: int) -> PerformanceDataset:
    return generate_dataset(size, seed=root_seed)


@lru_cache(maxsize=8)
def _surrogate(size: str, prefix_cache: bool = True) -> DiscriminativeSurrogate:
    return DiscriminativeSurrogate(Syr2kTask(size), prefix_cache=prefix_cache)


def _probes_for(
    spec: ExperimentSpec, dataset: PerformanceDataset
) -> list[tuple[np.ndarray, int]]:
    """Expand a spec into ``(icl_rows, query_row)`` probes."""
    if spec.selection == "random":
        n_sets = max(_MAX_SETS, spec.set_id + 1)
        sets, queries = disjoint_example_sets(
            dataset,
            n_sets=n_sets,
            set_size=spec.n_icl,
            seed=derive_seed(spec.root_seed, "sets", spec.size, spec.n_icl),
            n_queries=spec.n_queries,
        )
        return [(sets[spec.set_id], int(q)) for q in queries]
    # Curated: each query gets its own minimal-edit-distance neighbourhood.
    probes = []
    for q in range(spec.n_queries):
        rows, query_row = curated_neighborhood(
            dataset,
            set_size=spec.n_icl,
            seed=derive_seed(
                spec.root_seed, "curated", spec.size, spec.n_icl,
                spec.set_id, q,
            ),
        )
        probes.append((rows, int(query_row)))
    return probes


def _probe_inputs(spec: ExperimentSpec, dataset: PerformanceDataset):
    """Materialize per-probe inputs: (examples, query_row, gen_seed)."""
    inputs = []
    for probe_id, (icl_rows, query_row) in enumerate(
        _probes_for(spec, dataset)
    ):
        examples = [
            (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
            for r in icl_rows
        ]
        # cell_key already includes spec.seed, so sampling streams differ
        # across seeds while everything else about the probe is shared.
        gen_seed = derive_seed(
            spec.root_seed, "generation", *spec.cell_key, probe_id
        )
        inputs.append((examples, query_row, gen_seed))
    return inputs


def _probe_result(spec, dataset, query_row, pred) -> ProbeResult:
    return ProbeResult(
        spec=spec,
        query_index=int(dataset.indices[query_row]),
        truth=float(dataset.runtimes[query_row]),
        predicted=pred.value,
        predicted_text=pred.value_text,
        generated_text=pred.generated_text,
        exact_copy=pred.exact_copy,
        icl_value_strings=pred.icl_value_strings,
        value_steps=pred.value_steps,
        n_prompt_tokens=pred.n_prompt_tokens,
    )


def run_spec(
    spec: ExperimentSpec, service=None, fault_plan=None,
    prefix_cache: bool = True,
) -> list[ProbeResult]:
    """Execute all probes of one experiment cell.

    With ``service=None`` probes run serially against the per-process
    surrogate cache.  Given a :class:`repro.serve.PredictionService`, the
    probes are submitted as a bulk request batch instead — the service's
    microbatcher and caches then handle scheduling and reuse.  Both paths
    are bit-identical for the default stack (the engine's determinism
    contract), so analyses cannot tell them apart.

    ``prefix_cache`` toggles prepared-prefix reuse on the serial path's
    surrogate (all probes of a cell share their ICL prefix, so prompts
    only pay for the query delta); results are bit-identical either way.
    It does not affect an explicitly passed ``service`` (configure that
    through ``PredictionService(enable_prefix_cache=...)``).

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) is the grid-level
    fault hook: a cell it selects (keyed on ``spec.cell_key``) raises
    :class:`~repro.errors.InjectedFaultError` before running any probes,
    which is how the checkpoint/resume tests simulate deterministic
    mid-grid crashes.
    """
    if fault_plan is not None and fault_plan.cell_fault(spec.cell_key):
        from repro.errors import InjectedFaultError

        raise InjectedFaultError("run_spec", spec.cell_key)
    with get_tracer().span(
        "runner.run_spec",
        size=spec.size,
        n_icl=spec.n_icl,
        set_id=spec.set_id,
        n_queries=spec.n_queries,
        via_service=service is not None,
        prefix_cache=bool(prefix_cache),
    ):
        dataset = _dataset(spec.size, spec.root_seed)
        inputs = _probe_inputs(spec, dataset)
        if service is not None:
            from repro.serve.request import Request

            responses = service.submit_many(
                Request(
                    examples=examples,
                    query_config=dataset.config(query_row),
                    seed=gen_seed,
                    size=spec.size,
                )
                for examples, query_row, gen_seed in inputs
            )
            return [
                _probe_result(spec, dataset, query_row, resp.prediction)
                for (_, query_row, _), resp in zip(inputs, responses)
            ]
        surrogate = _surrogate(spec.size, bool(prefix_cache))
        results: list[ProbeResult] = []
        for examples, query_row, gen_seed in inputs:
            pred = surrogate.predict(
                examples, dataset.config(query_row), seed=gen_seed
            )
            results.append(_probe_result(spec, dataset, query_row, pred))
        return results


def run_grid(
    specs: list[ExperimentSpec],
    workers: int | None = None,
    service=None,
    checkpoint: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    fault_plan=None,
    prefix_cache: bool = True,
) -> list[ProbeResult]:
    """Execute a grid of experiments, optionally across processes.

    Results are returned flattened, in spec order (deterministic
    regardless of parallelism).  When ``service`` is given, specs are
    streamed through that :class:`repro.serve.PredictionService` instead
    of the process pool (the service owns concurrency, batching, and
    caching; ``workers`` is then ignored).

    Crash resumability: with ``checkpoint`` set, completed cells are
    appended to that JSONL file every ``checkpoint_every`` cells, so a
    killed run loses at most one chunk.  ``resume=True`` loads an
    existing checkpoint, skips every cell already complete in it (a
    partially written trailing cell is discarded and re-run), and
    produces a probe set identical to an uninterrupted run — same
    probes, same order, no duplicates.  Without ``resume``, an existing
    checkpoint file is an error rather than silently overwritten.

    ``fault_plan`` and ``prefix_cache`` forward to :func:`run_spec`
    (deterministic grid-level fault injection; prepared-prefix reuse on
    the serial path).
    """
    if not specs:
        raise ExperimentError("no experiments to run")
    # Spans only cover the in-process paths: the process-pool fan-out runs
    # run_spec in workers whose global tracer is the disabled default.
    with get_tracer().span(
        "runner.run_grid",
        n_cells=len(specs),
        via_service=service is not None,
        checkpointed=checkpoint is not None,
        prefix_cache=bool(prefix_cache),
    ):
        if checkpoint is None:
            nested = _run_cells(specs, workers=workers, service=service,
                                fault_plan=fault_plan,
                                prefix_cache=prefix_cache)
            return [probe for cell in nested for probe in cell]
        return _run_grid_checkpointed(
            specs,
            workers=workers,
            service=service,
            path=Path(checkpoint),
            every=max(1, int(checkpoint_every)),
            resume=resume,
            fault_plan=fault_plan,
            prefix_cache=prefix_cache,
        )


def _run_cells(
    specs: list[ExperimentSpec], workers, service, fault_plan,
    prefix_cache: bool = True,
) -> list[list[ProbeResult]]:
    """Run cells through the service or the process pool (spec order)."""
    if service is not None:
        return [
            run_spec(spec, service=service, fault_plan=fault_plan)
            for spec in specs
        ]
    if fault_plan is None and prefix_cache:
        fn = run_spec
    else:
        fn = partial(
            run_spec, fault_plan=fault_plan, prefix_cache=prefix_cache
        )
    return parallel_map(fn, specs, workers=workers)


def _run_grid_checkpointed(
    specs, workers, service, path, every, resume, fault_plan,
    prefix_cache=True,
) -> list[ProbeResult]:
    from repro.core.storage import (
        append_probes_jsonl,
        load_checkpoint,
        save_probes_jsonl,
    )

    if len({spec.cell_key for spec in specs}) != len(specs):
        raise ExperimentError(
            "grid has duplicate cells; checkpointing needs unique cell keys"
        )
    done: dict[tuple, list[ProbeResult]] = {}
    if path.exists():
        if not resume:
            raise ExperimentError(
                f"checkpoint {path} already exists; pass resume=True "
                "(CLI: --resume) to continue it"
            )
        done = load_checkpoint(path, specs)
        if not done.report.clean:
            logger.warning(
                "resume from damaged checkpoint: %s", done.report.summary()
            )
        # Compact the file down to the complete cells: this drops any
        # partially written tail (and any damage the recovery scan
        # quarantined) so the append below cannot duplicate it.
        save_probes_jsonl(
            [
                probe
                for spec in specs
                if spec.cell_key in done
                for probe in done[spec.cell_key]
            ],
            path,
        )
    remaining = [spec for spec in specs if spec.cell_key not in done]
    for start in range(0, len(remaining), every):
        chunk = remaining[start : start + every]
        nested = _run_cells(chunk, workers=workers, service=service,
                            fault_plan=fault_plan,
                            prefix_cache=prefix_cache)
        append_probes_jsonl(
            [probe for cell in nested for probe in cell], path
        )
        for spec, cell in zip(chunk, nested):
            done[spec.cell_key] = cell
    return [probe for spec in specs for probe in done[spec.cell_key]]
