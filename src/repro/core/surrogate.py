"""The discriminative surrogate: predict a runtime from ICL examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.decoding import StepCandidates
from repro.dataset.syr2k import Syr2kTask
from repro.errors import ParseError
from repro.llm.engine import GenerationEngine
from repro.llm.model import SurrogateLM
from repro.llm.prefix_cache import PreparedPrefix, PrefixCache
from repro.llm.sampling import SamplingParams
from repro.llm.tokenizer import Tokenizer
from repro.llm.trace import GenerationTrace
from repro.prompts.builder import PromptBuilder, PromptParts
from repro.prompts.parser import extract_prediction

__all__ = ["SurrogatePrediction", "DiscriminativeSurrogate"]


@dataclass
class SurrogatePrediction:
    """One surrogate prediction with its full generation evidence.

    Attributes
    ----------
    value:
        Parsed predicted runtime (None when the generation contained no
        parsable value — a format failure).
    value_text:
        The exact value substring (what copy analysis compares to ICL).
    generated_text:
        The full generated surface text.
    icl_value_strings:
        The performance strings shown in context.
    value_steps:
        Recorded candidates for the value region of the generation (input
        to the decoding-tree analyses).
    n_prompt_tokens:
        Prompt length (context-budget bookkeeping).
    seed:
        Sampling seed used.
    """

    value: float | None
    value_text: str
    generated_text: str
    icl_value_strings: list[str]
    value_steps: list[StepCandidates]
    n_prompt_tokens: int
    seed: int

    @property
    def parsed(self) -> bool:
        """Whether a value could be extracted from the generation."""
        return self.value is not None

    @property
    def exact_copy(self) -> bool:
        """Whether the value string verbatim-copies an ICL value."""
        return self.value_text in self.icl_value_strings


class DiscriminativeSurrogate:
    """LLAMBO discriminative surrogate on top of the surrogate LM.

    Parameters
    ----------
    task:
        The syr2k task (fixes the prompt's problem description).
    tokenizer, model, engine:
        Optional pre-built components; defaults construct the calibrated
        stack.
    prefix_cache:
        ``True`` (default) owns a fresh
        :class:`~repro.llm.prefix_cache.PrefixCache` of prepared-prefix
        snapshots — prompts sharing their ICL prefix then only process
        the query delta, bit-identically to the cold path.  ``False``
        disables prefix reuse entirely (the benchmark baseline); passing
        a :class:`PrefixCache` instance shares one across surrogates
        wrapping the same model.
    """

    def __init__(
        self,
        task: Syr2kTask,
        tokenizer: Tokenizer | None = None,
        model: SurrogateLM | None = None,
        engine: GenerationEngine | None = None,
        sampling: SamplingParams | None = None,
        value_style: str = "decimal",
        prefix_cache: bool | PrefixCache = True,
    ):
        self.task = task
        self.tokenizer = tokenizer or Tokenizer()
        self.model = model or SurrogateLM(self.tokenizer.vocab)
        self.engine = engine or GenerationEngine(self.model, sampling=sampling)
        self.builder = PromptBuilder(
            task, self.tokenizer, value_style=value_style
        )
        if prefix_cache is True:
            self.prefix_cache: PrefixCache | None = PrefixCache(self.model)
        elif prefix_cache is False:
            self.prefix_cache = None
        else:
            if prefix_cache.model is not self.model:
                raise ValueError(
                    "shared prefix_cache must wrap this surrogate's model"
                )
            self.prefix_cache = prefix_cache

    def build_parts(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        query_config: Mapping[str, object],
    ) -> PromptParts:
        """Build the discriminative prompt without generating.

        Exposed separately from :meth:`predict` so the serving layer
        (:mod:`repro.serve`) can fingerprint the prompt for its caches
        before deciding whether to run generation at all.
        """
        return self.builder.discriminative(examples, query_config)

    def prepared_prefix(self, parts: PromptParts) -> PreparedPrefix | None:
        """Prepared-prefix snapshot for a built prompt (None when disabled).

        Looks up (building on miss) the snapshot for ``parts``' shared
        ICL prefix in this surrogate's :class:`PrefixCache`.  Returns
        ``None`` when prefix reuse is off or the prompt has no usable
        split.
        """
        if self.prefix_cache is None:
            return None
        prefix_len = int(getattr(parts, "prefix_len", 0) or 0)
        if prefix_len <= 0:
            return None
        return self.prefix_cache.prepared(parts.ids, prefix_len)

    def predict_parts(
        self,
        parts: PromptParts,
        seed: int = 0,
        analysis=None,
    ) -> SurrogatePrediction:
        """Generate + parse a prediction from an already-built prompt.

        Parameters
        ----------
        parts:
            Prompt from :meth:`build_parts`.
        seed:
            Sampling seed.
        analysis:
            Optional memoized :meth:`SurrogateLM.prepare` result for this
            prompt (must match ``parts.ids``); forwarded to the engine.
        """
        trace = self.engine.generate(
            parts.ids,
            seed=seed,
            analysis=analysis,
            prefix=self.prepared_prefix(parts),
        )
        return self._prediction_from_trace(parts, trace, seed)

    def predict_parts_batch(
        self,
        parts: PromptParts,
        seeds: Sequence[int],
        analysis=None,
    ) -> list[SurrogatePrediction]:
        """One prediction per seed for a single built prompt.

        Decodes all seeds through the engine's lockstep batch kernel
        (sharing the seed-independent content pass per step); each
        prediction is identical to ``predict_parts(parts, seed=s)``.
        """
        traces = self.engine.generate_batch(
            parts.ids,
            seeds,
            analysis=analysis,
            prefix=self.prepared_prefix(parts),
        )
        return [
            self._prediction_from_trace(parts, trace, seed)
            for trace, seed in zip(traces, seeds)
        ]

    def _prediction_from_trace(
        self, parts: PromptParts, trace: GenerationTrace, seed: int
    ) -> SurrogatePrediction:
        text = trace.generated_text(self.tokenizer.vocab)
        try:
            value, value_text = extract_prediction(text)
        except ParseError:
            value, value_text = None, ""
        return SurrogatePrediction(
            value=value,
            value_text=value_text,
            generated_text=text,
            icl_value_strings=list(parts.icl_value_strings),
            value_steps=trace.value_region(self.tokenizer.vocab),
            n_prompt_tokens=int(parts.ids.size),
            seed=int(seed),
        )

    def predict(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        query_config: Mapping[str, object],
        seed: int = 0,
    ) -> SurrogatePrediction:
        """Predict the runtime of ``query_config`` from ``examples``."""
        return self.predict_parts(
            self.build_parts(examples, query_config), seed=seed
        )
