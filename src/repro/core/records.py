"""Aggregation of probe results into the paper's reported statistics."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.clt import CLTAggregate, aggregate_metric
from repro.analysis.metrics import PredictionMetrics, score_predictions
from repro.core.runner import ProbeResult
from repro.errors import AnalysisError

__all__ = [
    "CellMetrics",
    "GridReport",
    "group_probes",
    "cell_metrics",
    "build_report",
]


@dataclass(frozen=True)
class CellMetrics:
    """Per-experiment metrics (one cell of the grid)."""

    cell_key: tuple
    metrics: PredictionMetrics | None
    n_probes: int
    n_parsed: int
    n_copies: int

    @property
    def parse_rate(self) -> float:
        return self.n_parsed / self.n_probes if self.n_probes else 0.0


def group_probes(
    probes: list[ProbeResult], *, by: str = "experiment"
) -> dict[tuple, list[ProbeResult]]:
    """Group probes by experiment (default) or by fine-grained cell.

    ``by="experiment"`` pools the disjoint example sets (the paper's unit
    of metric reporting); ``by="cell"`` keeps each (set, seed) separate.
    """
    if by not in ("experiment", "cell"):
        raise AnalysisError(f"unknown grouping {by!r}")
    groups: dict[tuple, list[ProbeResult]] = defaultdict(list)
    for p in probes:
        key = p.spec.experiment_key if by == "experiment" else p.spec.cell_key
        groups[key].append(p)
    return dict(groups)


def cell_metrics(cell_key: tuple, probes: list[ProbeResult]) -> CellMetrics:
    """Score one experiment cell.

    Metrics use the parsed predictions only; ``metrics`` is ``None`` when
    fewer than two probes parsed (R^2 needs variance in the truths).
    """
    if not probes:
        raise AnalysisError("empty cell")
    parsed = [p for p in probes if p.parsed]
    metrics = None
    if len(parsed) >= 2:
        truths = np.asarray([p.truth for p in parsed])
        preds = np.asarray([p.predicted for p in parsed])
        metrics = score_predictions(truths, preds)
    return CellMetrics(
        cell_key=cell_key,
        metrics=metrics,
        n_probes=len(probes),
        n_parsed=len(parsed),
        n_copies=sum(1 for p in probes if p.exact_copy),
    )


@dataclass
class GridReport:
    """The Section IV-A summary statistics over a whole grid run.

    Attributes
    ----------
    cells:
        Per-experiment metrics.
    r2_values:
        Finite per-cell R^2 scores.
    best_r2 / mean_r2 / std_r2:
        Headline R^2 statistics ("The highest R^2 score our LLM achieves
        is 0.4643 ... average R^2 score of -6.643 and a standard
        deviation of 22.766").
    frac_nonnegative_r2:
        Share of experiments with a non-negative R^2 ("only a quarter").
    mare / msre:
        CLT aggregates of the per-experiment MARE/MSRE.
    copy_rate:
        Fraction of all generated values verbatim-copied from ICL
        ("slightly over 10%").
    parse_rate:
        Fraction of probes whose output contained a parsable value.
    """

    cells: list[CellMetrics]
    r2_values: np.ndarray
    best_r2: float
    mean_r2: float
    std_r2: float
    frac_nonnegative_r2: float
    mare: CLTAggregate
    msre: CLTAggregate
    copy_rate: float
    parse_rate: float
    per_icl_mare: dict[int, float] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        """Human-readable headline, mirroring the paper's reporting."""
        return [
            f"experiments: {len(self.cells)}",
            f"best R2: {self.best_r2:.4f}",
            f"mean R2: {self.mean_r2:.4f} (std {self.std_r2:.4f})",
            f"non-negative R2 share: {self.frac_nonnegative_r2:.3f}",
            f"MARE: {self.mare}",
            f"MSRE: {self.msre}",
            f"ICL copy rate: {self.copy_rate:.4f}",
            f"parse rate: {self.parse_rate:.4f}",
        ]


def build_report(probes: list[ProbeResult]) -> GridReport:
    """Aggregate a grid run into the paper's summary statistics."""
    if not probes:
        raise AnalysisError("no probes to report on")
    groups = group_probes(probes)
    cells = [cell_metrics(key, group) for key, group in groups.items()]
    scored = [c for c in cells if c.metrics is not None]
    if not scored:
        raise AnalysisError("no experiment produced scoreable metrics")
    r2 = np.asarray(
        [c.metrics.r2 for c in scored if np.isfinite(c.metrics.r2)]
    )
    if r2.size == 0:
        raise AnalysisError("no finite R^2 values")
    mare_vals = [c.metrics.mare for c in scored]
    msre_vals = [c.metrics.msre for c in scored]

    # MARE as a function of ICL count ("error often increases with
    # additional ICL examples").
    by_icl: dict[int, list[float]] = defaultdict(list)
    for c in scored:
        n_icl = c.cell_key[2]
        by_icl[n_icl].append(c.metrics.mare)
    per_icl = {k: float(np.mean(v)) for k, v in sorted(by_icl.items())}

    n_probes = len(probes)
    return GridReport(
        cells=cells,
        r2_values=r2,
        best_r2=float(r2.max()),
        mean_r2=float(r2.mean()),
        std_r2=float(r2.std(ddof=1)) if r2.size > 1 else 0.0,
        frac_nonnegative_r2=float((r2 >= 0).mean()),
        mare=aggregate_metric(mare_vals),
        msre=aggregate_metric(msre_vals),
        copy_rate=sum(1 for p in probes if p.exact_copy) / n_probes,
        parse_rate=sum(1 for p in probes if p.parsed) / n_probes,
        per_icl_mare=per_icl,
    )
