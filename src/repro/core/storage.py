"""Persistence of grid runs: JSONL probe storage.

A full Section III-B grid takes minutes to generate; analyses are cheap.
This module serializes :class:`ProbeResult` lists — including the sparse
value-region logits — to a JSON-lines file and back, so a grid run can be
computed once and re-analysed many times (or shared as an artifact, as the
paper's repository does).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.analysis.decoding import StepCandidates
from repro.core.grid import ExperimentSpec
from repro.core.runner import ProbeResult
from repro.errors import ExperimentError

__all__ = [
    "save_probes_jsonl",
    "append_probes_jsonl",
    "load_probes_jsonl",
    "load_checkpoint",
    "append_events_jsonl",
    "load_events_jsonl",
]

_FORMAT_VERSION = 1

_EVENTS_FORMAT = "repro-events"
_EVENTS_VERSION = 1


def _encode_probe(probe: ProbeResult) -> dict:
    spec = probe.spec
    return {
        "spec": {
            "size": spec.size,
            "selection": spec.selection,
            "n_icl": spec.n_icl,
            "set_id": spec.set_id,
            "seed": spec.seed,
            "n_queries": spec.n_queries,
            "root_seed": spec.root_seed,
        },
        "query_index": probe.query_index,
        "truth": probe.truth,
        "predicted": probe.predicted,
        "predicted_text": probe.predicted_text,
        "generated_text": probe.generated_text,
        "exact_copy": probe.exact_copy,
        "icl_value_strings": probe.icl_value_strings,
        "n_prompt_tokens": probe.n_prompt_tokens,
        "value_steps": [
            {
                "tokens": list(s.tokens),
                "logits": [round(float(x), 6) for x in s.logits],
                "chosen": s.chosen,
            }
            for s in probe.value_steps
        ],
    }


def _decode_probe(record: dict) -> ProbeResult:
    try:
        spec = ExperimentSpec(**record["spec"])
        steps = [
            StepCandidates(
                tokens=tuple(s["tokens"]),
                logits=np.asarray(s["logits"], dtype=float),
                chosen=int(s["chosen"]),
            )
            for s in record["value_steps"]
        ]
        return ProbeResult(
            spec=spec,
            query_index=int(record["query_index"]),
            truth=float(record["truth"]),
            predicted=(
                None
                if record["predicted"] is None
                else float(record["predicted"])
            ),
            predicted_text=record["predicted_text"],
            generated_text=record["generated_text"],
            exact_copy=bool(record["exact_copy"]),
            icl_value_strings=list(record["icl_value_strings"]),
            value_steps=steps,
            n_prompt_tokens=int(record["n_prompt_tokens"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"corrupt probe record: {exc}") from exc


def _header_line() -> str:
    return (
        json.dumps({"format": "repro-probes", "version": _FORMAT_VERSION})
        + "\n"
    )


def save_probes_jsonl(probes: list[ProbeResult], path: str | Path) -> None:
    """Write probes to a JSONL file (one header line, one line per probe)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(_header_line())
        for probe in probes:
            fh.write(json.dumps(_encode_probe(probe)) + "\n")


def append_probes_jsonl(probes: list[ProbeResult], path: str | Path) -> None:
    """Append probes, creating the file (with header) when needed.

    This is the checkpoint write path of :func:`repro.core.runner.run_grid`:
    the buffer is flushed and fsynced so a killed process loses at most
    the line being written (which :func:`load_checkpoint` discards).
    """
    path = Path(path)
    fresh = not path.exists() or path.stat().st_size == 0
    with path.open("a") as fh:
        if fresh:
            fh.write(_header_line())
        for probe in probes:
            fh.write(json.dumps(_encode_probe(probe)) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_probes_jsonl(
    path: str | Path, *, tolerate_partial: bool = False
) -> list[ProbeResult]:
    """Read probes written by :func:`save_probes_jsonl`.

    With ``tolerate_partial=True`` (the crash-recovery mode), a corrupt
    or truncated line — the signature of a process killed mid-write —
    ends the read at that point instead of raising; an unreadable header
    yields an empty list.

    Raises
    ------
    ExperimentError
        On a missing/incompatible header or corrupt records (strict mode).
    """
    path = Path(path)
    probes: list[ProbeResult] = []
    with path.open() as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
            if not isinstance(header, dict):
                raise ExperimentError(f"{path} is not a probe JSONL file")
        except json.JSONDecodeError:
            if tolerate_partial:
                return []
            raise ExperimentError(f"{path} is not a probe JSONL file") from None
        if header.get("format") != "repro-probes":
            if tolerate_partial:
                return []
            raise ExperimentError(f"{path} is not a probe JSONL file")
        if header.get("version") != _FORMAT_VERSION:
            raise ExperimentError(
                f"{path} has format version {header.get('version')}, "
                f"expected {_FORMAT_VERSION}"
            )
        for line in fh:
            if not line.strip():
                continue
            try:
                probes.append(_decode_probe(json.loads(line)))
            except (json.JSONDecodeError, ExperimentError):
                if tolerate_partial:
                    break
                raise
    return probes


def append_events_jsonl(
    events: list[dict], path: str | Path, *, kind: str
) -> None:
    """Append generic event records to a kind-tagged JSONL log.

    The write discipline matches :func:`append_probes_jsonl` — the file
    is created with a header line when needed, and every append is
    flushed and fsynced so a killed process loses at most the line being
    written (which :func:`load_events_jsonl` discards in tolerant mode).
    ``kind`` names the log's schema (e.g. ``"session-events"``) so
    unrelated event logs cannot be silently confused for each other.
    """
    path = Path(path)
    fresh = not path.exists() or path.stat().st_size == 0
    with path.open("a") as fh:
        if fresh:
            fh.write(
                json.dumps(
                    {
                        "format": _EVENTS_FORMAT,
                        "kind": kind,
                        "version": _EVENTS_VERSION,
                    }
                )
                + "\n"
            )
        for event in events:
            fh.write(json.dumps(event) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_events_jsonl(
    path: str | Path, *, kind: str, tolerate_partial: bool = False
) -> list[dict]:
    """Read events written by :func:`append_events_jsonl`.

    With ``tolerate_partial=True`` (the crash-recovery mode), a corrupt
    or truncated trailing line ends the read at that point instead of
    raising, and an unreadable header yields an empty list.  A header of
    the wrong ``kind`` or version always raises — resuming one log type
    from another is a caller bug, not crash damage.

    Raises
    ------
    ExperimentError
        On a missing/incompatible header or corrupt records (strict mode).
    """
    path = Path(path)
    events: list[dict] = []
    with path.open() as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
            if not isinstance(header, dict):
                raise ExperimentError(f"{path} is not an event JSONL file")
        except json.JSONDecodeError:
            if tolerate_partial:
                return []
            raise ExperimentError(
                f"{path} is not an event JSONL file"
            ) from None
        if header.get("format") != _EVENTS_FORMAT:
            if tolerate_partial:
                return []
            raise ExperimentError(f"{path} is not an event JSONL file")
        if header.get("kind") != kind:
            raise ExperimentError(
                f"{path} holds {header.get('kind')!r} events, "
                f"expected {kind!r}"
            )
        if header.get("version") != _EVENTS_VERSION:
            raise ExperimentError(
                f"{path} has event-format version {header.get('version')}, "
                f"expected {_EVENTS_VERSION}"
            )
        for line in fh:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ExperimentError(
                        f"corrupt event record in {path}: not an object"
                    )
            except json.JSONDecodeError:
                if tolerate_partial:
                    break
                raise ExperimentError(
                    f"corrupt event record in {path}"
                ) from None
            events.append(record)
    return events


def load_checkpoint(
    path: str | Path, specs: list[ExperimentSpec]
) -> dict[tuple, list[ProbeResult]]:
    """Load a ``run_grid`` checkpoint: completed cells of ``specs`` only.

    Returns ``{spec.cell_key: probes}`` for every cell whose full
    ``n_queries`` probes are present.  Partial cells (the run died
    mid-cell), truncated trailing lines, and probes from foreign specs
    are dropped — their cells simply re-run on resume.
    """
    by_key = {spec.cell_key: spec for spec in specs}
    groups: dict[tuple, list[ProbeResult]] = {}
    for probe in load_probes_jsonl(path, tolerate_partial=True):
        spec = by_key.get(probe.spec.cell_key)
        if spec is None or probe.spec != spec:
            continue
        groups.setdefault(spec.cell_key, []).append(probe)
    return {
        key: cell
        for key, cell in groups.items()
        if len(cell) == by_key[key].n_queries
    }
