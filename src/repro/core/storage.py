"""Persistence of grid runs and journals: checksummed, crash-safe JSONL.

A full Section III-B grid takes minutes to generate; analyses are cheap.
This module serializes :class:`ProbeResult` lists — including the sparse
value-region logits — to a JSON-lines file and back, and provides the
generic event-journal substrate the session manager logs through.  Both
are the ground truth the paper's analyses replay from, so integrity is
not assumed, it is engineered:

**Format v2 (CRC framing).**  Every record line is a frame
``{"crc": C, "rec": {...}, "seq": N}`` where ``C`` is the CRC32 of the
canonical JSON of ``{"rec", "seq"}`` and ``seq`` increases by one per
record across appends.  Loaders verify both; v1 files (plain record
lines) are still read, and writers always emit v2.

**Recovery, not truncation.**  Tolerant loads scan the *whole* file
instead of stopping at the first bad line.  Corrupt spans are copied to
a ``<path>.quarantine`` sidecar and counted in a :class:`RecoveryReport`
attached to every loaded artifact (``loaded.report``).  Probe files may
salvage records past a damaged span (``run_grid(resume=...)`` dedupes by
complete cell, so out-of-gap records are safe); event journals truncate
at the first sequence gap instead (session replay needs the exact
contiguous prefix) and report what was dropped.  A tolerant load never
raises on damage and never silently drops data.

**Atomic snapshots, crash-safe appends.**  Full-file writes go through
tmp file + flush + fsync + ``os.replace`` + directory fsync, so a crash
mid-save leaves the previous file intact, never a torn one.  Appends
fsync every batch, and a file whose header write itself was torn
(created, killed before the newline) is recognized and repaired on the
next append rather than rejected forever.

**Testable.**  :func:`set_fault_injector` threads a
:class:`repro.faults.FaultInjector` through every write path (torn
writes, bitflips-after-ack, ENOSPC, fsync failures), which is what
``repro chaos --disk`` and the durability tests drive.  ``repro fsck``
exposes :func:`verify_artifact` / :func:`repair_artifact` on the CLI.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.decoding import StepCandidates
from repro.core.grid import ExperimentSpec
from repro.core.runner import ProbeResult
from repro.errors import ExperimentError
from repro.obs import get_tracer
from repro.utils.tables import Table

__all__ = [
    "RecoveryReport",
    "RecoveredList",
    "CheckpointState",
    "save_probes_jsonl",
    "append_probes_jsonl",
    "load_probes_jsonl",
    "load_checkpoint",
    "append_events_jsonl",
    "save_events_jsonl",
    "load_events_jsonl",
    "verify_artifact",
    "repair_artifact",
    "set_fault_injector",
    "integrity_counters",
    "reset_integrity_counters",
]

logger = logging.getLogger("repro.storage")

_PROBES_FORMAT = "repro-probes"
_EVENTS_FORMAT = "repro-events"
#: Version written by all writers; version 1 (unframed records) stays
#: readable so artifacts from earlier releases load unchanged.
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)

# Legacy aliases kept for callers/tests that introspect the module.
_EVENTS_VERSION = _FORMAT_VERSION


# ---------------------------------------------------------------------- #
# Integrity counters (surfaced by repro.obs.collect_service_metrics)
# ---------------------------------------------------------------------- #
class _IntegrityCounters:
    """Process-wide storage-integrity counters (thread-safe).

    ``crc_failures`` counts v2 frames whose checksum did not verify;
    ``records_quarantined`` counts lines copied to quarantine sidecars;
    ``recoveries`` counts tolerant loads/repairs that found any damage.
    """

    _NAMES = ("crc_failures", "records_quarantined", "recoveries")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._NAMES}

    def add(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] += n

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = {name: 0 for name in self._NAMES}


_INTEGRITY = _IntegrityCounters()


def integrity_counters() -> dict[str, int]:
    """Snapshot of the process-wide storage-integrity counters."""
    return _INTEGRITY.snapshot()


def reset_integrity_counters() -> None:
    """Zero the integrity counters (test isolation)."""
    _INTEGRITY.reset()


# ---------------------------------------------------------------------- #
# Fault-injection hook (repro chaos --disk, durability tests)
# ---------------------------------------------------------------------- #
_FAULT_INJECTOR = None


def set_fault_injector(injector) -> None:
    """Install a :class:`repro.faults.FaultInjector` on every write path.

    With a plan whose disk rates are non-zero, appends and snapshot
    writes go through a :class:`repro.faults.FaultyFile` wrapper that can
    tear writes, flip bits after the ack, run out of space, or fail
    fsync — all deterministically.  Pass ``None`` to uninstall.
    """
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = injector


def _sink(fh, site: str, name: str):
    """The write target: the raw file, or its fault-wrapped double."""
    if _FAULT_INJECTOR is not None:
        return _FAULT_INJECTOR.wrap_file(fh, site, name)
    return fh


def _fsync(sink, fh) -> None:
    """fsync through the wrapper when present (so it can fail on cue)."""
    injected = getattr(sink, "fsync", None)
    if injected is not None:
        injected()
    else:
        os.fsync(fh.fileno())


# ---------------------------------------------------------------------- #
# Probe record codec (unchanged payload schema)
# ---------------------------------------------------------------------- #
def _encode_probe(probe: ProbeResult) -> dict:
    spec = probe.spec
    return {
        "spec": {
            "size": spec.size,
            "selection": spec.selection,
            "n_icl": spec.n_icl,
            "set_id": spec.set_id,
            "seed": spec.seed,
            "n_queries": spec.n_queries,
            "root_seed": spec.root_seed,
        },
        "query_index": probe.query_index,
        "truth": probe.truth,
        "predicted": probe.predicted,
        "predicted_text": probe.predicted_text,
        "generated_text": probe.generated_text,
        "exact_copy": probe.exact_copy,
        "icl_value_strings": probe.icl_value_strings,
        "n_prompt_tokens": probe.n_prompt_tokens,
        "value_steps": [
            {
                "tokens": list(s.tokens),
                "logits": [round(float(x), 6) for x in s.logits],
                "chosen": s.chosen,
            }
            for s in probe.value_steps
        ],
    }


def _decode_probe(record: dict) -> ProbeResult:
    try:
        spec = ExperimentSpec(**record["spec"])
        steps = [
            StepCandidates(
                tokens=tuple(s["tokens"]),
                logits=np.asarray(s["logits"], dtype=float),
                chosen=int(s["chosen"]),
            )
            for s in record["value_steps"]
        ]
        return ProbeResult(
            spec=spec,
            query_index=int(record["query_index"]),
            truth=float(record["truth"]),
            predicted=(
                None
                if record["predicted"] is None
                else float(record["predicted"])
            ),
            predicted_text=record["predicted_text"],
            generated_text=record["generated_text"],
            exact_copy=bool(record["exact_copy"]),
            icl_value_strings=list(record["icl_value_strings"]),
            value_steps=steps,
            n_prompt_tokens=int(record["n_prompt_tokens"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"corrupt probe record: {exc}") from exc


# ---------------------------------------------------------------------- #
# v2 frame codec
# ---------------------------------------------------------------------- #
def _canonical(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace, ASCII escapes.

    ``json.loads`` followed by this dump is a fixed point (float repr
    round-trips exactly), so a reader can recompute the writer's CRC
    from the parsed frame alone.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _frame_line(rec: dict, seq: int) -> str:
    payload = _canonical({"rec": rec, "seq": seq})
    crc = zlib.crc32(payload.encode("utf-8"))
    # Splice the crc in front of the payload's own keys: the line parses
    # as one object {"crc": C, "rec": ..., "seq": N}.
    return '{"crc":%d,%s\n' % (crc, payload[1:])


def _verify_frame(obj) -> tuple[int, dict] | None:
    """Return ``(seq, rec)`` when the frame's CRC verifies, else None."""
    if not (
        isinstance(obj, dict)
        and isinstance(obj.get("crc"), int)
        and isinstance(obj.get("seq"), int)
        and not isinstance(obj.get("seq"), bool)
        and isinstance(obj.get("rec"), dict)
    ):
        return None
    payload = _canonical({"rec": obj["rec"], "seq": obj["seq"]})
    if zlib.crc32(payload.encode("utf-8")) != obj["crc"]:
        return None
    return obj["seq"], obj["rec"]


def _header_line(fmt: str, kind: str | None = None, version: int = _FORMAT_VERSION) -> str:
    header: dict = {"format": fmt}
    if kind is not None:
        header["kind"] = kind
    header["version"] = version
    return json.dumps(header) + "\n"


# ---------------------------------------------------------------------- #
# Recovery report
# ---------------------------------------------------------------------- #
@dataclass
class RecoveryReport:
    """What a tolerant scan (or fsck) found in one artifact file.

    ``records_ok`` verified records on the undamaged contiguous prefix;
    ``records_salvaged_after_gap`` verified records recovered beyond the
    first damaged span (probe files only — event journals truncate
    instead); ``records_quarantined`` lines copied to the
    ``.quarantine`` sidecar; ``bytes_dropped`` bytes not represented in
    the returned records.  ``truncated_at_seq`` is the first missing
    sequence number when an event journal was cut at a gap.
    """

    path: str
    kind: str = "unknown"
    version: int = 0
    records_ok: int = 0
    records_salvaged_after_gap: int = 0
    records_quarantined: int = 0
    bytes_dropped: int = 0
    first_bad_offset: int | None = None
    last_bad_offset: int | None = None
    truncated_at_seq: int | None = None
    header_repaired: bool = False
    quarantine_path: str | None = None

    @property
    def records_recovered(self) -> int:
        return self.records_ok + self.records_salvaged_after_gap

    @property
    def clean(self) -> bool:
        """True when the file verified end to end with nothing dropped."""
        return (
            self.records_quarantined == 0
            and self.bytes_dropped == 0
            and not self.header_repaired
            and self.truncated_at_seq is None
        )

    def summary(self) -> str:
        if self.clean:
            return (
                f"{self.path}: clean ({self.records_ok} records, "
                f"format v{self.version}, {self.kind})"
            )
        parts = [
            f"{self.path}: recovered {self.records_recovered} records "
            f"({self.records_ok} intact"
        ]
        if self.records_salvaged_after_gap:
            parts.append(
                f", {self.records_salvaged_after_gap} salvaged past damage"
            )
        parts.append(")")
        parts.append(
            f"; {self.records_quarantined} quarantined, "
            f"{self.bytes_dropped} bytes dropped"
        )
        if self.first_bad_offset is not None:
            parts.append(
                f" (offsets {self.first_bad_offset}"
                f"..{self.last_bad_offset})"
            )
        if self.truncated_at_seq is not None:
            parts.append(f"; journal truncated at seq {self.truncated_at_seq}")
        if self.header_repaired:
            parts.append("; header repaired")
        return "".join(parts)

    def render(self, title: str = "fsck report") -> str:
        t = Table(["field", "value"], title=title)
        t.add_row(["path", self.path])
        t.add_row(["kind", self.kind])
        t.add_row(["format version", self.version])
        t.add_row(["verdict", "clean" if self.clean else "CORRUPTION FOUND"])
        t.add_row(["records ok", self.records_ok])
        t.add_row(["records salvaged after gap", self.records_salvaged_after_gap])
        t.add_row(["records quarantined", self.records_quarantined])
        t.add_row(["bytes dropped", self.bytes_dropped])
        t.add_row([
            "bad span",
            "-"
            if self.first_bad_offset is None
            else f"{self.first_bad_offset}..{self.last_bad_offset}",
        ])
        t.add_row([
            "truncated at seq",
            "-" if self.truncated_at_seq is None else self.truncated_at_seq,
        ])
        t.add_row(["header repaired", self.header_repaired])
        t.add_row(["quarantine sidecar", self.quarantine_path or "-"])
        return t.render()


class RecoveredList(list):
    """A plain list of records that also carries its :class:`RecoveryReport`
    as ``.report`` — loaders stay drop-in list-compatible while always
    surfacing what (if anything) was dropped."""

    report: RecoveryReport


class CheckpointState(dict):
    """``{cell_key: [ProbeResult]}`` plus the underlying ``.report``."""

    report: RecoveryReport


# ---------------------------------------------------------------------- #
# The scanning core
# ---------------------------------------------------------------------- #
def _quarantine_write(qpath: Path, source: Path, spans: list[tuple[int, bytes]]) -> bool:
    """Append corrupt raw spans to the quarantine sidecar (best effort)."""
    if not spans:
        return False
    try:
        with qpath.open("ab") as fh:
            for offset, raw in spans:
                marker = (
                    f"# quarantined {len(raw)} bytes from {source.name} "
                    f"at offset {offset}\n"
                )
                fh.write(marker.encode("utf-8"))
                fh.write(raw)
                if not raw.endswith(b"\n"):
                    fh.write(b"\n")
        return True
    except OSError:  # read-only media: the report still accounts for it
        return False


def _parse_header(raw: bytes):
    """Parse a header line; returns the dict or None (torn/corrupt)."""
    if not raw.endswith(b"\n"):
        return None
    try:
        header = json.loads(raw.decode("utf-8", errors="strict"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return header if isinstance(header, dict) else None


def _scan_jsonl(
    path: str | Path,
    *,
    fmt: str,
    label: str,
    kind: str | None = None,
    check_kind: bool = True,
    tolerate: bool = False,
    salvage_past_gaps: bool = False,
    salvage_headerless: bool = False,
    quarantine: bool = True,
    decode=None,
) -> tuple[list, RecoveryReport]:
    """Scan one artifact file; the single engine behind every loader.

    Strict mode (``tolerate=False``) raises :class:`ExperimentError` on
    the first integrity problem.  Tolerant mode classifies every line:
    verified records on the contiguous prefix count as ``records_ok``;
    with ``salvage_past_gaps`` verified records beyond damage are kept
    as salvaged, otherwise the scan truncates at the first problem and
    quarantines the remainder.  ``decode`` (record dict -> object) is
    applied to surviving records; a record failing it is damage too.

    ``salvage_headerless`` (fsck only, requires the caller to assert the
    artifact kind): when the header line itself is corrupt — it carries
    no CRC — quarantine it and still scan for v2 frames, which are
    self-verifying; everything kept counts as salvaged and the report is
    never clean.  Without it, an unreadable header drops the whole file.
    """
    path = Path(path)
    report = RecoveryReport(path=str(path), kind=label)
    records: list = []
    bad_spans: list[tuple[int, bytes]] = []
    crc_failures = 0

    def note_bad(offset: int, raw: bytes) -> None:
        report.records_quarantined += 1
        report.bytes_dropped += len(raw)
        if report.first_bad_offset is None:
            report.first_bad_offset = offset
        report.last_bad_offset = offset + len(raw)
        bad_spans.append((offset, raw))

    with get_tracer().span(
        "storage.recover", path=path.name, kind=label, tolerant=tolerate
    ) as span, path.open("rb") as fh:
        header_raw = fh.readline()
        offset = len(header_raw)
        header = _parse_header(header_raw)
        headerless = False
        bad_header = header is None or header.get("format") != fmt
        if not bad_header and tolerate and salvage_headerless:
            # With licence to salvage, an unreadable version field — or a
            # kind that contradicts the caller's assertion — is header
            # damage too (the header line carries no CRC).
            bad_header = header.get("version") not in _READABLE_VERSIONS or (
                kind is not None
                and check_kind
                and header.get("kind") != kind
            )
        if bad_header:
            if not tolerate:
                raise ExperimentError(f"{path} is not a {label} JSONL file")
            if not salvage_headerless or path.stat().st_size == 0:
                # Unreadable or foreign header and no licence to dig:
                # nothing trustworthy follows.
                size = path.stat().st_size
                report.bytes_dropped = size
                if size:
                    report.first_bad_offset = 0
                    report.last_bad_offset = size
                _finish_report(report, path, [], crc_failures, quarantine)
                span.set(recovered=0, clean=report.clean)
                return records, report
            # The header (which carries no CRC) is damaged, but the
            # caller asserted the artifact kind and v2 frames are
            # self-verifying: quarantine the header line and salvage.
            headerless = True
            report.header_repaired = True
            report.version = 2
            version = 2
            note_bad(0, header_raw)
        else:
            if kind is not None and check_kind and header.get("kind") != kind:
                raise ExperimentError(
                    f"{path} holds {header.get('kind')!r} events, "
                    f"expected {kind!r}"
                )
            version = header.get("version")
            if version not in _READABLE_VERSIONS:
                raise ExperimentError(
                    f"{path} has format version {version}, "
                    f"expected one of {_READABLE_VERSIONS}"
                )
            report.version = version
            if kind is None and "kind" in header:
                report.kind = f"{label}:{header['kind']}"

        prev_seq = -1
        damaged = headerless  # any quarantined line so far
        gapped = False        # a seq discontinuity was crossed (v2)
        truncating = False
        for raw in fh:
            line_offset = offset
            offset += len(raw)
            text = raw.decode("utf-8", errors="replace")
            if not text.strip():
                continue
            if truncating:
                note_bad(line_offset, raw)
                continue
            rec = None
            problem = None
            seq = None
            try:
                obj = json.loads(text)
            except json.JSONDecodeError:
                problem = "invalid JSON"
                obj = None
            if obj is not None:
                if version == 1:
                    rec = obj
                else:
                    verified = _verify_frame(obj)
                    if verified is None:
                        problem = "frame checksum mismatch"
                        crc_failures += 1
                    else:
                        seq, rec = verified
                        if seq <= prev_seq:
                            problem = (
                                f"non-monotone sequence ({seq} after "
                                f"{prev_seq})"
                            )
                            rec = None
            if rec is not None and decode is not None:
                try:
                    rec_obj = decode(rec)
                except ExperimentError as exc:
                    problem = str(exc)
                    rec_obj = None
            else:
                rec_obj = rec
            if problem is not None:
                if not tolerate:
                    raise ExperimentError(
                        f"corrupt {label} record in {path}: {problem}"
                    )
                note_bad(line_offset, raw)
                if salvage_past_gaps:
                    damaged = True
                    continue
                truncating = True
                if report.truncated_at_seq is None:
                    # == the damaged record's expected seq (v1 has no
                    # frame seq, so count records kept instead).
                    report.truncated_at_seq = len(records)
                continue
            if version == 2 and seq is not None:
                if seq != prev_seq + 1:
                    # A hole in the journal: records were lost between
                    # prev_seq and seq even though this line verifies.
                    if not tolerate:
                        raise ExperimentError(
                            f"corrupt {label} record in {path}: sequence "
                            f"gap ({prev_seq + 1}..{seq - 1} missing)"
                        )
                    if not salvage_past_gaps:
                        report.truncated_at_seq = prev_seq + 1
                        truncating = True
                        note_bad(line_offset, raw)
                        continue
                    gapped = True
                prev_seq = seq
            if damaged or gapped:
                report.records_salvaged_after_gap += 1
            else:
                report.records_ok += 1
            records.append(rec_obj)
        span.set(recovered=len(records), clean=report.clean)

    _finish_report(report, path, bad_spans, crc_failures, quarantine)
    return records, report


def _finish_report(
    report: RecoveryReport,
    path: Path,
    bad_spans: list[tuple[int, bytes]],
    crc_failures: int,
    quarantine: bool,
) -> None:
    """Book-keeping shared by every scan exit: sidecar, counters, log."""
    if quarantine and bad_spans:
        qpath = path.with_name(path.name + ".quarantine")
        if _quarantine_write(qpath, path, bad_spans):
            report.quarantine_path = str(qpath)
    if crc_failures:
        _INTEGRITY.add("crc_failures", crc_failures)
    if report.records_quarantined:
        _INTEGRITY.add("records_quarantined", report.records_quarantined)
    if not report.clean:
        _INTEGRITY.add("recoveries")
        logger.warning("storage recovery: %s", report.summary())


# ---------------------------------------------------------------------- #
# Atomic full-file writes
# ---------------------------------------------------------------------- #
def _dir_fsync(path: Path) -> None:
    """fsync the containing directory so the rename itself is durable."""
    try:
        fd = os.open(str(path.parent) or ".", os.O_RDONLY)
    except OSError:  # platforms without directory opens
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_text(path: Path, text: str, *, site: str) -> None:
    """tmp + flush + fsync + ``os.replace`` + dir fsync.

    A crash (or injected fault) at any point leaves either the old file
    or the new one — never a torn hybrid.  The tmp file is cleaned up on
    a failed write so retries start clean.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w") as fh:
            out = _sink(fh, site, path.name)
            out.write(text)
            out.flush()
            _fsync(out, fh)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    _dir_fsync(path)


# ---------------------------------------------------------------------- #
# Append-path header handling (crash-safe creation)
# ---------------------------------------------------------------------- #
def _prepare_append(
    path: Path, *, fmt: str, label: str, kind: str | None = None
) -> tuple[int | None, int]:
    """Classify the append target; returns ``(version, next_seq)``.

    ``version=None`` means the file needs a fresh header (missing,
    empty, or a torn header that was recognized and repaired).  An
    existing v1 file keeps accepting v1 records so the artifact stays
    internally consistent; v2 files report the next sequence number.
    """
    if not path.exists() or path.stat().st_size == 0:
        return None, 0
    with path.open("rb") as fh:
        first = fh.readline()
        has_more = bool(fh.readline())
    header = _parse_header(first)
    if header is None:
        if has_more:
            # Damage beyond the torn-header crash signature: a repair
            # here could destroy real records — that is fsck's job.
            raise ExperimentError(
                f"{path} has an unreadable header but further content; "
                f"run `repro fsck --repair` before appending"
            )
        # Crash between file creation and the header landing: quarantine
        # the torn bytes and start the file over.
        _INTEGRITY.add("recoveries")
        logger.warning(
            "storage: repairing torn header in %s (%d bytes quarantined)",
            path, len(first),
        )
        if first:
            _INTEGRITY.add("records_quarantined")
            _quarantine_write(
                path.with_name(path.name + ".quarantine"), path,
                [(0, first)],
            )
        with path.open("wb"):
            pass  # truncate
        return None, 0
    if header.get("format") != fmt:
        raise ExperimentError(f"{path} is not a {label} JSONL file")
    if kind is not None and header.get("kind") != kind:
        raise ExperimentError(
            f"{path} holds {header.get('kind')!r} events, expected {kind!r}"
        )
    version = header.get("version")
    if version not in _READABLE_VERSIONS:
        raise ExperimentError(
            f"{path} has format version {version}, "
            f"expected one of {_READABLE_VERSIONS}"
        )
    if version == 1:
        return 1, 0
    return 2, _tail_next_seq(path)


def _tail_next_seq(path: Path) -> int:
    """Next sequence number for a v2 file: last verified frame + 1.

    Reads a bounded tail (doubling backwards on demand) rather than the
    whole file, so appending to a large checkpoint stays O(tail).  A
    torn or corrupt trailing line simply falls through to the previous
    verifiable frame — exactly the record recovery would keep.
    """
    size = path.stat().st_size
    block = 1 << 16
    with path.open("rb") as fh:
        while True:
            start = max(0, size - block)
            fh.seek(start)
            data = fh.read(size - start)
            # lines[0] is either a partial line (mid-file seek) or the
            # header (start == 0) — never a candidate frame.
            for raw in reversed(data.split(b"\n")[1:]):
                if not raw.strip():
                    continue
                try:
                    obj = json.loads(raw.decode("utf-8", errors="strict"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                verified = _verify_frame(obj)
                if verified is not None:
                    return verified[0] + 1
            if start == 0:
                return 0
            block *= 2


def _append_records(
    records: list[dict],
    path: str | Path,
    *,
    fmt: str,
    label: str,
    site: str,
    kind: str | None = None,
) -> None:
    path = Path(path)
    version, next_seq = _prepare_append(path, fmt=fmt, label=label, kind=kind)
    lines: list[str] = []
    if version is None:
        lines.append(_header_line(fmt, kind))
        version = _FORMAT_VERSION
    for rec in records:
        if version == 1:
            lines.append(json.dumps(rec) + "\n")
        else:
            lines.append(_frame_line(rec, next_seq))
            next_seq += 1
    with path.open("a") as fh:
        out = _sink(fh, site, path.name)
        out.write("".join(lines))
        out.flush()
        _fsync(out, fh)


# ---------------------------------------------------------------------- #
# Probe artifacts
# ---------------------------------------------------------------------- #
def save_probes_jsonl(probes: list[ProbeResult], path: str | Path) -> None:
    """Write probes as a v2 JSONL snapshot (header + one frame per probe).

    The write is atomic: tmp file, fsync, ``os.replace``, directory
    fsync.  A crash mid-save leaves the previous snapshot intact instead
    of a torn file.
    """
    path = Path(path)
    lines = [_header_line(_PROBES_FORMAT)]
    lines.extend(
        _frame_line(_encode_probe(probe), seq)
        for seq, probe in enumerate(probes)
    )
    _atomic_write_text(path, "".join(lines), site="storage.save_probes")


def append_probes_jsonl(probes: list[ProbeResult], path: str | Path) -> None:
    """Append probes, creating the file (with header) when needed.

    This is the checkpoint write path of :func:`repro.core.runner.run_grid`:
    the buffer is flushed and fsynced so a killed process loses at most
    the line being written (which :func:`load_checkpoint` discards).
    Creation is crash-safe: an empty or torn-header file left by an
    earlier kill is repaired, not rejected.  Appends to a v1 file stay
    v1 (one file, one framing); fresh files are v2.
    """
    _append_records(
        [_encode_probe(p) for p in probes],
        path,
        fmt=_PROBES_FORMAT,
        label="probe",
        site="storage.append_probes",
    )


def load_probes_jsonl(
    path: str | Path,
    *,
    tolerate_partial: bool = False,
    quarantine: bool = True,
) -> RecoveredList:
    """Read probes written by :func:`save_probes_jsonl` (v1 or v2).

    Returns a list that also carries a :class:`RecoveryReport` as
    ``.report``.  With ``tolerate_partial=True`` (crash/corruption
    recovery) the whole file is scanned: damaged lines are counted,
    quarantined (to ``<path>.quarantine``, disable with
    ``quarantine=False``) and logged, and verified records past the
    damage are salvaged — safe for probes because checkpoint resume
    dedupes by complete cell.  A tolerant load never raises on damage;
    an unreadable header yields an empty list whose report accounts for
    every dropped byte.

    Raises
    ------
    ExperimentError
        On a missing/incompatible header or corrupt records (strict mode).
    """
    records, report = _scan_jsonl(
        path,
        fmt=_PROBES_FORMAT,
        label="probe",
        tolerate=tolerate_partial,
        salvage_past_gaps=True,
        quarantine=quarantine,
        decode=_decode_probe,
    )
    out = RecoveredList(records)
    out.report = report
    return out


def load_checkpoint(
    path: str | Path, specs: list[ExperimentSpec]
) -> CheckpointState:
    """Load a ``run_grid`` checkpoint: completed cells of ``specs`` only.

    Returns ``{spec.cell_key: probes}`` (with the underlying
    :class:`RecoveryReport` as ``.report``) for every cell whose full
    ``n_queries`` probes are present.  Partial cells (the run died
    mid-cell), damaged spans, and probes from foreign specs are dropped —
    their cells simply re-run on resume.  Because cells are only counted
    when complete, records salvaged past a corrupt span are safe to use.
    """
    by_key = {spec.cell_key: spec for spec in specs}
    groups: dict[tuple, list[ProbeResult]] = {}
    loaded = load_probes_jsonl(path, tolerate_partial=True)
    for probe in loaded:
        spec = by_key.get(probe.spec.cell_key)
        if spec is None or probe.spec != spec:
            continue
        groups.setdefault(spec.cell_key, []).append(probe)
    done = CheckpointState(
        (key, cell)
        for key, cell in groups.items()
        if len(cell) == by_key[key].n_queries
    )
    done.report = loaded.report
    return done


# ---------------------------------------------------------------------- #
# Event journals
# ---------------------------------------------------------------------- #
def append_events_jsonl(
    events: list[dict], path: str | Path, *, kind: str
) -> None:
    """Append generic event records to a kind-tagged JSONL journal.

    The write discipline matches :func:`append_probes_jsonl` — header on
    (crash-safe) creation, flush + fsync per batch, v2 CRC frames with a
    per-record sequence number continuing across appends.  ``kind``
    names the journal's schema (e.g. ``"session-events"``) so unrelated
    logs cannot be silently confused for each other.
    """
    _append_records(
        events,
        path,
        fmt=_EVENTS_FORMAT,
        label="event",
        site="storage.append_events",
        kind=kind,
    )


def save_events_jsonl(
    events: list[dict], path: str | Path, *, kind: str
) -> None:
    """Write events as an atomic v2 JSONL snapshot (header + frames).

    The snapshot discipline matches :func:`save_probes_jsonl` — tmp file,
    fsync, ``os.replace``, directory fsync — so a crash mid-save leaves
    the previous file intact.  This is the export path for whole-run
    artifacts produced in memory (trace files, telemetry timelines),
    which are rewritten rather than appended to.
    """
    path = Path(path)
    lines = [_header_line(_EVENTS_FORMAT, kind)]
    lines.extend(_frame_line(rec, seq) for seq, rec in enumerate(events))
    _atomic_write_text(path, "".join(lines), site="storage.save_events")


def load_events_jsonl(
    path: str | Path,
    *,
    kind: str,
    tolerate_partial: bool = False,
    quarantine: bool = True,
) -> RecoveredList:
    """Read events written by :func:`append_events_jsonl` (v1 or v2).

    Returns a list carrying its :class:`RecoveryReport` as ``.report``.
    With ``tolerate_partial=True`` the journal is recovered rather than
    rejected — but unlike probe files, an event journal is **truncated
    at the first damaged or missing record**: session replay depends on
    the exact contiguous prefix, so records beyond a gap are quarantined
    and reported (``truncated_at_seq``), never silently replayed.  A
    header of the wrong ``kind`` or version always raises — resuming one
    log type from another is a caller bug, not crash damage.

    Raises
    ------
    ExperimentError
        On a missing/incompatible header or corrupt records (strict mode).
    """

    def decode(rec):
        if not isinstance(rec, dict):
            raise ExperimentError("not an object")
        return rec

    records, report = _scan_jsonl(
        path,
        fmt=_EVENTS_FORMAT,
        label="event",
        kind=kind,
        tolerate=tolerate_partial,
        salvage_past_gaps=False,
        quarantine=quarantine,
        decode=decode,
    )
    out = RecoveredList(records)
    out.report = report
    return out


# ---------------------------------------------------------------------- #
# fsck: verify / repair any artifact
# ---------------------------------------------------------------------- #
def _detect_kind(path: Path) -> tuple[str | None, str | None]:
    """Best-effort artifact detection from the header line."""
    try:
        with path.open("rb") as fh:
            header = _parse_header(fh.readline())
    except OSError:
        return None, None
    if header is None:
        return None, None
    fmt = header.get("format")
    if fmt == _PROBES_FORMAT:
        return "probes", None
    if fmt == _EVENTS_FORMAT:
        return "events", header.get("kind")
    return None, None


def verify_artifact(
    path: str | Path,
    *,
    kind: str | None = None,
    event_kind: str | None = None,
    quarantine: bool = False,
) -> RecoveryReport:
    """Integrity-check one artifact and return its :class:`RecoveryReport`.

    ``kind`` is ``"probes"``, ``"events"``, or ``None`` to detect from
    the header.  Verification is read-only by default (``quarantine=False``
    suppresses the sidecar); it never modifies the artifact itself.

    Raises
    ------
    ExperimentError
        When the artifact kind cannot be determined (unreadable or
        foreign header and no explicit ``kind``), or the file is missing.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"{path} does not exist")
    detected, detected_event_kind = _detect_kind(path)
    kind = kind or detected
    if kind not in ("probes", "events"):
        raise ExperimentError(
            f"{path}: cannot determine artifact kind (unreadable or "
            f"unknown header); pass kind='probes' or 'events'"
        )
    if kind == "probes":
        _, report = _scan_jsonl(
            path,
            fmt=_PROBES_FORMAT,
            label="probe",
            tolerate=True,
            salvage_past_gaps=True,
            salvage_headerless=True,
            quarantine=quarantine,
            decode=_decode_probe,
        )
        report.kind = "probes"
    else:
        expect = event_kind or detected_event_kind
        _, report = _scan_jsonl(
            path,
            fmt=_EVENTS_FORMAT,
            label="event",
            kind=expect,
            check_kind=expect is not None and event_kind is not None,
            tolerate=True,
            salvage_past_gaps=False,
            salvage_headerless=True,
            quarantine=quarantine,
        )
        report.kind = f"events:{detected_event_kind or event_kind}"
    return report


def repair_artifact(
    path: str | Path,
    *,
    kind: str | None = None,
    event_kind: str | None = None,
) -> RecoveryReport:
    """Recover an artifact in place: quarantine damage, rewrite verified
    records as a fresh v2 file (atomic tmp + replace), resequencing from
    zero.  v1 files are upgraded to v2 in the process.  Returns the
    :class:`RecoveryReport` of what was found (the rewritten file is
    clean by construction).
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"{path} does not exist")
    detected, detected_event_kind = _detect_kind(path)
    kind = kind or detected
    if kind == "probes":
        probes, report = _scan_jsonl(
            path,
            fmt=_PROBES_FORMAT,
            label="probe",
            tolerate=True,
            salvage_past_gaps=True,
            salvage_headerless=True,
            decode=_decode_probe,
        )
        save_probes_jsonl(probes, path)
        report.kind = "probes"
    elif kind == "events":
        expect = event_kind or detected_event_kind or "unknown"

        def decode(rec):
            if not isinstance(rec, dict):
                raise ExperimentError("not an object")
            return rec

        events, report = _scan_jsonl(
            path,
            fmt=_EVENTS_FORMAT,
            label="event",
            kind=expect,
            check_kind=event_kind is not None,
            tolerate=True,
            salvage_past_gaps=False,
            salvage_headerless=True,
            decode=decode,
        )
        lines = [_header_line(_EVENTS_FORMAT, expect)]
        lines.extend(
            _frame_line(rec, seq) for seq, rec in enumerate(events)
        )
        _atomic_write_text(
            path, "".join(lines), site="storage.repair"
        )
        report.kind = f"events:{expect}"
    else:
        raise ExperimentError(
            f"{path}: cannot determine artifact kind (unreadable or "
            f"unknown header); pass kind='probes' or 'events'"
        )
    return report
