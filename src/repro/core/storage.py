"""Persistence of grid runs: JSONL probe storage.

A full Section III-B grid takes minutes to generate; analyses are cheap.
This module serializes :class:`ProbeResult` lists — including the sparse
value-region logits — to a JSON-lines file and back, so a grid run can be
computed once and re-analysed many times (or shared as an artifact, as the
paper's repository does).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.decoding import StepCandidates
from repro.core.grid import ExperimentSpec
from repro.core.runner import ProbeResult
from repro.errors import ExperimentError

__all__ = ["save_probes_jsonl", "load_probes_jsonl"]

_FORMAT_VERSION = 1


def _encode_probe(probe: ProbeResult) -> dict:
    spec = probe.spec
    return {
        "spec": {
            "size": spec.size,
            "selection": spec.selection,
            "n_icl": spec.n_icl,
            "set_id": spec.set_id,
            "seed": spec.seed,
            "n_queries": spec.n_queries,
            "root_seed": spec.root_seed,
        },
        "query_index": probe.query_index,
        "truth": probe.truth,
        "predicted": probe.predicted,
        "predicted_text": probe.predicted_text,
        "generated_text": probe.generated_text,
        "exact_copy": probe.exact_copy,
        "icl_value_strings": probe.icl_value_strings,
        "n_prompt_tokens": probe.n_prompt_tokens,
        "value_steps": [
            {
                "tokens": list(s.tokens),
                "logits": [round(float(x), 6) for x in s.logits],
                "chosen": s.chosen,
            }
            for s in probe.value_steps
        ],
    }


def _decode_probe(record: dict) -> ProbeResult:
    try:
        spec = ExperimentSpec(**record["spec"])
        steps = [
            StepCandidates(
                tokens=tuple(s["tokens"]),
                logits=np.asarray(s["logits"], dtype=float),
                chosen=int(s["chosen"]),
            )
            for s in record["value_steps"]
        ]
        return ProbeResult(
            spec=spec,
            query_index=int(record["query_index"]),
            truth=float(record["truth"]),
            predicted=(
                None
                if record["predicted"] is None
                else float(record["predicted"])
            ),
            predicted_text=record["predicted_text"],
            generated_text=record["generated_text"],
            exact_copy=bool(record["exact_copy"]),
            icl_value_strings=list(record["icl_value_strings"]),
            value_steps=steps,
            n_prompt_tokens=int(record["n_prompt_tokens"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"corrupt probe record: {exc}") from exc


def save_probes_jsonl(probes: list[ProbeResult], path: str | Path) -> None:
    """Write probes to a JSONL file (one header line, one line per probe)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            json.dumps({"format": "repro-probes", "version": _FORMAT_VERSION})
            + "\n"
        )
        for probe in probes:
            fh.write(json.dumps(_encode_probe(probe)) + "\n")


def load_probes_jsonl(path: str | Path) -> list[ProbeResult]:
    """Read probes written by :func:`save_probes_jsonl`.

    Raises
    ------
    ExperimentError
        On a missing/incompatible header or corrupt records.
    """
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise ExperimentError(f"{path} is not a probe JSONL file") from None
        if header.get("format") != "repro-probes":
            raise ExperimentError(f"{path} is not a probe JSONL file")
        if header.get("version") != _FORMAT_VERSION:
            raise ExperimentError(
                f"{path} has format version {header.get('version')}, "
                f"expected {_FORMAT_VERSION}"
            )
        return [_decode_probe(json.loads(line)) for line in fh if line.strip()]
