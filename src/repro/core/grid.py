"""Experiment-grid specification (Section III-B).

One :class:`ExperimentSpec` names an *experiment* in the paper's sense: a
problem size, an example-selection strategy, an ICL example count, an
example-set id (of the five disjoint sets), and a sampling seed.  Each
experiment issues ``n_queries`` predictions, over which the per-experiment
metrics (R^2, MARE, MSRE) are computed; the Central Limit Theorem is then
applied across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.dataset.syr2k import SIZE_DIMENSIONS
from repro.errors import ExperimentError

__all__ = ["ExperimentSpec", "paper_grid", "quick_grid"]

_SELECTIONS = ("random", "curated")

#: The paper's ICL example counts: "ranging from one to one hundred".
PAPER_ICL_COUNTS: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment cell of the grid.

    Attributes
    ----------
    size:
        Problem size ("SM" / "XL" in the paper).
    selection:
        "random" (ICL examples drawn uniformly) or "curated" (minimal
        configuration-space edit distance to the query).
    n_icl:
        Number of in-context examples.
    set_id:
        Which of the disjoint example sets (0-based).
    seed:
        Sampling seed for generation.
    n_queries:
        Predictions made within this experiment.
    root_seed:
        Root of the deterministic seed tree (dataset + selections).
    """

    size: str
    selection: str
    n_icl: int
    set_id: int
    seed: int
    n_queries: int = 4
    root_seed: int = 20250705

    def __post_init__(self):
        if self.size not in SIZE_DIMENSIONS:
            raise ExperimentError(f"unknown size {self.size!r}")
        if self.selection not in _SELECTIONS:
            raise ExperimentError(
                f"selection must be one of {_SELECTIONS}, got {self.selection!r}"
            )
        if self.n_icl < 1:
            raise ExperimentError(f"n_icl must be >= 1, got {self.n_icl}")
        if self.set_id < 0:
            raise ExperimentError(f"set_id must be >= 0, got {self.set_id}")
        if self.n_queries < 1:
            raise ExperimentError(
                f"n_queries must be >= 1, got {self.n_queries}"
            )

    @property
    def cell_key(self) -> tuple:
        """Grouping key identifying this experiment cell."""
        return (self.size, self.selection, self.n_icl, self.set_id, self.seed)

    @property
    def experiment_key(self) -> tuple:
        """Metric-grouping key: an *experiment* in the paper's sense.

        The five disjoint example sets exist "to limit the possibility of
        poor examples biasing the results" — they are variance reduction
        within one experiment, so per-experiment metrics pool across
        ``set_id`` (giving each R^2 a healthy sample of query truths).
        """
        return (self.size, self.selection, self.n_icl, self.seed)


def paper_grid(
    sizes: Sequence[str] = ("SM", "XL"),
    icl_counts: Sequence[int] = PAPER_ICL_COUNTS,
    n_sets: int = 5,
    seeds: Sequence[int] = (1, 2, 3),
    selections: Sequence[str] = _SELECTIONS,
    n_queries: int = 4,
    root_seed: int = 20250705,
) -> list[ExperimentSpec]:
    """The full Section III-B grid (defaults mirror the paper).

    Five disjoint example sets, three sampling seeds, ICL counts 1..100,
    both sizes, both selection strategies.
    """
    specs = [
        ExperimentSpec(
            size=size,
            selection=selection,
            n_icl=n_icl,
            set_id=set_id,
            seed=seed,
            n_queries=n_queries,
            root_seed=root_seed,
        )
        for size, selection, n_icl, set_id, seed in product(
            sizes, selections, icl_counts, range(n_sets), seeds
        )
    ]
    if not specs:
        raise ExperimentError("grid is empty")
    return specs


def quick_grid(
    sizes: Sequence[str] = ("SM", "XL"),
    icl_counts: Sequence[int] = (1, 5, 20, 50),
    n_sets: int = 2,
    seeds: Sequence[int] = (1, 2),
    selections: Sequence[str] = _SELECTIONS,
    n_queries: int = 3,
    root_seed: int = 20250705,
) -> list[ExperimentSpec]:
    """A reduced grid for tests and fast benchmark runs."""
    return paper_grid(
        sizes=sizes,
        icl_counts=icl_counts,
        n_sets=n_sets,
        seeds=seeds,
        selections=selections,
        n_queries=n_queries,
        root_seed=root_seed,
    )
