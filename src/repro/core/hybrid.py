"""The paper's Section V-D proposal, implemented: a numeric-head hybrid.

"an LLM can be given a unique token to signal to a supporting model that
a number should be generated at a particular position within its
response.  This mimics modern LLM tool usage patterns by providing a hook
for any number-generating process to transparently assist the LLM."

:class:`HybridSurrogate` realizes that design: the language model runs
the prompt exactly as in the discriminative pipeline, but the moment the
generation reaches the value position (the format scorer's "value starts
here" state), control transfers to a pluggable *numeric head* — a small
quantitative model fitted on the very same in-context examples — whose
prediction is serialized back into the demonstrated value format and
spliced into the response.

Two heads ship with the library:

* :class:`KNNNumericHead` — distance-weighted k-nearest-neighbour
  regression in normalized configuration space (cheap enough to refit per
  prompt, like a tool call would);
* :class:`GBTNumericHead` — a small gradient-boosted ensemble on the ICL
  examples.

The ablation benchmark shows the hybrid repairs the failure the paper
documents: with the identical prompt budget, prediction R^2 jumps from
negative territory to the level a dedicated regressor achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.space import ConfigSpace
from repro.dataset.syr2k import Syr2kTask
from repro.errors import AnalysisError
from repro.gbt.boosting import BoostingParams, GradientBoostingRegressor
from repro.gbt.encoding import FeatureEncoder, TargetTransform
from repro.llm.model import SurrogateLM
from repro.llm.tokenizer import Tokenizer
from repro.prompts.builder import PromptBuilder

__all__ = [
    "NumericHead",
    "KNNNumericHead",
    "GBTNumericHead",
    "HybridPrediction",
    "HybridSurrogate",
]


class NumericHead:
    """A small regressor fitted on the in-context examples.

    Subclasses implement :meth:`fit` and :meth:`predict_one` over
    normalized ordinal feature rows.
    """

    name = "numeric-head"

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NumericHead":
        raise NotImplementedError

    def predict_one(self, x_row: np.ndarray) -> float:
        raise NotImplementedError


class KNNNumericHead(NumericHead):
    """Distance-weighted k-NN regression in normalized feature space."""

    name = "knn"

    def __init__(self, k: int = 5, power: float = 2.0):
        if k < 1:
            raise AnalysisError(f"k must be >= 1, got {k}")
        self.k = k
        self.power = power
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNNumericHead":
        self._x = np.asarray(x, dtype=float)
        self._y = np.asarray(y, dtype=float)
        return self

    def predict_one(self, x_row: np.ndarray) -> float:
        if self._x is None:
            raise AnalysisError("KNNNumericHead used before fit()")
        d = np.sqrt(((self._x - x_row[None, :]) ** 2).sum(axis=1))
        k = min(self.k, d.size)
        nearest = np.argsort(d)[:k]
        w = 1.0 / (d[nearest] ** self.power + 1e-9)
        # Geometric weighting in log space matches the multiplicative
        # structure of runtimes.
        return float(np.exp(np.average(np.log(self._y[nearest]), weights=w)))


class GBTNumericHead(NumericHead):
    """A small boosted-tree ensemble refit on the ICL examples."""

    name = "gbt"

    def __init__(self, n_estimators: int = 60, max_depth: int = 3):
        self.params = BoostingParams(
            n_estimators=n_estimators,
            learning_rate=0.15,
            max_depth=max_depth,
            min_samples_leaf=1,
        )
        self._model: GradientBoostingRegressor | None = None
        self._tt = TargetTransform("log")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GBTNumericHead":
        self._model = GradientBoostingRegressor(self.params).fit(
            x, self._tt.forward(y)
        )
        return self

    def predict_one(self, x_row: np.ndarray) -> float:
        if self._model is None:
            raise AnalysisError("GBTNumericHead used before fit()")
        return float(self._tt.inverse(self._model.predict(x_row[None, :]))[0])


@dataclass
class HybridPrediction:
    """One hybrid prediction: the spliced response plus provenance."""

    value: float
    value_text: str
    generated_text: str
    head_name: str
    n_prompt_tokens: int

    @property
    def parsed(self) -> bool:
        return True  # the numeric head always yields a well-formed value


class HybridSurrogate:
    """LLM front-end + numeric-head back-end (the Section V-D design).

    Parameters
    ----------
    task:
        The syr2k task.
    head:
        The numeric head (default k-NN); refit on each prompt's examples.
    """

    def __init__(
        self,
        task: Syr2kTask,
        head: NumericHead | None = None,
        tokenizer: Tokenizer | None = None,
        model: SurrogateLM | None = None,
    ):
        self.task = task
        self.head = head or KNNNumericHead()
        self.tokenizer = tokenizer or Tokenizer()
        self.model = model or SurrogateLM(self.tokenizer.vocab)
        self.builder = PromptBuilder(task, self.tokenizer)
        self.space: ConfigSpace = task.space()
        self._encoder = FeatureEncoder(self.space)
        # Standardization constants over the whole space so distances are
        # comparable across features.
        full = self._encoder.encode_indices(np.arange(self.space.size))
        self._mean = full.mean(axis=0)
        self._std = full.std(axis=0)
        self._std[self._std == 0] = 1.0

    def _features(self, configs: Sequence[Mapping[str, object]]) -> np.ndarray:
        idx = [self.space.to_index(c) for c in configs]
        raw = self._encoder.encode_indices(np.asarray(idx))
        return (raw - self._mean) / self._std

    def predict(
        self,
        examples: Sequence[tuple[Mapping[str, object], float]],
        query_config: Mapping[str, object],
        seed: int = 0,
    ) -> HybridPrediction:
        """Predict the query's runtime via the numeric head.

        The prompt is built and analysed exactly as in the discriminative
        pipeline — the LM's format analysis determines the demonstrated
        value format — but the number itself comes from the head fitted
        on the in-context examples.
        """
        if not examples:
            raise AnalysisError("hybrid prediction needs >= 1 ICL example")
        parts = self.builder.discriminative(examples, query_config)
        analysis = self.model.prepare(parts.ids)

        x = self._features([cfg for cfg, _ in examples])
        y = np.asarray([rt for _, rt in examples], dtype=float)
        self.head.fit(x, y)
        value = self.head.predict_one(self._features([query_config])[0])
        value = float(max(value, 1e-9))

        # Serialize in the demonstrated format (decimals learned from the
        # prompt), then splice into the response like a tool result.
        decimals = analysis.expected_decimals or 7
        if value >= 1.0:
            text = f"{value:.{min(decimals, 6)}f}"
        else:
            text = f"{value:.{decimals}f}"
        if float(text) == 0.0:
            # Demonstrated precision cannot express the head's value;
            # widen rather than returning a degenerate zero.
            text = f"{value:.9f}"
        return HybridPrediction(
            value=float(text),
            value_text=text,
            generated_text=text + "\n",
            head_name=self.head.name,
            n_prompt_tokens=int(parts.ids.size),
        )
