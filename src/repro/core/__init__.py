"""The paper's primary contribution: the ICL-feasibility evaluation pipeline.

This package wires the substrates together into the experiments of
Sections III-IV: LLAMBO-style discriminative surrogate prediction
(:mod:`repro.core.surrogate`), the full experiment grid — ICL counts from
one to one hundred, five disjoint example sets, three sampling seeds, two
problem sizes, random vs. minimal-edit-distance curated selection —
(:mod:`repro.core.grid`), the (optionally parallel) experiment runner with
full logit capture (:mod:`repro.core.runner`), and result aggregation
(:mod:`repro.core.records`).
"""

from repro.core.surrogate import DiscriminativeSurrogate, SurrogatePrediction
from repro.core.generative import (
    GenerativePrediction,
    GenerativeSurrogate,
    bucketize,
)
from repro.core.hybrid import (
    GBTNumericHead,
    HybridPrediction,
    HybridSurrogate,
    KNNNumericHead,
    NumericHead,
)
from repro.core.grid import ExperimentSpec, paper_grid, quick_grid
from repro.core.records import (
    CellMetrics,
    GridReport,
    build_report,
    cell_metrics,
    group_probes,
)
from repro.core.runner import ProbeResult, run_grid, run_spec
from repro.core.storage import load_probes_jsonl, save_probes_jsonl

__all__ = [
    "DiscriminativeSurrogate",
    "SurrogatePrediction",
    "GenerativeSurrogate",
    "GenerativePrediction",
    "bucketize",
    "HybridSurrogate",
    "HybridPrediction",
    "NumericHead",
    "KNNNumericHead",
    "GBTNumericHead",
    "ExperimentSpec",
    "paper_grid",
    "quick_grid",
    "ProbeResult",
    "run_spec",
    "run_grid",
    "CellMetrics",
    "GridReport",
    "cell_metrics",
    "group_probes",
    "build_report",
    "save_probes_jsonl",
    "load_probes_jsonl",
]
