"""Generative surrogate mode: N-ary performance-bucket classification.

LLAMBO's second prompting mode (Section II-B of the paper): instead of
regressing a runtime, the model assigns the query configuration to one of
``n_buckets`` performance classes demonstrated in context.  The paper
describes but does not evaluate this mode; we implement it fully so the
benchmark suite can test whether coarsening the output space rescues
in-context learning (it does not — the model parrots bucket labels the
same way it parrots value prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.decoding import StepCandidates
from repro.dataset.generate import PerformanceDataset
from repro.dataset.syr2k import Syr2kTask
from repro.errors import AnalysisError, ParseError
from repro.llm.engine import GenerationEngine
from repro.llm.model import SurrogateLM
from repro.llm.sampling import SamplingParams
from repro.llm.tokenizer import Tokenizer
from repro.prompts.builder import PromptBuilder
from repro.prompts.parser import extract_class_label

__all__ = ["bucketize", "GenerativePrediction", "GenerativeSurrogate"]


def bucketize(
    runtimes: Sequence[float], n_buckets: int, edges: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Quantile-bucket runtimes into ``n_buckets`` classes (0 = fastest).

    Returns
    -------
    (labels, edges):
        Integer labels per runtime and the internal bucket edges used
        (pass the returned ``edges`` back in to bucketize new values on
        the same scale).
    """
    values = np.asarray(runtimes, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise AnalysisError("runtimes must be a non-empty 1-D array")
    if n_buckets < 2:
        raise AnalysisError(f"need >= 2 buckets, got {n_buckets}")
    if edges is None:
        qs = np.linspace(0, 1, n_buckets + 1)[1:-1]
        edges = np.quantile(values, qs)
    labels = np.searchsorted(edges, values, side="right")
    return labels.astype(np.int64), np.asarray(edges, dtype=float)


@dataclass
class GenerativePrediction:
    """One bucket-classification prediction with its evidence."""

    bucket: int | None
    generated_text: str
    icl_labels: list[str]
    value_steps: list[StepCandidates]
    n_prompt_tokens: int
    seed: int

    @property
    def parsed(self) -> bool:
        return self.bucket is not None


class GenerativeSurrogate:
    """LLAMBO generative surrogate over performance buckets."""

    def __init__(
        self,
        task: Syr2kTask,
        n_buckets: int = 5,
        tokenizer: Tokenizer | None = None,
        model: SurrogateLM | None = None,
        sampling: SamplingParams | None = None,
    ):
        if n_buckets < 2:
            raise AnalysisError(f"need >= 2 buckets, got {n_buckets}")
        self.task = task
        self.n_buckets = n_buckets
        self.tokenizer = tokenizer or Tokenizer()
        self.model = model or SurrogateLM(self.tokenizer.vocab)
        self.engine = GenerationEngine(self.model, sampling=sampling)
        self.builder = PromptBuilder(task, self.tokenizer)

    def predict(
        self,
        examples: Sequence[tuple[dict, int]],
        query_config: dict,
        seed: int = 0,
    ) -> GenerativePrediction:
        """Classify ``query_config`` given labelled ICL ``examples``."""
        parts = self.builder.generative(
            examples, query_config, n_buckets=self.n_buckets
        )
        trace = self.engine.generate(parts.ids, seed=seed)
        text = trace.generated_text(self.tokenizer.vocab)
        try:
            bucket = extract_class_label(text, self.n_buckets)
        except ParseError:
            bucket = None
        return GenerativePrediction(
            bucket=bucket,
            generated_text=text,
            icl_labels=list(parts.icl_value_strings),
            value_steps=trace.value_region(self.tokenizer.vocab),
            n_prompt_tokens=int(parts.ids.size),
            seed=int(seed),
        )

    def evaluate(
        self,
        dataset: PerformanceDataset,
        example_rows: Sequence[int],
        query_rows: Sequence[int],
        seed: int = 0,
    ) -> dict:
        """Run a labelled classification experiment on dataset rows.

        Buckets are fit on the example rows' runtimes and reused for the
        queries (as a real deployment would).  Returns accuracy, the mean
        absolute bucket distance, and the majority-class baseline accuracy.
        """
        example_rows = np.asarray(example_rows, dtype=np.int64)
        query_rows = np.asarray(query_rows, dtype=np.int64)
        if example_rows.size == 0 or query_rows.size == 0:
            raise AnalysisError("need non-empty example and query rows")
        ex_labels, edges = bucketize(
            dataset.runtimes[example_rows], self.n_buckets
        )
        q_labels, _ = bucketize(
            dataset.runtimes[query_rows], self.n_buckets, edges=edges
        )
        examples = [
            (dataset.config(int(r)), int(lbl))
            for r, lbl in zip(example_rows, ex_labels)
        ]
        hits = 0
        dist = []
        parsed = 0
        for i, (row, truth) in enumerate(zip(query_rows, q_labels)):
            pred = self.predict(
                examples, dataset.config(int(row)), seed=seed * 1000 + i
            )
            if not pred.parsed:
                continue
            parsed += 1
            hits += int(pred.bucket == truth)
            dist.append(abs(pred.bucket - int(truth)))
        counts = np.bincount(ex_labels, minlength=self.n_buckets)
        majority = int(np.argmax(counts))
        majority_acc = float(np.mean(q_labels == majority))
        return {
            "n_queries": int(query_rows.size),
            "parse_rate": parsed / query_rows.size,
            "accuracy": hits / parsed if parsed else 0.0,
            "mean_bucket_distance": float(np.mean(dist)) if dist else float("nan"),
            "majority_baseline": majority_acc,
            "chance": 1.0 / self.n_buckets,
        }
