"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``dataset``   generate a syr2k performance table and write it as CSV;
``predict``   run one LLM surrogate prediction against the dataset;
``grid``      run a (reduced or full) experiment grid and print the
              Section IV-A summary report;
``tune``      compare autotuners on a syr2k task;
``sessions``  run/status/resume multi-tenant autotuning campaigns through
              the shared serving stack (:mod:`repro.sessions`): fair-share
              scheduling, admission control, JSONL event-log resume;
``table1``    print the GBT baseline metrics for a list of training sizes;
``serve-bench``  drive a repeated-prompt workload through the
              :mod:`repro.serve` inference service and print its
              :class:`~repro.serve.ServiceStats` with and without caching;
``loadtest``  replay a seeded arrival schedule (:mod:`repro.loadgen`)
              open- or closed-loop against the service and gate the
              resulting SLO report (latency quantiles, goodput, shed /
              error / degraded rates, per-tenant slices) on a
              declarative policy — the CI nightly-soak entry point;
``chaos``     run a seeded fault schedule (:mod:`repro.faults`) against a
              live resilient service and print the availability /
              p95-under-faults report; ``--disk`` drills the durability
              layer instead (kill -9 under torn writes / bitflips /
              ENOSPC, fsck, resume, bit-identical history);
``fsck``      verify or repair any persistent artifact (probe snapshots,
              grid checkpoints, event journals — telemetry timelines and
              trace files included): CRC + sequence check,
              salvage/quarantine rewrite with ``--repair``;
``trace``     analyze a span trace written by ``serve-bench --trace`` or
              ``loadtest --trace``: ``summarize`` reconstructs the
              (cross-process stitched) span tree and prints the
              per-stage latency breakdown; ``flame`` exports folded
              stacks and a speedscope JSON profile;
``top``       render the operator dashboard from a telemetry timeline
              (``loadtest --telemetry``): qps, latency and queue-wait
              percentiles, hit rates, breaker/shard health, fairness,
              SLO burn alerts — live refresh or ``--once``.

Every command is deterministic given ``--seed`` — including ``chaos``,
whose injected faults, retries, and degradations reproduce bit-for-bit.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.analysis import score_predictions
from repro.core import build_report, paper_grid, run_grid
from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.io import save_dataset_csv
from repro.dataset.splits import disjoint_example_sets, train_test_split
from repro.dataset.syr2k import SIZE_NAMES, syr2k_space
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.loadgen.arrivals import ARRIVAL_KINDS
from repro.utils.tables import Table

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """argparse type for arguments that must be >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Is In-Context Learning Feasible "
            "for HPC Performance Autotuning?'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dataset", help="generate a syr2k dataset CSV")
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--output", required=True, help="CSV output path")
    p.add_argument("--seed", type=int, default=20250705)

    p = sub.add_parser("predict", help="one LLM surrogate prediction")
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=int, default=10)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("grid", help="run an experiment grid + report")
    p.add_argument("--sizes", nargs="+", choices=SIZE_NAMES, default=["SM", "XL"])
    p.add_argument(
        "--icl", nargs="+", type=int, default=[1, 5, 20, 50],
        help="ICL example counts",
    )
    p.add_argument("--sets", type=int, default=2)
    p.add_argument("--seeds", nargs="+", type=int, default=[1, 2])
    p.add_argument("--queries", type=int, default=3)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--prefix-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse prepared prompt-prefix snapshots across the probes "
        "of each cell (bit-identical results; --no-prefix-cache runs "
        "the cold path)",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="execute through the repro.serve PredictionService "
        "(microbatching + caches) instead of the process pool",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="serve through N worker processes (implies --serve; "
        "0 keeps the in-process backend — bit-identical results "
        "either way)",
    )
    p.add_argument(
        "--save", default=None, metavar="PATH",
        help="also save the probes as JSONL for later `repro report`",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="append completed cells to this JSONL file as the run "
        "progresses, so a killed run can be resumed",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint: skip cells already complete "
        "there and run only the rest",
    )

    p = sub.add_parser(
        "report", help="full analysis report from saved probes"
    )
    p.add_argument("probes", help="JSONL file written by `repro grid --save`")

    p = sub.add_parser("tune", help="compare autotuners")
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--budget", type=int, default=50)
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser(
        "sessions", help="multi-tenant autotuning campaigns"
    )
    p.add_argument(
        "action", choices=["run", "status", "resume"],
        help="run fresh campaigns, inspect an event log, or resume one",
    )
    p.add_argument(
        "--log", default=None, metavar="PATH",
        help="session event-log JSONL (required for status/resume; "
        "enables crash-resume for run)",
    )
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument(
        "--tenants", type=_positive_int, default=3,
        help="number of tenants (one session each)",
    )
    p.add_argument(
        "--budget", type=_positive_int, default=12,
        help="evaluations per campaign",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--tuner", choices=["random", "hill-climb"], default="random"
    )
    p.add_argument(
        "--priorities", nargs="+", type=_positive_int, default=None,
        help="per-tenant fair-share weights (cycled over tenants)",
    )
    p.add_argument(
        "--shared-trajectory", action=argparse.BooleanOptionalAction,
        default=True,
        help="tenants share one tuner seed, so identical prompts ride "
        "one lockstep prefix-group decode (--no-shared-trajectory "
        "gives each tenant an independent search)",
    )
    p.add_argument(
        "--max-inflight", type=_positive_int, default=8,
        help="admission controller's load-shedding ceiling",
    )
    p.add_argument(
        "--quota", type=_positive_int, default=None,
        help="per-tenant lifetime evaluation quota",
    )
    p.add_argument(
        "--rate", type=float, default=None,
        help="per-tenant token-bucket rate (evaluations/s)",
    )
    p.add_argument(
        "--deadline", type=float, default=None,
        help="per-campaign wall-clock deadline in seconds",
    )
    p.add_argument("--batch-size", type=_positive_int, default=8)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--shards", type=int, default=0,
        help="host campaigns on a sharded multi-process backend "
        "(0 = in-process)",
    )
    p.add_argument(
        "--max-evaluations", type=_positive_int, default=None,
        help="stop after this many completed evaluations (campaigns "
        "are PAUSED and can be resumed from --log)",
    )
    p.add_argument(
        "--resilient", action="store_true",
        help="drive through ResilientService (retry/breaker/fallback)",
    )
    p.add_argument(
        "--min-fairness", type=float, default=None,
        help="exit 1 if the per-tenant Jain's index ends below this",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="also print the sessions metrics-registry snapshot",
    )

    p = sub.add_parser(
        "serve-bench", help="benchmark the surrogate serving layer"
    )
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=_positive_int, default=5)
    p.add_argument(
        "--unique", type=_positive_int, default=8,
        help="distinct probes in the workload",
    )
    p.add_argument(
        "--repeats", type=_positive_int, default=6,
        help="times each distinct probe recurs",
    )
    p.add_argument("--batch-size", type=_positive_int, default=8)
    p.add_argument(
        "--max-wait", type=float, default=0.005,
        help="microbatch flush deadline in seconds",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--shards", type=int, default=0,
        help="benchmark the sharded multi-process backend with N "
        "worker replicas (0 = in-process default)",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--prefix-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse prepared prompt-prefix snapshots and group "
        "same-prompt requests into lockstep batch decodes "
        "(--no-prefix-cache measures the cold scalar path)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="skip the caches-disabled comparison run",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record spans for the caches-on run and export them as "
        "JSONL to PATH (read back with `repro trace summarize PATH`)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="also print the unified metrics-registry snapshot "
        "(repro.obs) for the caches-on run",
    )

    p = sub.add_parser(
        "loadtest",
        help="deterministic load generation + SLO conformance check",
    )
    p.add_argument(
        "--arrival", choices=list(ARRIVAL_KINDS), default="poisson",
        help="arrival process shaping when requests are offered",
    )
    p.add_argument(
        "--rps", type=float, default=50.0,
        help="mean offered rate in requests/second",
    )
    p.add_argument(
        "--duration", type=float, default=5.0,
        help="schedule horizon in seconds",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--mode", choices=["open", "closed"], default="open",
        help="open loop (arrival-clocked, coordinated-omission-free "
        "latency) or closed loop (fixed virtual-client pool)",
    )
    p.add_argument(
        "--concurrency", type=_positive_int, default=8,
        help="closed-loop virtual clients (ignored open-loop)",
    )
    p.add_argument(
        "--on-fraction", type=float, default=0.5,
        help="onoff arrivals: fraction of each period that bursts",
    )
    p.add_argument(
        "--period", type=float, default=2.0,
        help="onoff arrivals: burst cycle length in seconds",
    )
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=_positive_int, default=4)
    p.add_argument(
        "--unique", type=_positive_int, default=8,
        help="distinct prompts in the workload population",
    )
    p.add_argument(
        "--skew", type=float, default=1.1,
        help="Zipf exponent over prompt popularity (0 = uniform)",
    )
    p.add_argument(
        "--tenants", type=_positive_int, default=3,
        help="tenants arrivals are attributed to (per-tenant SLO slice)",
    )
    p.add_argument(
        "--seed-lanes", type=_positive_int, default=4,
        help="distinct sampling seeds each prompt is replayed under",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (missed = SLO timeout)",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="target the sharded multi-process backend with N worker "
        "replicas (0 = in-process service)",
    )
    p.add_argument("--batch-size", type=_positive_int, default=8)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--sessions", type=int, default=0, metavar="N",
        help="also host N autotuning campaigns (one per tenant, "
        "round-robin) on the same service while the load runs — the "
        "report gains a sessions section with completions + fairness",
    )
    p.add_argument(
        "--session-budget", type=_positive_int, default=8,
        help="evaluations per ride-along campaign (with --sessions)",
    )
    p.add_argument(
        "--slo", default="default", metavar="POLICY",
        help="SLO policy: 'default' (committed gate), 'off' (report "
        "only), or a JSON file of SLOPolicy fields; violations exit 1",
    )
    p.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the full SLO report as canonical JSON to PATH "
        "(the bench report-source consumed by repro.bench.regression)",
    )
    p.add_argument(
        "--warmup", action=argparse.BooleanOptionalAction, default=True,
        help="serve one unmeasured request per distinct prompt before "
        "the clock starts, so shard spawn / model warm / prefix "
        "preparation costs do not flood the measured window "
        "(--no-warmup measures cold-start conformance instead)",
    )
    p.add_argument(
        "--check-determinism", action="store_true",
        help="run the identical spec twice against fresh services and "
        "exit 1 unless schedules, workloads and the reports' "
        "deterministic payloads match byte-for-byte",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="also print the loadgen metrics-registry snapshot",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record loadgen + serving spans and export JSONL to PATH",
    )
    p.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="run the continuous telemetry sampler during the load and "
        "export the timeline as a CRC-framed JSONL artifact to PATH "
        "(render with `repro top PATH`, check with `repro fsck PATH`)",
    )
    p.add_argument(
        "--telemetry-interval", type=float, default=0.5,
        help="telemetry sampler cadence in seconds",
    )

    p = sub.add_parser(
        "chaos", help="fault-injection drill against the serving stack"
    )
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=_positive_int, default=5)
    p.add_argument(
        "--requests", type=_positive_int, default=60,
        help="logical requests to drive through the resilient service",
    )
    p.add_argument(
        "--unique", type=_positive_int, default=12,
        help="distinct probes the workload cycles through",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--error-rate", type=float, default=0.08,
        help="per-request transient worker-error probability",
    )
    p.add_argument(
        "--latency-rate", type=float, default=0.05,
        help="per-request latency-spike probability",
    )
    p.add_argument(
        "--latency-s", type=float, default=0.01,
        help="latency-spike duration in seconds",
    )
    p.add_argument(
        "--evict-rate", type=float, default=0.02,
        help="per-request cache-eviction-storm probability",
    )
    p.add_argument(
        "--stall-rate", type=float, default=0.05,
        help="per-flush queue-stall probability",
    )
    p.add_argument(
        "--stall-s", type=float, default=0.005,
        help="queue-stall duration in seconds",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="drill the sharded multi-process backend with N worker "
        "replicas (0 = in-process)",
    )
    p.add_argument(
        "--kill-rate", type=float, default=0.0,
        help="per-dispatch probability of SIGKILLing the target shard "
        "before enqueue (requires --shards > 0; killed tickets fail "
        "with ShardCrashError and are retried on the respawned shard)",
    )
    p.add_argument(
        "--max-attempts", type=_positive_int, default=4,
        help="retry policy: total attempts per logical request",
    )
    p.add_argument(
        "--no-fallback", action="store_true",
        help="disable graceful degradation (final failures then raise)",
    )
    p.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="also export the drill's telemetry timeline to PATH (the "
        "sampler always runs during the service drill: the report "
        "includes its liveness check — no sample gap over twice the "
        "cadence, even while shards are being killed)",
    )
    p.add_argument(
        "--telemetry-interval", type=float, default=0.25,
        help="drill telemetry sampler cadence in seconds",
    )
    p.add_argument(
        "--telemetry-drop-rate", type=float, default=0.0,
        help="per-sample probability the exporter drops the sample "
        "(the timeline must account for every gap)",
    )
    p.add_argument(
        "--telemetry-dup-rate", type=float, default=0.0,
        help="per-sample probability the exporter writes the sample "
        "twice (loaders must dedupe by payload seq)",
    )
    p.add_argument(
        "--verify-determinism", action="store_true",
        help="re-run the schedule (plain, then with degraded cache "
        "serves interleaved) and compare counters, fault schedules, "
        "response values and the telemetry timeline's deterministic "
        "fields (exit 1 on any divergence)",
    )
    p.add_argument(
        "--sessions", action="store_true",
        help="drill the session manager instead of a raw workload: "
        "3-tenant campaigns under DEFAULT_FAULT_PLAN, asserting >= 99%% "
        "completion and an event log with no lost or duplicated "
        "evaluations (with --verify-determinism: identical histories "
        "across two runs)",
    )
    p.add_argument(
        "--disk", action="store_true",
        help="durability drill instead of a service workload: a "
        "checkpointed grid repeatedly hard-killed by injected disk "
        "faults (torn writes, bitflips-after-ack, ENOSPC, fsync "
        "failures) under DISK_FAULT_PLAN, with `repro fsck --repair` "
        "between crashes, plus the same discipline on an event "
        "journal; exits non-zero unless the recovered histories are "
        "bit-identical to an unfaulted run with all damage accounted "
        "for",
    )

    p = sub.add_parser(
        "fsck",
        help="verify or repair artifact integrity (probe snapshots, "
        "grid checkpoints, event journals)",
    )
    p.add_argument("paths", nargs="+", help="artifact JSONL files")
    p.add_argument(
        "--repair", action="store_true",
        help="rewrite each artifact from its recoverable records "
        "(damage is quarantined to <path>.quarantine; v1 files are "
        "upgraded to the checksummed v2 framing)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any damage was found, even if it "
        "was repaired",
    )
    p.add_argument(
        "--kind", choices=["auto", "probes", "events"], default="auto",
        help="artifact type (default: detect from the header)",
    )
    p.add_argument(
        "--event-kind", default=None, metavar="KIND",
        help="assert the journal's event kind (required to salvage an "
        "event journal whose header line was destroyed; the header "
        "carries no CRC, but v2 record frames are self-verifying)",
    )
    p.add_argument(
        "--quarantine", action="store_true",
        help="copy damaged spans to the sidecar during a plain verify "
        "(--repair always quarantines)",
    )

    p = sub.add_parser(
        "trace", help="analyze a span trace (serve-bench --trace output)"
    )
    p.add_argument("action", choices=["summarize", "flame"])
    p.add_argument("path", help="JSONL trace file")
    p.add_argument(
        "--tree", type=int, default=0, metavar="N",
        help="also print the first N reconstructed span trees",
    )
    p.add_argument(
        "--folded", default=None, metavar="PATH",
        help="flame: folded-stacks output path "
        "(default <trace>.folded; flamegraph.pl input format)",
    )
    p.add_argument(
        "--speedscope", default=None, metavar="PATH",
        help="flame: speedscope JSON output path "
        "(default <trace>.speedscope.json; open at speedscope.app)",
    )

    p = sub.add_parser(
        "top",
        help="operator dashboard from a telemetry timeline "
        "(loadtest --telemetry output)",
    )
    p.add_argument("path", help="telemetry timeline JSONL file")
    p.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit (CI mode)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="live-mode refresh cadence in seconds",
    )
    p.add_argument(
        "--window", type=float, default=10.0,
        help="trailing window for rate computations in seconds",
    )
    p.add_argument(
        "--refresh-limit", type=int, default=0, metavar="N",
        help="live mode: exit after N refreshes (0 = until Ctrl-C)",
    )

    p = sub.add_parser("table1", help="GBT baseline metrics (Table I)")
    p.add_argument("--sizes", nargs="+", choices=SIZE_NAMES, default=["SM", "XL"])
    p.add_argument(
        "--train", nargs="+", type=int, default=[100, 500, 1000],
        help="training-set sizes",
    )
    return parser


def _cmd_dataset(args) -> int:
    dataset = generate_dataset(args.size, seed=args.seed)
    save_dataset_csv(dataset, args.output)
    s = dataset.summary()
    print(
        f"wrote {s['rows']} rows for syr2k {args.size} to {args.output} "
        f"(runtimes {s['runtime_min']:.6f}..{s['runtime_max']:.6f} s)"
    )
    return 0


def _cmd_predict(args) -> int:
    dataset = generate_dataset(args.size)
    task = Syr2kTask(args.size)
    sets, queries = disjoint_example_sets(
        dataset, 1, args.n_icl, seed=args.seed
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    query_row = int(queries[0])
    pred = DiscriminativeSurrogate(task).predict(
        examples, dataset.config(query_row), seed=args.seed
    )
    truth = float(dataset.runtimes[query_row])
    print(f"generated : {pred.generated_text!r}")
    print(f"parsed    : {pred.value}")
    print(f"truth     : {truth:.7f}")
    if pred.value:
        print(f"rel error : {abs(pred.value - truth) / truth:.1%}")
    print(f"ICL copy  : {pred.exact_copy}")
    return 0


def _cmd_grid(args) -> int:
    specs = paper_grid(
        sizes=tuple(args.sizes),
        icl_counts=tuple(args.icl),
        n_sets=args.sets,
        seeds=tuple(args.seeds),
        n_queries=args.queries,
    )
    print(f"running {len(specs)} experiment cells...", file=sys.stderr)
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    grid_kwargs = dict(
        checkpoint=args.checkpoint,
        resume=args.resume,
        prefix_cache=args.prefix_cache,
    )
    if args.serve or args.shards:
        from repro.serve import make_service

        with make_service(
            shards=args.shards,
            workers=args.workers,
            enable_prefix_cache=args.prefix_cache,
        ) as service:
            probes = run_grid(specs, service=service, **grid_kwargs)
            stats = service.stats()
        print(
            f"served {stats.n_completed} probes at "
            f"{stats.throughput_rps:.1f} req/s "
            f"(result-cache hit rate {stats.result_hit_rate:.0%})",
            file=sys.stderr,
        )
    else:
        probes = run_grid(specs, workers=args.workers, **grid_kwargs)
    if args.checkpoint:
        print(
            f"checkpointed {len(probes)} probes in {args.checkpoint}",
            file=sys.stderr,
        )
    if args.save:
        from repro.core.storage import save_probes_jsonl

        save_probes_jsonl(probes, args.save)
        print(f"saved {len(probes)} probes to {args.save}", file=sys.stderr)
    report = build_report(probes)
    for line in report.summary_lines():
        print(line)
    t = Table(["n ICL", "mean MARE"], title="error vs ICL count")
    for n, v in report.per_icl_mare.items():
        t.add_row([n, v])
    print()
    print(t.render())
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import analyze_grid
    from repro.core.storage import load_probes_jsonl

    probes = load_probes_jsonl(args.probes)
    print(f"loaded {len(probes)} probes from {args.probes}", file=sys.stderr)
    print(analyze_grid(probes).render())
    return 0


def _cmd_tune(args) -> int:
    from repro.dataset import Syr2kPerformanceModel
    from repro.tuning import (
        BayesianOptTuner,
        HillClimbTuner,
        LLMCandidateTuner,
        RandomSearchTuner,
        compare_tuners,
    )

    task = Syr2kTask(args.size)
    space = syr2k_space()
    model = Syr2kPerformanceModel(task)
    comparison = compare_tuners(
        [
            RandomSearchTuner(space, seed=args.seed),
            HillClimbTuner(space, seed=args.seed),
            BayesianOptTuner(space, seed=args.seed),
            LLMCandidateTuner(space, task, seed=args.seed),
        ],
        model,
        budget=args.budget,
        repetitions=args.repetitions,
    )
    t = Table(
        ["tuner", "mean best runtime", "regret"],
        title=f"syr2k {args.size} (optimum {comparison.global_optimum:.6f})",
    )
    for name, best in comparison.ranking():
        t.add_row([name, best, comparison.mean_regret(name)])
    print(t.render())
    return 0


def _session_tuner_classes():
    from repro.tuning import HillClimbTuner, RandomSearchTuner

    return {"random": RandomSearchTuner, "hill-climb": HillClimbTuner}


def _build_sessions(args):
    """Fresh campaigns for ``repro sessions run`` (one per tenant)."""
    from repro.dataset import Syr2kPerformanceModel
    from repro.sessions import TuningSession
    from repro.utils.rng import derive_seed

    tuner_cls = _session_tuner_classes()[args.tuner]
    priorities = args.priorities or [1]
    task = Syr2kTask(args.size)
    sessions = []
    for t in range(args.tenants):
        tenant = f"tenant-{t}"
        tuner_seed = derive_seed(
            args.seed, "tuner", 0 if args.shared_trajectory else t
        )
        sessions.append(
            TuningSession(
                f"{tenant}/s0",
                tenant,
                tuner_cls(syr2k_space(), seed=tuner_seed),
                Syr2kPerformanceModel(task),
                args.budget,
                priority=priorities[t % len(priorities)],
                deadline_s=args.deadline,
                seed=derive_seed(args.seed, "session", t),
            )
        )
    return sessions


def _sessions_from_log(path):
    """Rebuild campaigns from a log's ``register`` events (resume path)."""
    from repro.dataset import Syr2kPerformanceModel
    from repro.sessions import TuningSession, replay_log

    tuners = _session_tuner_classes()
    sessions = []
    for sid, entry in replay_log(path).items():
        meta = entry["meta"]
        if meta is None:
            print(
                f"skipping {sid}: no register event in {path}",
                file=sys.stderr,
            )
            continue
        tuner_cls = tuners.get(meta["tuner"])
        if tuner_cls is None:
            print(
                f"skipping {sid}: unknown tuner {meta['tuner']!r}",
                file=sys.stderr,
            )
            continue
        sessions.append(
            TuningSession(
                sid,
                meta["tenant"],
                tuner_cls(syr2k_space(), seed=meta["tuner_seed"]),
                Syr2kPerformanceModel(Syr2kTask(meta["size"])),
                meta["budget"],
                priority=meta["priority"],
                deadline_s=meta.get("deadline_s"),
                seed=meta["seed"],
                context_examples=meta["context_examples"],
            )
        )
    return sessions


def _render_sessions_table(rows, title):
    t = Table(
        ["session", "tenant", "state", "evals", "budget", "best"],
        title=title,
    )
    for row in rows:
        t.add_row(row)
    return t.render()


def _cmd_sessions(args) -> int:
    from repro.sessions import replay_log

    if args.action in ("status", "resume") and not args.log:
        print(f"sessions {args.action} requires --log", file=sys.stderr)
        return 2

    if args.action == "status":
        rows = []
        for sid, entry in sorted(replay_log(args.log).items()):
            meta = entry["meta"] or {}
            evals = entry["evals"]
            best = min((rt for _, _, rt in evals), default=None)
            rows.append([
                sid,
                meta.get("tenant", "?"),
                entry["state"] or "PENDING",
                len(evals),
                meta.get("budget", "?"),
                "-" if best is None else f"{best:.6f}",
            ])
        print(_render_sessions_table(rows, f"session log {args.log}"))
        return 0

    from repro.serve import ResilientService, make_service
    from repro.sessions import (
        FAILED,
        AdmissionController,
        SessionManager,
        TenantQuota,
        collect_session_metrics,
    )

    if args.action == "resume":
        sessions = _sessions_from_log(args.log)
        if not sessions:
            print(f"nothing to resume in {args.log}", file=sys.stderr)
            return 1
    else:
        sessions = _build_sessions(args)
    admission = AdmissionController(
        default_quota=TenantQuota(
            max_evaluations=args.quota, rate_per_s=args.rate
        ),
        max_inflight=args.max_inflight,
    )
    print(
        f"driving {len(sessions)} campaigns "
        f"({args.tenants} tenants, size {args.size})",
        file=sys.stderr,
    )
    with make_service(
        shards=args.shards,
        max_batch_size=args.batch_size,
        workers=args.workers,
    ) as service:
        driver = ResilientService(service) if args.resilient else service
        with SessionManager(
            driver,
            sessions=sessions,
            admission=admission,
            log_path=args.log,
            resume=args.action == "resume",
        ) as manager:
            snapshot = manager.run(max_evaluations=args.max_evaluations)
        stats = service.stats()
    rows = [
        [
            s.session_id,
            s.tenant,
            s.state,
            len(s.history),
            s.budget.n_evaluations,
            "-"
            if len(s.history) == 0
            else f"{s.history.best_runtime:.6f}",
        ]
        for s in manager.registry
    ]
    print(_render_sessions_table(rows, "sessions"))
    fairness = snapshot["fairness_jain"]
    print(
        f"completed {snapshot['completed']} evaluations, "
        f"fairness (Jain) {fairness:.3f}, "
        f"shed {snapshot['admission']['shed']}, "
        f"mean batch occupancy {stats.batch_occupancy:.2f}"
    )
    if args.metrics:
        print()
        print(collect_session_metrics(manager).render(title="sessions"))
    failed = manager.registry.by_state(FAILED)
    for session in failed:
        print(
            f"FAILED {session.session_id}: {session.failure_reason}",
            file=sys.stderr,
        )
    if failed:
        return 1
    if args.min_fairness is not None and fairness < args.min_fairness:
        print(
            f"fairness {fairness:.3f} below required "
            f"{args.min_fairness:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_bench_workload(args):
    """Build the repeated-prompt request list the bench replays."""
    from repro.serve import Request

    dataset = generate_dataset(args.size)
    sets, queries = disjoint_example_sets(
        dataset, 1, args.n_icl, seed=args.seed, n_queries=args.unique
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    # Whole-list repetition interleaves revisits (cache-friendly but not
    # cache-adjacent, like real grid traffic).  Odd repeat waves switch
    # the sampling seed: those requests miss the result cache but still
    # hit the prepare cache, exercising both levels.
    return [
        Request(
            examples=examples,
            query_config=dataset.config(int(q)),
            seed=args.seed + i + (1000 if wave % 2 else 0),
            size=args.size,
        )
        for wave in range(args.repeats)
        for i, q in enumerate(queries)
    ]


def _cmd_serve_bench(args) -> int:
    from repro.obs import Tracer, collect_service_metrics, use_tracer
    from repro.serve import make_service
    from repro.utils.timing import Timer

    workload = _serve_bench_workload(args)

    def run(caches_enabled: bool, tracer=None, metrics=False):
        with make_service(
            shards=args.shards,
            max_batch_size=args.batch_size,
            max_wait_s=args.max_wait,
            workers=args.workers,
            enable_prepare_cache=caches_enabled,
            enable_result_cache=caches_enabled,
            enable_prefix_cache=args.prefix_cache,
        ) as service:
            if tracer is not None:
                with use_tracer(tracer), Timer() as timer:
                    service.submit_many(workload)
            else:
                with Timer() as timer:
                    service.submit_many(workload)
            registry = (
                collect_service_metrics(service) if metrics else None
            )
            return service.stats(), timer.elapsed, registry

    n = len(workload)
    print(
        f"replaying {n} requests ({args.unique} unique x {args.repeats} "
        f"repeats, size {args.size}, {args.n_icl} ICL examples)",
        file=sys.stderr,
    )
    tracer = Tracer() if args.trace else None
    cached, cached_t, registry = run(
        True, tracer=tracer, metrics=args.metrics
    )
    print(cached.render(title="serve-bench (caches on)"))
    if tracer is not None:
        n_spans = tracer.export_jsonl(args.trace)
        print(
            f"exported {n_spans} spans to {args.trace} "
            f"(`repro trace summarize {args.trace}`)",
            file=sys.stderr,
        )
    if registry is not None:
        print()
        print(registry.render(title="metrics registry (caches on)"))
    if not args.no_baseline:
        uncached, uncached_t, _ = run(False)
        print()
        print(uncached.render(title="serve-bench (caches off)"))
        speedup = (n / cached_t) / (n / uncached_t)
        print()
        print(
            f"caching speedup: {speedup:.1f}x "
            f"({n / cached_t:.1f} vs {n / uncached_t:.1f} req/s)"
        )
    return 0


def _loadtest_spec(args):
    from repro.loadgen import LoadSpec, WorkloadMix

    return LoadSpec(
        arrival=args.arrival,
        rps=args.rps,
        duration_s=args.duration,
        seed=args.seed,
        mode=args.mode,
        concurrency=args.concurrency,
        mix=WorkloadMix(
            size=args.size,
            n_icl=args.n_icl,
            n_unique=args.unique,
            skew=args.skew,
            n_tenants=args.tenants,
            seed_lanes=args.seed_lanes,
            timeout_s=args.timeout,
        ),
        on_fraction=args.on_fraction,
        period_s=args.period,
        warmup=args.warmup,
    )


def _loadtest_sessions(args):
    """Ride-along campaigns for ``repro loadtest --sessions N``."""
    from repro.dataset import Syr2kPerformanceModel
    from repro.sessions import TuningSession
    from repro.tuning import RandomSearchTuner
    from repro.utils.rng import derive_seed

    task = Syr2kTask(args.size)
    return [
        TuningSession(
            f"tenant-{i % args.tenants}/load-{i}",
            f"tenant-{i % args.tenants}",
            RandomSearchTuner(
                syr2k_space(),
                seed=derive_seed(args.seed, "loadtest", "tuner", i),
            ),
            Syr2kPerformanceModel(task),
            args.session_budget,
            seed=derive_seed(args.seed, "loadtest", "session", i),
        )
        for i in range(args.sessions)
    ]


def _run_loadtest(args, tracer=None, sampler=None):
    """One full load test: fresh service (+ optional campaigns), report."""
    import threading

    from repro.loadgen import LoadDriver
    from repro.obs import use_tracer
    from repro.serve import make_service

    driver = LoadDriver(_loadtest_spec(args))
    with make_service(
        shards=args.shards,
        max_batch_size=args.batch_size,
        workers=args.workers,
    ) as service:
        if sampler is not None:
            from repro.obs import collect_service_metrics

            sampler.add_collector(
                "service",
                lambda reg: collect_service_metrics(service, registry=reg),
            )
            sampler.start()
        ctx = use_tracer(tracer) if tracer is not None else None
        if ctx is not None:
            ctx.__enter__()
        try:
            if args.sessions > 0:
                from repro.sessions import SessionManager

                with SessionManager(
                    service, sessions=_loadtest_sessions(args)
                ) as manager:
                    if sampler is not None:
                        from repro.sessions import collect_session_metrics

                        sampler.add_collector(
                            "sessions",
                            lambda reg: collect_session_metrics(
                                manager, registry=reg
                            ),
                        )
                    box = {}
                    rider = threading.Thread(
                        target=lambda: box.update(manager.run()),
                        name="repro-loadtest-sessions",
                        daemon=True,
                    )
                    rider.start()
                    report = driver.run(service)
                    rider.join()
                report = report.with_sessions({
                    "n_sessions": args.sessions,
                    "completed": box.get("completed", 0),
                    "fairness_jain": box.get("fairness_jain", 1.0),
                })
            else:
                report = driver.run(service)
            if sampler is not None:
                from repro.loadgen import collect_loadgen_metrics

                # The final sample lands while the service is still
                # alive, so it carries both the end-state service view
                # and the finished SLO report.
                sampler.add_collector(
                    "loadgen",
                    lambda reg: collect_loadgen_metrics(
                        report, registry=reg
                    ),
                )
                sampler.stop(final_sample=True)
        finally:
            if ctx is not None:
                ctx.__exit__(None, None, None)
            if sampler is not None:
                sampler.stop(final_sample=False)
    return report


def _cmd_loadtest(args) -> int:
    import json as _json

    from repro.loadgen import (
        DEFAULT_SLO,
        SLOPolicy,
        collect_loadgen_metrics,
    )
    from repro.obs import Tracer

    if args.slo == "default":
        policy = DEFAULT_SLO
    elif args.slo == "off":
        policy = None
    else:
        policy = SLOPolicy.from_file(args.slo)

    print(
        f"offering {args.arrival} arrivals at {args.rps:g} req/s for "
        f"{args.duration:g}s ({args.mode} loop, seed {args.seed}, "
        f"{args.shards or 'no'} shards)",
        file=sys.stderr,
    )
    tracer = Tracer() if args.trace else None
    sampler = None
    if args.telemetry:
        from repro.obs import BurnRatePolicy, TelemetrySampler

        sampler = TelemetrySampler(
            args.telemetry_interval, policy=BurnRatePolicy()
        )
    report = _run_loadtest(args, tracer=tracer, sampler=sampler)

    if args.check_determinism:
        rerun = _run_loadtest(args)
        first = _json.dumps(report.deterministic_payload(), sort_keys=True)
        second = _json.dumps(rerun.deterministic_payload(), sort_keys=True)
        if first != second:
            print("DETERMINISM VIOLATION between identical runs:",
                  file=sys.stderr)
            print(f"  run 1: {first}", file=sys.stderr)
            print(f"  run 2: {second}", file=sys.stderr)
            return 1
        print(
            "determinism check passed: schedules, workloads and outcome "
            "counts identical across runs",
            file=sys.stderr,
        )

    print(report.render(title=f"loadtest ({args.mode}/{args.arrival})"))
    if args.report_json:
        with open(args.report_json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote SLO report to {args.report_json}", file=sys.stderr)
    if tracer is not None:
        n_spans = tracer.export_jsonl(args.trace)
        print(
            f"exported {n_spans} spans to {args.trace} "
            f"(`repro trace summarize {args.trace}`)",
            file=sys.stderr,
        )
    if sampler is not None:
        n_records = sampler.export_jsonl(args.telemetry)
        print(
            f"exported {n_records} telemetry records to {args.telemetry} "
            f"(`repro top {args.telemetry} --once`)",
            file=sys.stderr,
        )
    if args.metrics:
        print()
        print(collect_loadgen_metrics(report).render(title="loadgen"))

    if policy is not None:
        violations = report.check(policy)
        for v in violations:
            print(f"SLO VIOLATION {v.describe()}", file=sys.stderr)
        if violations:
            return 1
        print("SLO check passed", file=sys.stderr)
    return 0


def _chaos_workload(args):
    """Cycle ``--requests`` requests over ``--unique`` distinct probes."""
    from repro.serve import Request

    dataset = generate_dataset(args.size)
    sets, queries = disjoint_example_sets(
        dataset, 1, args.n_icl, seed=args.seed, n_queries=args.unique
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    workload = []
    wave = 0
    while len(workload) < args.requests:
        for i, q in enumerate(queries):
            if len(workload) >= args.requests:
                break
            workload.append(
                Request(
                    examples=examples,
                    query_config=dataset.config(int(q)),
                    seed=args.seed + i + (1000 if wave % 2 else 0),
                    size=args.size,
                )
            )
        wave += 1
    return workload


def _run_chaos_once(args, workload, cache_probes: bool = False):
    from repro.errors import ServiceError
    from repro.faults import FaultPlan
    from repro.obs import (
        BurnRatePolicy,
        TelemetrySampler,
        collect_service_metrics,
    )
    from repro.serve import ResilientService, RetryPolicy, make_service

    plan = FaultPlan(
        seed=args.seed,
        transient_error_rate=args.error_rate,
        latency_spike_rate=args.latency_rate,
        latency_spike_s=args.latency_s,
        eviction_storm_rate=args.evict_rate,
        queue_stall_rate=args.stall_rate,
        queue_stall_s=args.stall_s,
        shard_kill_rate=args.kill_rate if args.shards else 0.0,
        telemetry_drop_rate=args.telemetry_drop_rate,
        telemetry_dup_rate=args.telemetry_dup_rate,
    )
    unhandled = 0
    values: list[float | None] = []
    # Retries absorb shard kills; give the drill enough respawn budget
    # that repeated kills of one shard don't exhaust it mid-run.  The
    # shard-stats timeout is tuned well under the sampler cadence (one
    # scrape round-trips shard stats twice: service counters, then
    # fault counters) so a mid-respawn shard cannot stall a scrape past
    # the telemetry liveness bound of twice the cadence.
    with make_service(
        shards=args.shards, max_restarts=args.requests, fault_plan=plan,
        stats_timeout_s=min(2.0, max(args.telemetry_interval / 8, 0.02)),
    ) as service:
        sampler = TelemetrySampler(
            args.telemetry_interval,
            policy=BurnRatePolicy(),
            injector=service.faults,
        )
        sampler.add_collector(
            "service",
            lambda reg: collect_service_metrics(service, registry=reg),
        )
        resilient = ResilientService(
            service,
            retry_policy=RetryPolicy(
                max_attempts=args.max_attempts, seed=args.seed
            ),
            fallback=False if args.no_fallback else None,
        )
        with sampler:
            for request in workload:
                if cache_probes:
                    # Degraded cache serves interleaved with live
                    # traffic: these must not consume admission-ordered
                    # request ids, or the deterministic fault schedule
                    # shifts under them.
                    service.cached_response(request)
                try:
                    response = resilient.submit(request)
                except ServiceError:
                    unhandled += 1  # already counted as unavailable
                    values.append(None)
                else:
                    values.append(response.prediction.value)
        stats = service.stats()
        fault_counts = service.faults.stats.snapshot()
        fault_report = service.faults.stats.render()
    return stats, fault_counts, fault_report, unhandled, values, sampler


def _run_sessions_chaos_once(args, log_path):
    """One session-manager drill under the canonical fault plan.

    Returns per-session histories, the campaign completion fraction,
    event-log integrity problems, and the service stats.
    """
    import argparse as _argparse

    from repro.core.storage import load_events_jsonl
    from repro.faults import DEFAULT_FAULT_PLAN
    from repro.serve import PredictionService, ResilientService, RetryPolicy
    from repro.sessions import EVENT_KIND, SessionManager

    sessions = _build_sessions(
        _argparse.Namespace(
            tenants=3,
            budget=max(2, args.requests // 6),
            seed=args.seed,
            size=args.size,
            tuner="random",
            priorities=None,
            shared_trajectory=False,
            deadline=None,
        )
    )
    total_budget = sum(s.budget.n_evaluations for s in sessions)
    with PredictionService(fault_plan=DEFAULT_FAULT_PLAN) as service:
        resilient = ResilientService(
            service,
            retry_policy=RetryPolicy(
                max_attempts=args.max_attempts, seed=args.seed
            ),
            fallback=False if args.no_fallback else None,
        )
        with SessionManager(
            resilient, sessions=sessions, log_path=log_path
        ) as manager:
            manager.run()
        stats = service.stats()

    completed = sum(len(s.history) for s in manager.registry)
    completion = completed / total_budget if total_budget else 1.0
    histories = {
        s.session_id: (tuple(s.history.indices), tuple(s.history.runtimes))
        for s in manager.registry
    }

    # Event-log integrity: every recorded evaluation journaled exactly
    # once, contiguously, matching the in-memory history.
    problems = []
    logged: dict[str, dict[int, tuple[int, float]]] = {}
    for event in load_events_jsonl(log_path, kind=EVENT_KIND):
        if event.get("event") != "eval":
            continue
        per = logged.setdefault(event["session"], {})
        step = event["step"]
        if step in per:
            problems.append(f"{event['session']}: duplicated step {step}")
        per[step] = (event["index"], event["runtime"])
    for sid, (indices, runtimes) in histories.items():
        per = logged.get(sid, {})
        if sorted(per) != list(range(len(indices))):
            problems.append(
                f"{sid}: logged steps {sorted(per)} != "
                f"0..{len(indices) - 1}"
            )
            continue
        for step, (index, runtime) in enumerate(
            zip(indices, runtimes)
        ):
            if per[step] != (index, runtime):
                problems.append(
                    f"{sid}: step {step} log {per[step]} != "
                    f"history {(index, runtime)}"
                )
    return histories, completion, problems, stats


def _cmd_chaos_sessions(args) -> int:
    import tempfile
    from pathlib import Path

    print(
        "driving 3-tenant session campaigns under DEFAULT_FAULT_PLAN",
        file=sys.stderr,
    )
    with tempfile.TemporaryDirectory() as tmp:
        histories, completion, problems, stats = _run_sessions_chaos_once(
            args, Path(tmp) / "sessions-a.jsonl"
        )
        n_evals = sum(len(ix) for ix, _ in histories.values())
        print(stats.render(title="sessions chaos report"))
        print()
        print(
            f"campaign completion: {completion:.2%} "
            f"({n_evals} evaluations, availability "
            f"{stats.availability:.2%}, {stats.n_degraded} degraded)"
        )
        ok = completion >= 0.99
        if not ok:
            print(f"completion below 99%: {completion:.2%}")
        for problem in problems:
            print(f"event-log integrity: {problem}")
        ok &= not problems
        if not problems:
            print("event log: no lost or duplicated evaluations")
        if args.verify_determinism:
            histories2, _, problems2, _ = _run_sessions_chaos_once(
                args, Path(tmp) / "sessions-b.jsonl"
            )
            # Fault timing may differ between runs; recorded histories
            # must not (ground truth is measured, predictions advisory).
            same = histories == histories2 and not problems2
            print(
                f"deterministic histories across two chaos runs: "
                f"{'yes' if same else 'NO'}"
            )
            ok &= same
    return 0 if ok else 1


def _cmd_fsck(args) -> int:
    """Verify/repair artifacts.  Exit codes: 0 clean (or repaired and
    not ``--strict``), 1 damage found, 2 unrecoverable."""
    from repro.core.storage import repair_artifact, verify_artifact
    from repro.errors import ExperimentError

    kind = None if args.kind == "auto" else args.kind
    exit_code = 0
    for path in args.paths:
        try:
            if args.repair:
                report = repair_artifact(
                    path, kind=kind, event_kind=args.event_kind
                )
            else:
                report = verify_artifact(
                    path, kind=kind, event_kind=args.event_kind,
                    quarantine=args.quarantine,
                )
        except ExperimentError as exc:
            print(f"{path}: unrecoverable: {exc}")
            exit_code = max(exit_code, 2)
            continue
        title = "fsck repair" if args.repair else "fsck verify"
        print(report.render(title=title))
        if not report.clean:
            if args.repair:
                print(
                    f"repaired: kept {report.records_recovered} records, "
                    f"quarantined {report.records_quarantined} "
                    f"({report.bytes_dropped} bytes)"
                )
            if args.strict or not args.repair:
                exit_code = max(exit_code, 1)
    return exit_code


def _disk_drill_plan(seed: int):
    """The chaos --disk fault schedule for one round (seed varies per
    round so a fault cannot re-fire at the same offset forever)."""
    import dataclasses

    from repro.faults import DISK_FAULT_PLAN

    return dataclasses.replace(DISK_FAULT_PLAN, seed=seed)


def _disk_drill_grid(args, path, round_seed: int):
    """One child-process round of the grid drill.

    The child runs the checkpointed grid with the disk-fault injector
    installed and hard-exits (``os._exit``, no finalizers — the SIGKILL
    stand-in) the moment an injected fault raises out of a storage
    write, reporting its fault counters on stdout first.  Returns
    ``(finished, fault_counts)``.
    """
    import json as _json
    import subprocess

    child = f"""
import json, os, sys
import repro.core.storage as storage
from repro.core import quick_grid, run_grid
from repro.errors import ExperimentError, InjectedFaultError
from repro.faults import DISK_FAULT_PLAN, FaultInjector
import dataclasses

plan = dataclasses.replace(DISK_FAULT_PLAN, seed={round_seed})
inj = FaultInjector(plan)
storage.set_fault_injector(inj)
specs = quick_grid(
    sizes=({args.size!r},), icl_counts=(1, 2, 3), n_sets=1,
    seeds=({args.seed},), selections=("random",), n_queries=1,
)
try:
    run_grid(specs, workers=1, checkpoint={str(path)!r},
             checkpoint_every=1, resume=True)
except (ExperimentError, InjectedFaultError, OSError) as exc:
    # ExperimentError here means a bitflip landed in the (CRC-less)
    # header of the checkpoint: the append path refuses it and defers
    # to fsck, which the parent runs between rounds.
    print(json.dumps({{"stats": inj.stats.snapshot(),
                       "error": type(exc).__name__}}))
    sys.stdout.flush()
    os._exit(23)  # hard kill: no atexit, no finally, no flush
print(json.dumps({{"stats": inj.stats.snapshot(), "error": None}}))
"""
    import os as _os
    from pathlib import Path as _Path

    import repro

    env = dict(_os.environ)
    env["PYTHONPATH"] = str(_Path(repro.__file__).parents[1])
    proc = subprocess.run(
        [sys.executable, "-c", child],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode not in (0, 23):
        raise RuntimeError(
            f"disk-drill child failed unexpectedly "
            f"(exit {proc.returncode}):\n{proc.stderr}"
        )
    payload = _json.loads(proc.stdout.strip().splitlines()[-1])
    return proc.returncode == 0, payload["stats"]


def _cmd_chaos_disk(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.core import quick_grid, run_grid
    from repro.core.storage import (
        _encode_probe,
        append_events_jsonl,
        load_events_jsonl,
        load_probes_jsonl,
        repair_artifact,
        set_fault_injector,
        verify_artifact,
    )
    from repro.errors import ExperimentError, InjectedFaultError
    from repro.faults import FaultInjector, FaultStats

    def canon(probes):
        """Bit-exact history identity: the encoded record stream."""
        return [_encode_probe(p) for p in probes]

    specs = quick_grid(
        sizes=(args.size,), icl_counts=(1, 2, 3), n_sets=1,
        seeds=(args.seed,), selections=("random",), n_queries=1,
    )
    print(
        f"disk-fault drill: {len(specs)}-cell checkpointed grid under "
        f"DISK_FAULT_PLAN (size {args.size}, seed {args.seed})",
        file=sys.stderr,
    )
    baseline = run_grid(specs, workers=1)
    injected = FaultStats()
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        # -- Phase 1: grid checkpoint under kill -9 + disk faults ------ #
        path = Path(tmp) / "grid.jsonl"
        crashes = 0
        quarantined = 0
        finished = False
        round_no = 0
        reroll = 0
        while round_no < 60:
            finished, counts = _disk_drill_grid(
                args, path,
                round_seed=args.seed * 1000 + round_no + reroll,
            )
            if finished and crashes == 0 and reroll < 8:
                # A drill where no write ever raised proves nothing
                # about kill -9: discard this run and re-roll the seed
                # until the first child actually dies mid-grid.
                path.unlink(missing_ok=True)
                path.with_name(path.name + ".quarantine").unlink(
                    missing_ok=True
                )
                reroll += 1
                continue
            for kind, count in counts.items():
                for _ in range(count):
                    injected.record(kind)
            if finished:
                break
            crashes += 1
            round_no += 1
            if path.exists():
                report = repair_artifact(path, kind="probes")
                quarantined += report.records_quarantined
                if not verify_artifact(path, kind="probes").clean:
                    print("fsck --repair left a dirty checkpoint")
                    ok = False
        if not finished:
            print("grid never completed within the round budget")
            ok = False
        # Final fsck (bitflips on the last rounds don't raise) + an
        # unfaulted resume to re-run any cells lost to quarantine.
        report = repair_artifact(path, kind="probes")
        quarantined += report.records_quarantined
        recovered = run_grid(specs, workers=1, checkpoint=path, resume=True)
        grid_identical = canon(recovered) == canon(baseline)
        disk_identical = canon(
            sorted(load_probes_jsonl(path), key=lambda p: p.spec.cell_key)
        ) == canon(sorted(baseline, key=lambda p: p.spec.cell_key))
        print(
            f"grid: {crashes} hard kills, {quarantined} records "
            f"quarantined across repairs; resume bit-identical: "
            f"{'yes' if grid_identical and disk_identical else 'NO'}"
        )
        ok &= grid_identical and disk_identical

        # -- Phase 2: event journal under the same discipline ---------- #
        jpath = Path(tmp) / "journal.jsonl"
        events = [
            {"event": "eval", "step": i, "runtime": i / 7.0}
            for i in range(30)
        ]
        journal_crashes = 0
        journal_quarantined = 0
        pos = 0
        for round_no in range(300):
            if pos >= len(events):
                break
            # Fresh seed per round: fault decisions are keyed on write
            # offsets, and a retry lands at the same offset — a fixed
            # seed would re-fire the same fault forever.
            inj = FaultInjector(
                _disk_drill_plan(args.seed * 1000 + 777 + round_no)
            )
            try:
                set_fault_injector(inj)
                append_events_jsonl(
                    events[pos:pos + 5], jpath, kind="disk-drill"
                )
                pos += 5
            except (ExperimentError, InjectedFaultError, OSError):
                journal_crashes += 1
            finally:
                set_fault_injector(None)
                for kind, count in inj.stats.snapshot().items():
                    for _ in range(count):
                        injected.record(kind)
            # fsck after every round: repair, then trust only what
            # strictly verifies (the journal truncates at damage).
            if jpath.exists():
                report = repair_artifact(
                    jpath, kind="events", event_kind="disk-drill"
                )
                journal_quarantined += report.records_quarantined
                landed = load_events_jsonl(jpath, kind="disk-drill")
                if list(landed) != events[:len(landed)]:
                    print("journal recovered a non-prefix history")
                    ok = False
                    break
                pos = len(landed)
        final = load_events_jsonl(jpath, kind="disk-drill")
        journal_identical = list(final) == events
        print(
            f"journal: {journal_crashes} failed appends, "
            f"{journal_quarantined} records quarantined; replayed "
            f"history bit-identical: {'yes' if journal_identical else 'NO'}"
        )
        ok &= journal_identical

    print()
    print(injected.render(title="chaos --disk: injected disk faults"))
    disk_total = sum(
        injected.snapshot()[k]
        for k in ("torn_writes", "bitflips", "enospc", "fsync_failures")
    )
    if disk_total == 0:
        print("drill invalid: no disk fault ever fired")
        ok = False
    print(
        f"\n{disk_total} disk faults injected, every corruption "
        f"accounted for and histories reproduced: {'yes' if ok else 'NO'}"
    )
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    if args.sessions:
        return _cmd_chaos_sessions(args)
    if args.disk:
        return _cmd_chaos_disk(args)
    import json as _json

    from repro.obs import deterministic_fields, max_sample_gap_s

    workload = _chaos_workload(args)
    print(
        f"driving {len(workload)} requests through a seeded fault plan "
        f"(size {args.size}, seed {args.seed})",
        file=sys.stderr,
    )
    stats, faults, fault_report, unhandled, values, sampler = (
        _run_chaos_once(args, workload)
    )
    print(stats.render(title="chaos report (service under faults)"))
    print()
    print(fault_report)
    print()
    print(
        f"availability: {stats.availability:.2%}  "
        f"(p95 under faults {stats.p95_latency_s * 1000:.1f} ms, "
        f"{stats.n_degraded} degraded, {unhandled} unanswered)"
    )
    ok = True
    # Telemetry liveness: the sampler observed the whole drill, so a
    # gap past twice its cadence means the faults it was watching also
    # took the watcher down.
    records = sampler.records()
    gap = max_sample_gap_s(records)
    bound = 2 * args.telemetry_interval
    alive = gap <= bound
    print(
        f"telemetry liveness: {len(records)} records, max sample gap "
        f"{gap * 1000:.0f} ms (bound {bound * 1000:.0f} ms): "
        f"{'ok' if alive else 'VIOLATED'}"
    )
    ok &= alive
    if args.telemetry:
        n_records = sampler.export_jsonl(args.telemetry)
        print(
            f"exported {n_records} telemetry records to "
            f"{args.telemetry} (`repro top {args.telemetry} --once`)",
            file=sys.stderr,
        )
    if args.verify_determinism:
        counters = ("n_retries", "n_breaker_trips", "n_degraded",
                    "n_unavailable", "n_logical")

        def service_faults(counts: dict) -> dict:
            # Telemetry drop/dup decisions are seeded per sample seq,
            # but how many samples a run takes is wall-clock — only the
            # request-schedule faults are comparable across runs.
            return {
                k: v for k, v in counts.items()
                if not k.startswith("telemetry")
            }

        def compare(label, stats2, faults2, unhandled2, values2,
                    sampler2) -> bool:
            fields = _json.dumps(
                deterministic_fields(records), sort_keys=True
            )
            fields2 = _json.dumps(
                deterministic_fields(sampler2.records()), sort_keys=True
            )
            same = (
                all(
                    getattr(stats, c) == getattr(stats2, c)
                    for c in counters
                )
                and service_faults(faults) == service_faults(faults2)
                and unhandled == unhandled2
                and values == values2
                and fields == fields2
            )
            print(f"deterministic {label}: {'yes' if same else 'NO'}")
            if not same:
                for c in counters:
                    print(
                        f"  {c}: {getattr(stats, c)} "
                        f"vs {getattr(stats2, c)}"
                    )
                print(f"  faults: {faults} vs {faults2}")
                diverged = sum(
                    a != b for a, b in zip(values, values2)
                ) + abs(len(values) - len(values2))
                print(f"  responses diverging: {diverged}/{len(values)}")
                if fields != fields2:
                    print(f"  telemetry fields: {fields} vs {fields2}")
            return same

        s2, f2, _, u2, v2, t2 = _run_chaos_once(args, workload)
        ok &= compare("across two identical runs", s2, f2, u2, v2, t2)
        # Third run with degraded cache serves interleaved: cached
        # responses must leave the admission-ordered fault schedule (and
        # hence every counter and response value) untouched.
        s3, f3, _, u3, v3, t3 = _run_chaos_once(args, workload,
                                                cache_probes=True)
        ok &= compare("with degraded cache serves interleaved",
                      s3, f3, u3, v3, t3)
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    from repro.obs import (
        load_spans,
        render_span_tree,
        summarize_spans,
        write_folded,
        write_speedscope,
    )

    spans = load_spans(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    if args.action == "flame":
        folded = args.folded or f"{args.path}.folded"
        speedscope = args.speedscope or f"{args.path}.speedscope.json"
        n_paths = write_folded(spans, folded)
        n_profiles = write_speedscope(spans, speedscope, name=args.path)
        print(f"wrote {n_paths} folded call paths to {folded}")
        print(
            f"wrote {n_profiles} speedscope profiles to {speedscope} "
            f"(open at https://www.speedscope.app)"
        )
        return 0
    print(summarize_spans(spans).render())
    if args.tree > 0:
        print()
        print(render_span_tree(spans, max_roots=args.tree))
    return 0


def _cmd_top(args) -> int:
    import time as _time

    from repro.obs import load_telemetry, render_dashboard

    def render() -> str:
        timeline = load_telemetry(args.path, tolerate_partial=True)
        rep = timeline.report
        body = render_dashboard(
            timeline, window_s=args.window,
            title=f"repro top — {args.path}",
        )
        footer = (
            f"timeline: {rep.n_samples} samples, {rep.n_alerts} alerts, "
            f"{rep.n_dropped} dropped, {rep.n_duplicates} duplicates, "
            f"max gap {rep.max_gap_s * 1000:.0f} ms"
        )
        return body + "\n" + footer

    try:
        if args.once:
            print(render())
            return 0
        refreshes = 0
        while True:
            # Re-read the file each refresh: ANSI home+clear, not a
            # scrollback flood.
            print("\x1b[2J\x1b[H" + render(), flush=True)
            refreshes += 1
            if args.refresh_limit and refreshes >= args.refresh_limit:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_table1(args) -> int:
    t = Table(
        ["size", "train n", "R2", "MARE", "MSRE"],
        title="GBT baseline metrics (Table I shape)",
    )
    for size in args.sizes:
        dataset = generate_dataset(size)
        train, test = train_test_split(dataset, 0.8, seed=1)
        enc = FeatureEncoder(dataset.space)
        tt = TargetTransform("log")
        x_test = enc.encode_dataset(test)
        for n in args.train:
            sub = train.subset(np.arange(min(n, len(train))))
            model = GradientBoostingRegressor(
                BoostingParams(
                    n_estimators=200, learning_rate=0.1, max_depth=6,
                    min_samples_leaf=2,
                )
            ).fit(enc.encode_dataset(sub), tt.forward(sub.runtimes))
            m = score_predictions(
                test.runtimes, tt.inverse(model.predict(x_test))
            )
            t.add_row([size, len(sub), m.r2, m.mare, m.msre])
    print(t.render())
    return 0


_COMMANDS = {
    "dataset": _cmd_dataset,
    "predict": _cmd_predict,
    "grid": _cmd_grid,
    "report": _cmd_report,
    "tune": _cmd_tune,
    "sessions": _cmd_sessions,
    "table1": _cmd_table1,
    "serve-bench": _cmd_serve_bench,
    "loadtest": _cmd_loadtest,
    "chaos": _cmd_chaos,
    "fsck": _cmd_fsck,
    "trace": _cmd_trace,
    "top": _cmd_top,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # `repro … | head` closing the pipe early is a normal exit, but
        # the interpreter would still flush stdout at shutdown — hand
        # it a pipe-less stdout so teardown stays quiet.
        sys.stdout = open(os.devnull, "w")
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
