"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``dataset``   generate a syr2k performance table and write it as CSV;
``predict``   run one LLM surrogate prediction against the dataset;
``grid``      run a (reduced or full) experiment grid and print the
              Section IV-A summary report;
``tune``      compare autotuners on a syr2k task;
``table1``    print the GBT baseline metrics for a list of training sizes;
``serve-bench``  drive a repeated-prompt workload through the
              :mod:`repro.serve` inference service and print its
              :class:`~repro.serve.ServiceStats` with and without caching;
``chaos``     run a seeded fault schedule (:mod:`repro.faults`) against a
              live resilient service and print the availability /
              p95-under-faults report;
``trace``     summarize a span trace written by ``serve-bench --trace``:
              reconstruct the span tree and print the per-stage latency
              breakdown.

Every command is deterministic given ``--seed`` — including ``chaos``,
whose injected faults, retries, and degradations reproduce bit-for-bit.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import score_predictions
from repro.core import build_report, paper_grid, run_grid
from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.io import save_dataset_csv
from repro.dataset.splits import disjoint_example_sets, train_test_split
from repro.dataset.syr2k import SIZE_NAMES, syr2k_space
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.utils.tables import Table

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """argparse type for arguments that must be >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Is In-Context Learning Feasible "
            "for HPC Performance Autotuning?'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dataset", help="generate a syr2k dataset CSV")
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--output", required=True, help="CSV output path")
    p.add_argument("--seed", type=int, default=20250705)

    p = sub.add_parser("predict", help="one LLM surrogate prediction")
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=int, default=10)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("grid", help="run an experiment grid + report")
    p.add_argument("--sizes", nargs="+", choices=SIZE_NAMES, default=["SM", "XL"])
    p.add_argument(
        "--icl", nargs="+", type=int, default=[1, 5, 20, 50],
        help="ICL example counts",
    )
    p.add_argument("--sets", type=int, default=2)
    p.add_argument("--seeds", nargs="+", type=int, default=[1, 2])
    p.add_argument("--queries", type=int, default=3)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--prefix-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse prepared prompt-prefix snapshots across the probes "
        "of each cell (bit-identical results; --no-prefix-cache runs "
        "the cold path)",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="execute through the repro.serve PredictionService "
        "(microbatching + caches) instead of the process pool",
    )
    p.add_argument(
        "--save", default=None, metavar="PATH",
        help="also save the probes as JSONL for later `repro report`",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="append completed cells to this JSONL file as the run "
        "progresses, so a killed run can be resumed",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint: skip cells already complete "
        "there and run only the rest",
    )

    p = sub.add_parser(
        "report", help="full analysis report from saved probes"
    )
    p.add_argument("probes", help="JSONL file written by `repro grid --save`")

    p = sub.add_parser("tune", help="compare autotuners")
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--budget", type=int, default=50)
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser(
        "serve-bench", help="benchmark the surrogate serving layer"
    )
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=_positive_int, default=5)
    p.add_argument(
        "--unique", type=_positive_int, default=8,
        help="distinct probes in the workload",
    )
    p.add_argument(
        "--repeats", type=_positive_int, default=6,
        help="times each distinct probe recurs",
    )
    p.add_argument("--batch-size", type=_positive_int, default=8)
    p.add_argument(
        "--max-wait", type=float, default=0.005,
        help="microbatch flush deadline in seconds",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--prefix-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse prepared prompt-prefix snapshots and group "
        "same-prompt requests into lockstep batch decodes "
        "(--no-prefix-cache measures the cold scalar path)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="skip the caches-disabled comparison run",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record spans for the caches-on run and export them as "
        "JSONL to PATH (read back with `repro trace summarize PATH`)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="also print the unified metrics-registry snapshot "
        "(repro.obs) for the caches-on run",
    )

    p = sub.add_parser(
        "chaos", help="fault-injection drill against the serving stack"
    )
    p.add_argument("--size", choices=SIZE_NAMES, default="SM")
    p.add_argument("--n-icl", type=_positive_int, default=5)
    p.add_argument(
        "--requests", type=_positive_int, default=60,
        help="logical requests to drive through the resilient service",
    )
    p.add_argument(
        "--unique", type=_positive_int, default=12,
        help="distinct probes the workload cycles through",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--error-rate", type=float, default=0.08,
        help="per-request transient worker-error probability",
    )
    p.add_argument(
        "--latency-rate", type=float, default=0.05,
        help="per-request latency-spike probability",
    )
    p.add_argument(
        "--latency-s", type=float, default=0.01,
        help="latency-spike duration in seconds",
    )
    p.add_argument(
        "--evict-rate", type=float, default=0.02,
        help="per-request cache-eviction-storm probability",
    )
    p.add_argument(
        "--stall-rate", type=float, default=0.05,
        help="per-flush queue-stall probability",
    )
    p.add_argument(
        "--stall-s", type=float, default=0.005,
        help="queue-stall duration in seconds",
    )
    p.add_argument(
        "--max-attempts", type=_positive_int, default=4,
        help="retry policy: total attempts per logical request",
    )
    p.add_argument(
        "--no-fallback", action="store_true",
        help="disable graceful degradation (final failures then raise)",
    )
    p.add_argument(
        "--verify-determinism", action="store_true",
        help="re-run the schedule (plain, then with degraded cache "
        "serves interleaved) and compare counters, fault schedules and "
        "response values (exit 1 on any divergence)",
    )

    p = sub.add_parser(
        "trace", help="analyze a span trace (serve-bench --trace output)"
    )
    p.add_argument("action", choices=["summarize"])
    p.add_argument("path", help="JSONL trace file")
    p.add_argument(
        "--tree", type=int, default=0, metavar="N",
        help="also print the first N reconstructed span trees",
    )

    p = sub.add_parser("table1", help="GBT baseline metrics (Table I)")
    p.add_argument("--sizes", nargs="+", choices=SIZE_NAMES, default=["SM", "XL"])
    p.add_argument(
        "--train", nargs="+", type=int, default=[100, 500, 1000],
        help="training-set sizes",
    )
    return parser


def _cmd_dataset(args) -> int:
    dataset = generate_dataset(args.size, seed=args.seed)
    save_dataset_csv(dataset, args.output)
    s = dataset.summary()
    print(
        f"wrote {s['rows']} rows for syr2k {args.size} to {args.output} "
        f"(runtimes {s['runtime_min']:.6f}..{s['runtime_max']:.6f} s)"
    )
    return 0


def _cmd_predict(args) -> int:
    dataset = generate_dataset(args.size)
    task = Syr2kTask(args.size)
    sets, queries = disjoint_example_sets(
        dataset, 1, args.n_icl, seed=args.seed
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    query_row = int(queries[0])
    pred = DiscriminativeSurrogate(task).predict(
        examples, dataset.config(query_row), seed=args.seed
    )
    truth = float(dataset.runtimes[query_row])
    print(f"generated : {pred.generated_text!r}")
    print(f"parsed    : {pred.value}")
    print(f"truth     : {truth:.7f}")
    if pred.value:
        print(f"rel error : {abs(pred.value - truth) / truth:.1%}")
    print(f"ICL copy  : {pred.exact_copy}")
    return 0


def _cmd_grid(args) -> int:
    specs = paper_grid(
        sizes=tuple(args.sizes),
        icl_counts=tuple(args.icl),
        n_sets=args.sets,
        seeds=tuple(args.seeds),
        n_queries=args.queries,
    )
    print(f"running {len(specs)} experiment cells...", file=sys.stderr)
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    grid_kwargs = dict(
        checkpoint=args.checkpoint,
        resume=args.resume,
        prefix_cache=args.prefix_cache,
    )
    if args.serve:
        from repro.serve import PredictionService

        with PredictionService(
            workers=args.workers, enable_prefix_cache=args.prefix_cache
        ) as service:
            probes = run_grid(specs, service=service, **grid_kwargs)
            stats = service.stats()
        print(
            f"served {stats.n_completed} probes at "
            f"{stats.throughput_rps:.1f} req/s "
            f"(result-cache hit rate {stats.result_hit_rate:.0%})",
            file=sys.stderr,
        )
    else:
        probes = run_grid(specs, workers=args.workers, **grid_kwargs)
    if args.checkpoint:
        print(
            f"checkpointed {len(probes)} probes in {args.checkpoint}",
            file=sys.stderr,
        )
    if args.save:
        from repro.core.storage import save_probes_jsonl

        save_probes_jsonl(probes, args.save)
        print(f"saved {len(probes)} probes to {args.save}", file=sys.stderr)
    report = build_report(probes)
    for line in report.summary_lines():
        print(line)
    t = Table(["n ICL", "mean MARE"], title="error vs ICL count")
    for n, v in report.per_icl_mare.items():
        t.add_row([n, v])
    print()
    print(t.render())
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import analyze_grid
    from repro.core.storage import load_probes_jsonl

    probes = load_probes_jsonl(args.probes)
    print(f"loaded {len(probes)} probes from {args.probes}", file=sys.stderr)
    print(analyze_grid(probes).render())
    return 0


def _cmd_tune(args) -> int:
    from repro.dataset import Syr2kPerformanceModel
    from repro.tuning import (
        BayesianOptTuner,
        HillClimbTuner,
        LLMCandidateTuner,
        RandomSearchTuner,
        compare_tuners,
    )

    task = Syr2kTask(args.size)
    space = syr2k_space()
    model = Syr2kPerformanceModel(task)
    comparison = compare_tuners(
        [
            RandomSearchTuner(space, seed=args.seed),
            HillClimbTuner(space, seed=args.seed),
            BayesianOptTuner(space, seed=args.seed),
            LLMCandidateTuner(space, task, seed=args.seed),
        ],
        model,
        budget=args.budget,
        repetitions=args.repetitions,
    )
    t = Table(
        ["tuner", "mean best runtime", "regret"],
        title=f"syr2k {args.size} (optimum {comparison.global_optimum:.6f})",
    )
    for name, best in comparison.ranking():
        t.add_row([name, best, comparison.mean_regret(name)])
    print(t.render())
    return 0


def _serve_bench_workload(args):
    """Build the repeated-prompt request list the bench replays."""
    from repro.serve import Request

    dataset = generate_dataset(args.size)
    sets, queries = disjoint_example_sets(
        dataset, 1, args.n_icl, seed=args.seed, n_queries=args.unique
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    # Whole-list repetition interleaves revisits (cache-friendly but not
    # cache-adjacent, like real grid traffic).  Odd repeat waves switch
    # the sampling seed: those requests miss the result cache but still
    # hit the prepare cache, exercising both levels.
    return [
        Request(
            examples=examples,
            query_config=dataset.config(int(q)),
            seed=args.seed + i + (1000 if wave % 2 else 0),
            size=args.size,
        )
        for wave in range(args.repeats)
        for i, q in enumerate(queries)
    ]


def _cmd_serve_bench(args) -> int:
    from repro.obs import Tracer, collect_service_metrics, use_tracer
    from repro.serve import PredictionService
    from repro.utils.timing import Timer

    workload = _serve_bench_workload(args)

    def run(caches_enabled: bool, tracer=None, metrics=False):
        with PredictionService(
            max_batch_size=args.batch_size,
            max_wait_s=args.max_wait,
            workers=args.workers,
            enable_prepare_cache=caches_enabled,
            enable_result_cache=caches_enabled,
            enable_prefix_cache=args.prefix_cache,
        ) as service:
            if tracer is not None:
                with use_tracer(tracer), Timer() as timer:
                    service.submit_many(workload)
            else:
                with Timer() as timer:
                    service.submit_many(workload)
            registry = (
                collect_service_metrics(service) if metrics else None
            )
            return service.stats(), timer.elapsed, registry

    n = len(workload)
    print(
        f"replaying {n} requests ({args.unique} unique x {args.repeats} "
        f"repeats, size {args.size}, {args.n_icl} ICL examples)",
        file=sys.stderr,
    )
    tracer = Tracer() if args.trace else None
    cached, cached_t, registry = run(
        True, tracer=tracer, metrics=args.metrics
    )
    print(cached.render(title="serve-bench (caches on)"))
    if tracer is not None:
        n_spans = tracer.export_jsonl(args.trace)
        print(
            f"exported {n_spans} spans to {args.trace} "
            f"(`repro trace summarize {args.trace}`)",
            file=sys.stderr,
        )
    if registry is not None:
        print()
        print(registry.render(title="metrics registry (caches on)"))
    if not args.no_baseline:
        uncached, uncached_t, _ = run(False)
        print()
        print(uncached.render(title="serve-bench (caches off)"))
        speedup = (n / cached_t) / (n / uncached_t)
        print()
        print(
            f"caching speedup: {speedup:.1f}x "
            f"({n / cached_t:.1f} vs {n / uncached_t:.1f} req/s)"
        )
    return 0


def _chaos_workload(args):
    """Cycle ``--requests`` requests over ``--unique`` distinct probes."""
    from repro.serve import Request

    dataset = generate_dataset(args.size)
    sets, queries = disjoint_example_sets(
        dataset, 1, args.n_icl, seed=args.seed, n_queries=args.unique
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    workload = []
    wave = 0
    while len(workload) < args.requests:
        for i, q in enumerate(queries):
            if len(workload) >= args.requests:
                break
            workload.append(
                Request(
                    examples=examples,
                    query_config=dataset.config(int(q)),
                    seed=args.seed + i + (1000 if wave % 2 else 0),
                    size=args.size,
                )
            )
        wave += 1
    return workload


def _run_chaos_once(args, workload, cache_probes: bool = False):
    from repro.errors import ServiceError
    from repro.faults import FaultPlan
    from repro.serve import PredictionService, ResilientService, RetryPolicy

    plan = FaultPlan(
        seed=args.seed,
        transient_error_rate=args.error_rate,
        latency_spike_rate=args.latency_rate,
        latency_spike_s=args.latency_s,
        eviction_storm_rate=args.evict_rate,
        queue_stall_rate=args.stall_rate,
        queue_stall_s=args.stall_s,
    )
    unhandled = 0
    values: list[float | None] = []
    with PredictionService(fault_plan=plan) as service:
        resilient = ResilientService(
            service,
            retry_policy=RetryPolicy(
                max_attempts=args.max_attempts, seed=args.seed
            ),
            fallback=False if args.no_fallback else None,
        )
        for request in workload:
            if cache_probes:
                # Degraded cache serves interleaved with live traffic:
                # these must not consume admission-ordered request ids,
                # or the deterministic fault schedule shifts under them.
                service.cached_response(request)
            try:
                response = resilient.submit(request)
            except ServiceError:
                unhandled += 1  # already counted as unavailable
                values.append(None)
            else:
                values.append(response.prediction.value)
        stats = service.stats()
        fault_counts = service.faults.stats.snapshot()
        fault_report = service.faults.stats.render()
    return stats, fault_counts, fault_report, unhandled, values


def _cmd_chaos(args) -> int:
    workload = _chaos_workload(args)
    print(
        f"driving {len(workload)} requests through a seeded fault plan "
        f"(size {args.size}, seed {args.seed})",
        file=sys.stderr,
    )
    stats, faults, fault_report, unhandled, values = _run_chaos_once(
        args, workload
    )
    print(stats.render(title="chaos report (service under faults)"))
    print()
    print(fault_report)
    print()
    print(
        f"availability: {stats.availability:.2%}  "
        f"(p95 under faults {stats.p95_latency_s * 1000:.1f} ms, "
        f"{stats.n_degraded} degraded, {unhandled} unanswered)"
    )
    if args.verify_determinism:
        counters = ("n_retries", "n_breaker_trips", "n_degraded",
                    "n_unavailable", "n_logical")

        def compare(label, stats2, faults2, unhandled2, values2) -> bool:
            same = (
                all(
                    getattr(stats, c) == getattr(stats2, c)
                    for c in counters
                )
                and faults == faults2
                and unhandled == unhandled2
                and values == values2
            )
            print(f"deterministic {label}: {'yes' if same else 'NO'}")
            if not same:
                for c in counters:
                    print(
                        f"  {c}: {getattr(stats, c)} "
                        f"vs {getattr(stats2, c)}"
                    )
                print(f"  faults: {faults} vs {faults2}")
                diverged = sum(
                    a != b for a, b in zip(values, values2)
                ) + abs(len(values) - len(values2))
                print(f"  responses diverging: {diverged}/{len(values)}")
            return same

        s2, f2, _, u2, v2 = _run_chaos_once(args, workload)
        ok = compare("across two identical runs", s2, f2, u2, v2)
        # Third run with degraded cache serves interleaved: cached
        # responses must leave the admission-ordered fault schedule (and
        # hence every counter and response value) untouched.
        s3, f3, _, u3, v3 = _run_chaos_once(args, workload,
                                            cache_probes=True)
        ok &= compare("with degraded cache serves interleaved",
                      s3, f3, u3, v3)
        if not ok:
            return 1
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import load_spans, render_span_tree, summarize_spans

    spans = load_spans(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    print(summarize_spans(spans).render())
    if args.tree > 0:
        print()
        print(render_span_tree(spans, max_roots=args.tree))
    return 0


def _cmd_table1(args) -> int:
    t = Table(
        ["size", "train n", "R2", "MARE", "MSRE"],
        title="GBT baseline metrics (Table I shape)",
    )
    for size in args.sizes:
        dataset = generate_dataset(size)
        train, test = train_test_split(dataset, 0.8, seed=1)
        enc = FeatureEncoder(dataset.space)
        tt = TargetTransform("log")
        x_test = enc.encode_dataset(test)
        for n in args.train:
            sub = train.subset(np.arange(min(n, len(train))))
            model = GradientBoostingRegressor(
                BoostingParams(
                    n_estimators=200, learning_rate=0.1, max_depth=6,
                    min_samples_leaf=2,
                )
            ).fit(enc.encode_dataset(sub), tt.forward(sub.runtimes))
            m = score_predictions(
                test.runtimes, tt.inverse(model.predict(x_test))
            )
            t.add_row([size, len(sub), m.r2, m.mare, m.msre])
    print(t.render())
    return 0


_COMMANDS = {
    "dataset": _cmd_dataset,
    "predict": _cmd_predict,
    "grid": _cmd_grid,
    "report": _cmd_report,
    "tune": _cmd_tune,
    "table1": _cmd_table1,
    "serve-bench": _cmd_serve_bench,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
