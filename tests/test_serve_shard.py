"""Tests for the sharded multi-process serving backend.

Covers the pure routing function, cross-process error transport, the
``make_service`` backend switch, bit-identical predictions across shard
counts, aggregated stats, and — under the ``chaos`` marker — worker
death: kill → typed ``ShardCrashError`` → respawn → permanent
``ShardFailedError`` at the restart cap, plus checkpointed-grid
recovery to a bit-identical unsharded baseline.

Worker processes boot a full replica each (~seconds on small hosts), so
the live-service tests share one module-scoped 2-shard service; tests
that destroy shard state build their own.
"""

import pickle
import time

import pytest

from repro.core import load_probes_jsonl, quick_grid, run_grid
from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardCrashError,
    ShardError,
    ShardFailedError,
)
from repro.serve import (
    PredictionService,
    Request,
    ShardedPredictionService,
    make_service,
    route_shard,
)


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(4)
    ]


def make_request(sm_dataset, examples, query=42, seed=0, **kw):
    return Request(
        examples=examples,
        query_config=sm_dataset.config(query),
        seed=seed,
        size="SM",
        **kw,
    )


def canonical(responses):
    """Strip serving metadata: the determinism contract covers the
    prediction payload, not latency/batch shape (DESIGN §12)."""
    return [repr(r.prediction) for r in responses]


def probe_key(probe):
    """Identity of a probe for bit-identity checks (mirrors the
    checkpoint tests): spec cell, query, and the exact decode."""
    return (
        probe.spec.cell_key,
        probe.query_index,
        probe.predicted,
        probe.generated_text,
    )


class TestRouteShard:
    def test_in_range_and_deterministic(self):
        keys = [f"prompt-{i}" for i in range(64)]
        for n in (1, 2, 3, 5, 8):
            owners = [route_shard(k, n) for k in keys]
            assert all(0 <= s < n for s in owners)
            assert owners == [route_shard(k, n) for k in keys]

    def test_single_shard_owns_everything(self):
        assert route_shard("anything", 1) == 0

    def test_spreads_load(self):
        owners = {route_shard(f"p{i}", 4) for i in range(256)}
        assert owners == {0, 1, 2, 3}

    def test_route_seed_remaps(self):
        keys = [f"prompt-{i}" for i in range(64)]
        a = [route_shard(k, 4, route_seed=0) for k in keys]
        b = [route_shard(k, 4, route_seed=1) for k in keys]
        assert a != b

    def test_rendezvous_stability(self):
        """Growing the shard count only remaps keys whose winner is the
        new shard — everything else keeps its owner."""
        keys = [f"prompt-{i}" for i in range(256)]
        before = {k: route_shard(k, 4) for k in keys}
        after = {k: route_shard(k, 5) for k in keys}
        for k in keys:
            assert after[k] == before[k] or after[k] == 4

    def test_rejects_zero_shards(self):
        with pytest.raises(ServiceError):
            route_shard("p", 0)


class TestErrorTransport:
    """Structured errors must survive the worker → parent pickle hop."""

    CASES = [
        (ServiceOverloadedError(8, depth=8), ("capacity", "depth")),
        (RequestTimeoutError(1.5), ("timeout_s",)),
        (InjectedFaultError("worker", "k"), ("site", "key")),
        (CircuitOpenError("SM"), ("route",)),
        (ShardCrashError(3, exitcode=-9), ("shard", "exitcode")),
        (ShardFailedError(2, restarts=4), ("shard", "restarts")),
    ]

    @pytest.mark.parametrize(
        "exc,attrs", CASES, ids=[type(e).__name__ for e, _ in CASES]
    )
    def test_roundtrip(self, exc, attrs):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        for attr in attrs:
            assert getattr(clone, attr) == getattr(exc, attr)

    def test_shard_errors_are_service_errors(self):
        assert issubclass(ShardCrashError, ShardError)
        assert issubclass(ShardFailedError, ShardError)
        assert issubclass(ShardError, ServiceError)


class TestMakeService:
    def test_zero_shards_is_in_process(self):
        service = make_service(shards=0)
        try:
            assert isinstance(service, PredictionService)
        finally:
            service.close()

    def test_negative_rejected(self):
        with pytest.raises(ServiceError):
            make_service(shards=-1)

    def test_sharded_rejects_surrogate(self, sm_task):
        from repro.core.surrogate import DiscriminativeSurrogate

        with pytest.raises(ServiceError):
            make_service(shards=2, surrogate=DiscriminativeSurrogate(sm_task))

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            ShardedPredictionService(0)
        with pytest.raises(ServiceError):
            ShardedPredictionService(2, shard_queue_capacity=0)
        with pytest.raises(ServiceError):
            ShardedPredictionService(2, max_restarts=-1)


@pytest.fixture(scope="module")
def sharded(request):
    service = make_service(shards=2, max_batch_size=4)
    request.addfinalizer(service.close)
    return service


class TestShardedServing:
    """Live 2-shard service: parity with the in-process backend."""

    def workload(self, sm_dataset, examples):
        return [
            make_request(sm_dataset, examples, query=q, seed=s)
            for s in range(2)
            for q in (40, 41, 42)
        ]

    def test_bit_identical_with_unsharded(
        self, sharded, sm_dataset, examples
    ):
        requests = self.workload(sm_dataset, examples)
        with PredictionService(max_batch_size=4) as baseline:
            expect = canonical(baseline.submit_many(requests))
        got = canonical(sharded.submit_many(requests))
        assert got == expect

    def test_request_ids_follow_admission_order(
        self, sharded, sm_dataset, examples
    ):
        requests = self.workload(sm_dataset, examples)
        responses = sharded.submit_many(requests)
        ids = [r.request_id for r in responses]
        assert ids == sorted(ids)

    def test_stats_aggregate_outcomes(self, sharded, sm_dataset, examples):
        stats = sharded.stats()
        assert stats.n_submitted == stats.n_completed
        assert stats.n_submitted >= 12
        assert stats.n_batches >= 2
        assert stats.n_failed == 0

    def test_single_submit(self, sharded, sm_dataset, examples):
        response = sharded.submit(make_request(sm_dataset, examples))
        assert response.prediction is not None
        assert response.latency_s >= 0.0

    def test_cached_response_is_none(self, sharded, sm_dataset, examples):
        assert sharded.cached_response(
            make_request(sm_dataset, examples)
        ) is None

    def test_shard_info(self, sharded):
        info = sharded.shard_info
        assert info["n_shards"] == 2
        assert info["failed"] == 0
        assert set(info) == {
            "n_shards", "respawns", "failed", "crashed_tickets",
        }

    def test_facade_has_no_local_caches(self, sharded):
        assert sharded.prepare_cache is None
        assert sharded.result_cache is None


@pytest.mark.chaos
class TestShardDeath:
    def test_kill_crash_respawn_then_fail_permanently(
        self, sm_dataset, examples
    ):
        with make_service(shards=2, max_restarts=1) as service:
            # Find a query routed to shard 0 so the kill provably hits
            # the request in flight.
            victim = next(
                q for q in range(100)
                if route_shard(
                    make_request(sm_dataset, examples, query=q).prompt_key, 2
                ) == 0
            )
            request = make_request(sm_dataset, examples, query=victim)
            future = service.submit_async(request)
            service.kill_shard(0)
            with pytest.raises(ShardCrashError) as err:
                future.result(timeout=30)
            assert err.value.shard == 0
            # The restart budget covers the first death: the respawned
            # shard serves the same prompt again.
            response = service.submit(request)
            assert response.prediction is not None
            assert service.shard_info["respawns"] == 1
            # Second death exhausts max_restarts=1 → permanent failure.
            future = service.submit_async(request)
            service.kill_shard(0)
            with pytest.raises(ShardCrashError):
                future.result(timeout=30)
            deadline = time.monotonic() + 10
            while (
                service.shard_info["failed"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            with pytest.raises(ShardFailedError):
                service.submit(request)
            # The sibling shard is unaffected.
            other = next(
                q for q in range(100)
                if route_shard(
                    make_request(sm_dataset, examples, query=q).prompt_key, 2
                ) == 1
            )
            assert service.submit(
                make_request(sm_dataset, examples, query=other)
            ).prediction is not None
        with pytest.raises(ServiceClosedError):
            service.submit(request)

    def test_grid_resumes_bit_identical_after_shard_kill(self, tmp_path):
        """Satellite: kill every shard mid-grid, assert the typed
        failure, then resume the checkpoint on a fresh sharded service —
        the probes must be bit-identical to an unsharded serial run."""
        specs = quick_grid(
            sizes=("SM",), icl_counts=(1, 2, 3), n_sets=1, seeds=(1,),
            selections=("random",), n_queries=1,
        )
        baseline = run_grid(specs, workers=1)
        checkpoint = tmp_path / "grid.jsonl"

        class KillAfterFirstCell:
            """Service proxy: SIGKILL both shards before the 2nd cell."""

            def __init__(self, inner):
                self._inner = inner
                self._cells = 0

            def submit_many(self, requests):
                self._cells += 1
                if self._cells == 2:
                    self._inner.kill_shard(0)
                    self._inner.kill_shard(1)
                return self._inner.submit_many(requests)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        with make_service(shards=2, max_restarts=0) as service:
            with pytest.raises((ShardCrashError, ShardFailedError)):
                run_grid(
                    specs,
                    service=KillAfterFirstCell(service),
                    checkpoint=checkpoint,
                )
        partial = load_probes_jsonl(checkpoint)
        assert 0 < len(partial) < len(baseline)
        with make_service(shards=2) as service:
            resumed = run_grid(
                specs,
                service=service,
                checkpoint=checkpoint,
                resume=True,
            )
        assert [probe_key(p) for p in resumed] == [
            probe_key(p) for p in baseline
        ]
