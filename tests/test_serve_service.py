"""End-to-end tests for the :mod:`repro.serve` prediction service.

Covers the façade (submit/submit_many), both cache levels, batching,
backpressure, timeouts, drain/shutdown, and — critically — bit-parity
between served predictions and direct surrogate calls, which is what lets
the experiment runner route paper grids through the service.
"""

import time

import pytest

from repro.core import quick_grid, run_grid, run_spec
from repro.core.surrogate import DiscriminativeSurrogate
from repro.errors import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.serve import PredictionService, Request


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(4)
    ]


@pytest.fixture(scope="module")
def surrogate(sm_task):
    return DiscriminativeSurrogate(sm_task)


class SlowSurrogate(DiscriminativeSurrogate):
    """Surrogate with an artificial per-prediction delay (test control)."""

    delay_s = 0.05

    def predict_parts(self, parts, seed=0, analysis=None):
        time.sleep(self.delay_s)
        return super().predict_parts(parts, seed=seed, analysis=analysis)


def make_request(sm_dataset, examples, query=42, seed=0, **kw):
    return Request(
        examples=examples,
        query_config=sm_dataset.config(query),
        seed=seed,
        size="SM",
        **kw,
    )


class TestRequestValidation:
    def test_needs_examples(self, sm_dataset):
        with pytest.raises(ServiceError):
            Request(examples=[], query_config=sm_dataset.config(0))

    def test_rejects_bad_timeout(self, sm_dataset, examples):
        with pytest.raises(ServiceError):
            make_request(sm_dataset, examples, timeout_s=0.0)


class TestServing:
    def test_matches_direct_prediction(self, sm_dataset, examples, surrogate):
        """Served output is bit-identical to a direct surrogate call."""
        direct = surrogate.predict(examples, sm_dataset.config(42), seed=7)
        with PredictionService() as svc:
            resp = svc.submit(make_request(sm_dataset, examples, seed=7))
        assert resp.prediction.generated_text == direct.generated_text
        assert resp.prediction.value == direct.value
        assert resp.prediction.value_text == direct.value_text
        assert resp.value == direct.value

    def test_submit_many_preserves_order(self, sm_dataset, examples, surrogate):
        queries = [10, 99, 42, 10, 7]
        with PredictionService() as svc:
            responses = svc.submit_many(
                make_request(sm_dataset, examples, query=q, seed=q)
                for q in queries
            )
        for q, resp in zip(queries, responses):
            want = surrogate.predict(examples, sm_dataset.config(q), seed=q)
            assert resp.prediction.generated_text == want.generated_text

    def test_result_cache_hit(self, sm_dataset, examples):
        with PredictionService() as svc:
            first = svc.submit(make_request(sm_dataset, examples, seed=3))
            second = svc.submit(make_request(sm_dataset, examples, seed=3))
            assert not first.result_cache_hit
            assert second.result_cache_hit
            # Cached responses share the prediction object.
            assert second.prediction is first.prediction
            stats = svc.stats()
        assert stats.result_hits == 1 and stats.result_misses == 1

    def test_prepare_cache_spans_seeds(self, sm_dataset, examples):
        """Same prompt, new seed: result misses but prepare hits."""
        with PredictionService() as svc:
            svc.submit(make_request(sm_dataset, examples, seed=1))
            resp = svc.submit(make_request(sm_dataset, examples, seed=2))
            assert not resp.result_cache_hit
            assert resp.prepare_cache_hit
            stats = svc.stats()
        assert stats.prepare_hits == 1

    def test_caches_disabled(self, sm_dataset, examples):
        with PredictionService(
            enable_prepare_cache=False, enable_result_cache=False
        ) as svc:
            svc.submit(make_request(sm_dataset, examples, seed=3))
            resp = svc.submit(make_request(sm_dataset, examples, seed=3))
            assert not resp.result_cache_hit
            assert not resp.prepare_cache_hit
            stats = svc.stats()
        assert stats.result_hits == 0 and stats.prepare_hits == 0

    def test_explicit_surrogate_is_used(self, sm_dataset, examples, surrogate):
        with PredictionService(surrogate) as svc:
            resp = svc.submit(make_request(sm_dataset, examples, seed=5))
        want = surrogate.predict(examples, sm_dataset.config(42), seed=5)
        assert resp.prediction.generated_text == want.generated_text

    def test_batching_records_occupancy(self, sm_dataset, examples):
        with PredictionService(max_batch_size=4, max_wait_s=0.05) as svc:
            svc.submit_many(
                make_request(sm_dataset, examples, query=q, seed=q)
                for q in range(8)
            )
            stats = svc.stats()
        assert stats.n_batches >= 2
        assert 0.0 < stats.mean_batch_size <= 4.0
        assert 0.0 < stats.batch_occupancy <= 1.0
        assert stats.p95_latency_s >= stats.p50_latency_s >= 0.0


class TestRobustness:
    def test_timeout(self, sm_task, sm_dataset, examples):
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.5
        with PredictionService(slow, max_wait_s=0.0) as svc:
            with pytest.raises(RequestTimeoutError):
                svc.submit(
                    make_request(sm_dataset, examples, timeout_s=0.05)
                )
            assert svc.stats().n_timeouts == 1

    def test_backpressure_overload(self, sm_task, sm_dataset, examples):
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.1
        svc = PredictionService(
            slow,
            max_batch_size=1,
            max_wait_s=0.0,
            queue_capacity=1,
            workers=1,
            max_inflight_batches=1,
        )
        futures, rejected = [], 0
        try:
            for i in range(20):
                try:
                    futures.append(
                        svc.submit_async(
                            make_request(sm_dataset, examples, seed=i)
                        )
                    )
                except ServiceOverloadedError as exc:
                    rejected += 1
                    assert exc.capacity == 1
                    assert exc.depth is not None
                    assert 0 <= exc.depth <= exc.capacity
                    assert "queued" in str(exc)
        finally:
            svc.close(drain=True)
        assert rejected >= 1
        assert svc.stats().n_rejected == rejected
        # Everything admitted still completed (graceful drain).
        assert all(f.result().prediction is not None for f in futures)

    def test_submit_after_close(self, sm_dataset, examples):
        svc = PredictionService()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(make_request(sm_dataset, examples))

    def test_close_idempotent(self):
        svc = PredictionService()
        svc.close()
        svc.close()

    def test_abandon_rejects_queued(self, sm_task, sm_dataset, examples):
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.2
        svc = PredictionService(
            slow, max_batch_size=1, max_wait_s=0.0, workers=1,
            max_inflight_batches=1, queue_capacity=8,
        )
        futures = [
            svc.submit_async(make_request(sm_dataset, examples, seed=i))
            for i in range(6)
        ]
        svc.close(drain=False)
        outcomes = []
        for f in futures:
            try:
                f.result(timeout=5)
                outcomes.append("done")
            except ServiceClosedError:
                outcomes.append("rejected")
        assert "rejected" in outcomes  # queued work was abandoned

    def test_nondrain_close_fails_in_hand_partial_batch(self):
        """close(drain=False) must fail the collector's partial batch.

        Pre-fix the sentinel branch flushed and *executed* the in-hand
        partial batch even on a non-drain close, contradicting the
        documented abandon semantics.
        """
        from repro.serve.scheduler import MicroBatcher, Ticket

        executed = []

        def execute(batch):
            executed.append(len(batch))
            for t in batch:
                if t.future.set_running_or_notify_cancel():
                    t.future.set_result("ran")

        # Batch threshold and deadline both unreachably large: the
        # collector picks the tickets up and then just holds them.
        mb = MicroBatcher(
            execute, max_batch_size=64, max_wait_s=60.0, workers=1
        )
        tickets = [Ticket(request_id=i, request=None) for i in range(3)]
        for t in tickets:
            mb.submit(t)
        deadline = time.monotonic() + 5.0
        while mb._queue.qsize() > 0 and time.monotonic() < deadline:
            time.sleep(0.001)  # wait for the collector to take them
        mb.close(drain=False)
        for t in tickets:
            with pytest.raises(ServiceClosedError):
                t.future.result(timeout=5)
        assert executed == []

    def test_closed_reject_not_counted_as_overload(
        self, sm_dataset, examples
    ):
        svc = PredictionService()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(make_request(sm_dataset, examples))
        stats = svc.stats()
        assert stats.n_closed_rejects == 1
        assert stats.n_rejected == 0  # overload counter stays clean


class TestMicroBatcherDeadline:
    def test_queue_wait_p95_tracks_max_wait_not_poll_tick(self):
        """Regression: the collector polled at a fixed 0.5 s granularity,
        so a lone ticket under ``max_wait_s=0.05`` sat in hand until the
        next poll tick — up to 10x its deadline.  The poll now sleeps
        ``min(_POLL_S, remaining deadline)``; queue wait must track the
        configured deadline, not the tick."""
        from repro.serve.scheduler import _POLL_S, MicroBatcher, Ticket

        waits = []

        def execute(batch):
            now = time.monotonic()
            for t in batch:
                waits.append(now - t.enqueued_at)
                if t.future.set_running_or_notify_cancel():
                    t.future.set_result("ran")

        # Batch threshold unreachable: every flush is deadline-driven.
        mb = MicroBatcher(
            execute, max_batch_size=64, max_wait_s=0.05, workers=1
        )
        try:
            for i in range(20):
                ticket = Ticket(request_id=i, request=None)
                mb.submit(ticket)
                ticket.future.result(timeout=5)
        finally:
            mb.close()
        waits.sort()
        p95 = waits[int(0.95 * (len(waits) - 1))]
        # Well under the old tick; generous headroom for a loaded box.
        assert p95 < _POLL_S / 2, waits


class TestCachedResponseIds:
    def test_cached_response_ids_negative_and_isolated(
        self, sm_dataset, examples
    ):
        """Cache-only serves draw from their own (negative) id space."""
        with PredictionService() as svc:
            req = make_request(sm_dataset, examples, seed=5)
            assert svc.cached_response(req) is None  # miss: nothing served
            live = svc.submit(req)
            assert live.request_id == 0
            cached = svc.cached_response(req)
            cached2 = svc.cached_response(req)
            assert cached is not None and cached2 is not None
            assert cached.request_id < 0 and cached2.request_id < 0
            assert cached.request_id != cached2.request_id
            # Admission-ordered ids are untouched by the cached serves —
            # pre-fix they shared self._ids and the next live request
            # would have skipped ids 1 and 2.
            live2 = svc.submit(
                make_request(sm_dataset, examples, query=10, seed=5)
            )
            assert live2.request_id == 1

    def test_fault_schedule_immune_to_cached_serves(
        self, sm_dataset, examples
    ):
        """Interleaved degraded cache serves must not shift fault keys.

        Request-level faults are keyed on admission-ordered ticket ids;
        when cached_response consumed those ids, every later request's
        fault decision silently moved.
        """
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=20250806, transient_error_rate=0.3)

        def run(interleave: bool):
            outcomes = []
            with PredictionService(fault_plan=plan) as svc:
                for q in range(12):
                    req = make_request(
                        sm_dataset, examples, query=q % 3, seed=q % 3
                    )
                    if interleave:
                        svc.cached_response(req)
                    try:
                        outcomes.append(svc.submit(req).prediction.value)
                    except ServiceError:
                        outcomes.append(None)
                faults = svc.faults.stats.snapshot()
            return outcomes, faults

        plain_outcomes, plain_faults = run(False)
        mixed_outcomes, mixed_faults = run(True)
        assert plain_faults["transient_errors"] >= 1  # the plan fired
        assert mixed_faults == plain_faults
        assert mixed_outcomes == plain_outcomes


class TestRunnerIntegration:
    def test_run_spec_parity(self, sm_dataset):
        spec = quick_grid(
            sizes=("SM",), icl_counts=(2,), n_sets=1, seeds=(1,),
            selections=("random",), n_queries=2,
        )[0]
        direct = run_spec(spec)
        with PredictionService() as svc:
            served = run_spec(spec, service=svc)
        assert len(direct) == len(served)
        for a, b in zip(direct, served):
            assert a.predicted == b.predicted
            assert a.generated_text == b.generated_text
            assert a.truth == b.truth
            assert a.query_index == b.query_index

    def test_run_grid_through_service(self, sm_dataset):
        specs = quick_grid(
            sizes=("SM",), icl_counts=(1, 2), n_sets=1, seeds=(1,),
            selections=("random",), n_queries=1,
        )
        direct = run_grid(specs, workers=1)
        with PredictionService() as svc:
            served = run_grid(specs, service=svc)
            stats = svc.stats()
        assert [p.predicted for p in served] == [p.predicted for p in direct]
        assert stats.n_completed == len(served)
