"""Tests for configuration/runtime serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.prompts.serialize import (
    deserialize_config,
    example_block,
    format_runtime,
    query_block,
    serialize_config,
)


class TestFormatRuntime:
    def test_subsecond_seven_decimals(self):
        """The paper's SM example: Performance: 0.0022155."""
        assert format_runtime(0.0022155) == "0.0022155"

    def test_seconds_four_decimals(self):
        assert format_runtime(2.2767) == "2.2767"

    def test_boundary(self):
        assert format_runtime(0.9999999) == "0.9999999"
        assert format_runtime(1.0) == "1.0000"

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            format_runtime(0.0)
        with pytest.raises(ValueError):
            format_runtime(-1.0)

    @given(
        st.floats(min_value=1e-6, max_value=9.99, allow_nan=False)
    )
    @settings(max_examples=50, deadline=None)
    def test_always_plain_decimal(self, v):
        s = format_runtime(v)
        assert "e" not in s and "E" not in s
        assert float(s) == pytest.approx(v, rel=1e-2, abs=1e-6)


class TestSerializeConfig:
    def test_figure1_layout(self, space):
        cfg = space.from_index(0)
        text = serialize_config(cfg, "SM")
        assert text.startswith("size is SM, ")
        assert "first_array_packed is False" in text
        assert "outer_loop_tiling_factor is 4" in text

    def test_roundtrip(self, space):
        cfg = space.from_index(1234)
        text = serialize_config(cfg, "SM")
        parsed, size = deserialize_config(text, space)
        assert parsed == cfg and size == "SM"

    def test_roundtrip_all_corners(self, space):
        for idx in (0, space.size - 1, 5000):
            cfg = space.from_index(idx)
            parsed, _ = deserialize_config(
                serialize_config(cfg, "XL"), space
            )
            assert space.to_index(parsed) == idx


class TestDeserialize:
    def test_missing_param(self, space):
        with pytest.raises(ParseError, match="missing parameter"):
            deserialize_config("size is SM, first_array_packed is True", space)

    def test_out_of_domain(self, space):
        cfg = space.from_index(0)
        text = serialize_config(cfg, "SM").replace(
            "outer_loop_tiling_factor is 4", "outer_loop_tiling_factor is 5"
        )
        with pytest.raises(ParseError, match="not in domain"):
            deserialize_config(text, space)

    def test_tolerates_surrounding_text(self, space):
        cfg = space.from_index(77)
        text = "Sure! " + serialize_config(cfg, "SM") + "\nDone."
        parsed, _ = deserialize_config(text, space)
        assert space.to_index(parsed) == 77


class TestBlocks:
    def test_example_block(self, space):
        cfg = space.from_index(3)
        block = example_block(cfg, "SM", 0.0022155)
        assert block.startswith("Hyperparameter configuration: size is SM")
        assert block.endswith("Performance: 0.0022155\n")

    def test_query_block_ends_open(self, space):
        cfg = space.from_index(3)
        block = query_block(cfg, "SM")
        assert block.endswith("Performance:")
        assert "0.00" not in block
