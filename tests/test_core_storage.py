"""Tests for probe persistence."""

import numpy as np
import pytest

from repro.core import quick_grid, run_grid
from repro.core.storage import load_probes_jsonl, save_probes_jsonl
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def probes():
    return run_grid(
        quick_grid(
            sizes=("SM",), icl_counts=(3,), n_sets=1, seeds=(1,), n_queries=3
        ),
        workers=1,
    )


class TestRoundtrip:
    def test_full_roundtrip(self, probes, tmp_path):
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        assert len(loaded) == len(probes)
        for a, b in zip(probes, loaded):
            assert a.spec == b.spec
            assert a.generated_text == b.generated_text
            assert a.truth == pytest.approx(b.truth)
            assert a.exact_copy == b.exact_copy
            assert len(a.value_steps) == len(b.value_steps)
            for sa, sb in zip(a.value_steps, b.value_steps):
                assert sa.tokens == sb.tokens
                assert sa.chosen == sb.chosen
                np.testing.assert_allclose(sa.logits, sb.logits, atol=1e-5)

    def test_analyses_survive_roundtrip(self, probes, tmp_path):
        """The reloaded probes feed the report pipeline unchanged."""
        from repro.core import build_report

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        a = build_report(probes)
        b = build_report(loaded)
        assert a.copy_rate == b.copy_rate
        assert a.parse_rate == b.parse_rate

    def test_unparsed_prediction_roundtrip(self, probes, tmp_path):
        import dataclasses

        broken = [dataclasses.replace(probes[0], predicted=None)]
        path = tmp_path / "one.jsonl"
        save_probes_jsonl(broken, path)
        assert load_probes_jsonl(path)[0].predicted is None


class TestErrors:
    def test_not_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_wrong_format_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-probes", "version": 99}\n')
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-probes", "version": 1}\n{"nope": 1}\n'
        )
        with pytest.raises(ExperimentError, match="corrupt"):
            load_probes_jsonl(path)
