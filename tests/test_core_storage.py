"""Tests for probe persistence."""

import numpy as np
import pytest

from repro.core import quick_grid, run_grid
from repro.core.storage import load_probes_jsonl, save_probes_jsonl
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def probes():
    return run_grid(
        quick_grid(
            sizes=("SM",), icl_counts=(3,), n_sets=1, seeds=(1,), n_queries=3
        ),
        workers=1,
    )


class TestRoundtrip:
    def test_full_roundtrip(self, probes, tmp_path):
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        assert len(loaded) == len(probes)
        for a, b in zip(probes, loaded):
            assert a.spec == b.spec
            assert a.generated_text == b.generated_text
            assert a.truth == pytest.approx(b.truth)
            assert a.exact_copy == b.exact_copy
            assert len(a.value_steps) == len(b.value_steps)
            for sa, sb in zip(a.value_steps, b.value_steps):
                assert sa.tokens == sb.tokens
                assert sa.chosen == sb.chosen
                np.testing.assert_allclose(sa.logits, sb.logits, atol=1e-5)

    def test_analyses_survive_roundtrip(self, probes, tmp_path):
        """The reloaded probes feed the report pipeline unchanged."""
        from repro.core import build_report

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        a = build_report(probes)
        b = build_report(loaded)
        assert a.copy_rate == b.copy_rate
        assert a.parse_rate == b.parse_rate

    def test_unparsed_prediction_roundtrip(self, probes, tmp_path):
        import dataclasses

        broken = [dataclasses.replace(probes[0], predicted=None)]
        path = tmp_path / "one.jsonl"
        save_probes_jsonl(broken, path)
        assert load_probes_jsonl(path)[0].predicted is None


class TestErrors:
    def test_not_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_wrong_format_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-probes", "version": 99}\n')
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-probes", "version": 1}\n{"nope": 1}\n'
        )
        with pytest.raises(ExperimentError, match="corrupt"):
            load_probes_jsonl(path)


class TestEventLog:
    """Generic kind-tagged event JSONL (the session-journal substrate)."""

    def events(self, n, start=0):
        return [{"event": "eval", "step": i} for i in range(start, start + n)]

    def test_roundtrip(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(3), path, kind="session-events")
        loaded = load_events_jsonl(path, kind="session-events")
        assert loaded == self.events(3)

    def test_append_accumulates_single_header(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(2), path, kind="k")
        append_events_jsonl(self.events(2, start=2), path, kind="k")
        assert load_events_jsonl(path, kind="k") == self.events(4)
        assert len(path.read_text().splitlines()) == 5  # 1 header + 4

    def test_kind_mismatch_always_raises(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(1), path, kind="session-events")
        with pytest.raises(ExperimentError, match="session-events"):
            load_events_jsonl(path, kind="other")
        with pytest.raises(ExperimentError, match="session-events"):
            load_events_jsonl(path, kind="other", tolerate_partial=True)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-events", "kind": "k", "version": 99}\n'
        )
        from repro.core.storage import load_events_jsonl

        with pytest.raises(ExperimentError, match="version"):
            load_events_jsonl(path, kind="k")

    def test_tolerant_tail_discards_torn_write(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(2), path, kind="k")
        with path.open("a") as fh:
            fh.write('{"event": "eval", "ste')  # killed mid-write
        assert load_events_jsonl(
            path, kind="k", tolerate_partial=True
        ) == self.events(2)
        with pytest.raises(ExperimentError, match="corrupt"):
            load_events_jsonl(path, kind="k")

    def test_unreadable_header_tolerant_is_empty(self, tmp_path):
        from repro.core.storage import load_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text('{"form')
        assert load_events_jsonl(path, kind="k", tolerate_partial=True) == []
        with pytest.raises(ExperimentError):
            load_events_jsonl(path, kind="k")

    def test_non_object_record_rejected(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(1), path, kind="k")
        with path.open("a") as fh:
            fh.write("[1, 2, 3]\n")
        with pytest.raises(ExperimentError, match="not an object"):
            load_events_jsonl(path, kind="k")
