"""Tests for probe persistence."""

import numpy as np
import pytest

from repro.core import quick_grid, run_grid
from repro.core.storage import load_probes_jsonl, save_probes_jsonl
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def probes():
    return run_grid(
        quick_grid(
            sizes=("SM",), icl_counts=(3,), n_sets=1, seeds=(1,), n_queries=3
        ),
        workers=1,
    )


class TestRoundtrip:
    def test_full_roundtrip(self, probes, tmp_path):
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        assert len(loaded) == len(probes)
        for a, b in zip(probes, loaded):
            assert a.spec == b.spec
            assert a.generated_text == b.generated_text
            assert a.truth == pytest.approx(b.truth)
            assert a.exact_copy == b.exact_copy
            assert len(a.value_steps) == len(b.value_steps)
            for sa, sb in zip(a.value_steps, b.value_steps):
                assert sa.tokens == sb.tokens
                assert sa.chosen == sb.chosen
                np.testing.assert_allclose(sa.logits, sb.logits, atol=1e-5)

    def test_analyses_survive_roundtrip(self, probes, tmp_path):
        """The reloaded probes feed the report pipeline unchanged."""
        from repro.core import build_report

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        a = build_report(probes)
        b = build_report(loaded)
        assert a.copy_rate == b.copy_rate
        assert a.parse_rate == b.parse_rate

    def test_unparsed_prediction_roundtrip(self, probes, tmp_path):
        import dataclasses

        broken = [dataclasses.replace(probes[0], predicted=None)]
        path = tmp_path / "one.jsonl"
        save_probes_jsonl(broken, path)
        assert load_probes_jsonl(path)[0].predicted is None


class TestErrors:
    def test_not_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_wrong_format_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-probes", "version": 99}\n')
        with pytest.raises(ExperimentError):
            load_probes_jsonl(path)

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-probes", "version": 1}\n{"nope": 1}\n'
        )
        with pytest.raises(ExperimentError, match="corrupt"):
            load_probes_jsonl(path)


class TestDurability:
    """Format v2 framing, recovery reports, and crash-safe writes."""

    def test_v2_frames_on_disk(self, probes, tmp_path):
        import json

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == 2
        for seq, line in enumerate(lines[1:]):
            frame = json.loads(line)
            assert set(frame) == {"crc", "rec", "seq"}
            assert frame["seq"] == seq

    def test_clean_load_reports_clean(self, probes, tmp_path):
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        loaded = load_probes_jsonl(path)
        assert loaded.report.clean
        assert loaded.report.records_ok == len(probes)
        assert loaded.report.version == 2

    def test_v1_probe_file_still_loads(self, probes, tmp_path):
        """Artifacts written by earlier releases (unframed v1) still read."""
        import json

        from repro.core.storage import _encode_probe

        path = tmp_path / "v1.jsonl"
        with path.open("w") as fh:
            fh.write('{"format": "repro-probes", "version": 1}\n')
            for p in probes:
                fh.write(json.dumps(_encode_probe(p)) + "\n")
        loaded = load_probes_jsonl(path)
        assert len(loaded) == len(probes)
        assert loaded.report.version == 1
        assert loaded.report.clean
        assert [p.spec for p in loaded] == [p.spec for p in probes]

    def test_salvage_past_corrupt_span(self, probes, tmp_path):
        """Probe loads keep verified records beyond damage (cell dedupe
        makes them safe), and the report accounts for the loss."""
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        lines = path.read_text().splitlines(keepends=True)
        corrupted = lines[:2] + ["garbage not json\n"] + lines[3:]
        path.write_text("".join(corrupted))
        loaded = load_probes_jsonl(path, tolerate_partial=True)
        assert len(loaded) == len(probes) - 1
        rep = loaded.report
        assert rep.records_ok == 1
        assert rep.records_salvaged_after_gap == len(probes) - 2
        assert rep.records_quarantined == 1
        assert rep.bytes_dropped > 0
        assert rep.first_bad_offset is not None
        assert not rep.clean
        qpath = tmp_path / "probes.jsonl.quarantine"
        assert qpath.exists()
        assert b"garbage not json" in qpath.read_bytes()

    def test_event_journal_truncates_at_gap(self, tmp_path):
        """Deleting a mid-journal line (seq gap) truncates the replayable
        prefix — records past the hole are quarantined, not replayed."""
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        events = [{"event": "eval", "step": i} for i in range(5)]
        append_events_jsonl(events, path, kind="k")
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:3] + lines[4:]))  # drop seq 2
        loaded = load_events_jsonl(path, kind="k", tolerate_partial=True)
        assert loaded == events[:2]
        assert loaded.report.truncated_at_seq == 2
        assert loaded.report.records_quarantined == 2
        with pytest.raises(ExperimentError, match="gap"):
            load_events_jsonl(path, kind="k")

    def test_save_is_atomic_no_tmp_left(self, probes, tmp_path):
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        save_probes_jsonl(probes, path)  # overwrite goes through replace
        assert not (tmp_path / "probes.jsonl.tmp").exists()
        assert load_probes_jsonl(path).report.clean

    def test_torn_header_repaired_on_append(self, tmp_path):
        """Crash between create and header write leaves a headerless
        file; the next append repairs it instead of rejecting forever."""
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text('{"form')  # torn header, no newline
        events = [{"event": "eval", "step": 0}]
        append_events_jsonl(events, path, kind="k")
        assert load_events_jsonl(path, kind="k") == events

    def test_torn_header_with_tail_refuses_append(self, tmp_path):
        from repro.core.storage import append_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text('not a header\n{"x": 1}\n')
        with pytest.raises(ExperimentError, match="fsck"):
            append_events_jsonl([{"e": 1}], path, kind="k")

    def test_append_to_v1_file_stays_v1(self, tmp_path):
        """One file, one framing: appends honor the existing version."""
        import json

        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-events", "kind": "k", "version": 1}\n'
            '{"event": "eval", "step": 0}\n'
        )
        append_events_jsonl([{"event": "eval", "step": 1}], path, kind="k")
        loaded = load_events_jsonl(path, kind="k")
        assert [e["step"] for e in loaded] == [0, 1]
        last = json.loads(path.read_text().splitlines()[-1])
        assert "crc" not in last  # still a bare v1 record

    def test_integrity_counters_tick(self, tmp_path):
        from repro.core.storage import (
            append_events_jsonl,
            integrity_counters,
            load_events_jsonl,
            reset_integrity_counters,
        )

        reset_integrity_counters()
        path = tmp_path / "events.jsonl"
        append_events_jsonl([{"s": i} for i in range(3)], path, kind="k")
        with path.open("a") as fh:
            fh.write('{"crc": 1, "rec": {}, "seq": 3}\n')  # bad crc
        load_events_jsonl(path, kind="k", tolerate_partial=True)
        counts = integrity_counters()
        assert counts["crc_failures"] >= 1
        assert counts["records_quarantined"] >= 1
        assert counts["recoveries"] >= 1


class TestFsck:
    def test_verify_clean(self, probes, tmp_path):
        from repro.core.storage import verify_artifact

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        report = verify_artifact(path)
        assert report.clean
        assert report.kind == "probes"
        assert "clean" in report.summary()

    def test_verify_is_read_only(self, probes, tmp_path):
        from repro.core.storage import verify_artifact

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        with path.open("a") as fh:
            fh.write("garbage\n")
        before = path.read_bytes()
        report = verify_artifact(path)
        assert not report.clean
        assert path.read_bytes() == before
        assert not (tmp_path / "probes.jsonl.quarantine").exists()

    def test_repair_roundtrip(self, probes, tmp_path):
        from repro.core.storage import repair_artifact, verify_artifact

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]) + "XXXX\n" + "".join(lines[3:]))
        report = repair_artifact(path)
        assert report.records_quarantined == 1
        after = verify_artifact(path)
        assert after.clean
        assert after.records_ok == len(probes) - 1

    def test_repair_upgrades_v1(self, tmp_path):
        from repro.core.storage import repair_artifact, verify_artifact

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-events", "kind": "k", "version": 1}\n'
            '{"event": "eval", "step": 0}\n'
        )
        repair_artifact(path)
        report = verify_artifact(path)
        assert report.clean
        assert report.version == 2

    def test_destroyed_header_salvaged_with_asserted_kind(
        self, probes, tmp_path
    ):
        """A bitflip in the (CRC-less) header must not forfeit the
        self-verifying records below it: fsck with an explicit kind
        quarantines the header and salvages every intact frame."""
        from repro.core.storage import repair_artifact, verify_artifact

        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("!garbage header!\n" + "".join(lines[1:]))
        # Without an asserted kind, the artifact is unidentifiable.
        with pytest.raises(ExperimentError, match="kind"):
            verify_artifact(path)
        report = verify_artifact(path, kind="probes")
        assert not report.clean
        assert report.header_repaired
        assert report.records_recovered == len(probes)
        repaired = repair_artifact(path, kind="probes")
        assert repaired.header_repaired
        assert verify_artifact(path).clean
        assert len(load_probes_jsonl(path)) == len(probes)

    def test_destroyed_event_header_keeps_asserted_kind(self, tmp_path):
        from repro.core.storage import (
            append_events_jsonl,
            load_events_jsonl,
            repair_artifact,
        )

        path = tmp_path / "events.jsonl"
        events = [{"event": "eval", "step": i} for i in range(3)]
        append_events_jsonl(events, path, kind="journal")
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("{corrupt\n" + "".join(lines[1:]))
        report = repair_artifact(path, kind="events", event_kind="journal")
        assert report.header_repaired
        assert list(load_events_jsonl(path, kind="journal")) == events

    def test_verify_missing_file(self, tmp_path):
        from repro.core.storage import verify_artifact

        with pytest.raises(ExperimentError, match="does not exist"):
            verify_artifact(tmp_path / "nope.jsonl")

    def test_verify_unknown_kind(self, tmp_path):
        from repro.core.storage import verify_artifact

        path = tmp_path / "junk.jsonl"
        path.write_text("????\n")
        with pytest.raises(ExperimentError, match="kind"):
            verify_artifact(path)


class TestEventLog:
    """Generic kind-tagged event JSONL (the session-journal substrate)."""

    def events(self, n, start=0):
        return [{"event": "eval", "step": i} for i in range(start, start + n)]

    def test_roundtrip(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(3), path, kind="session-events")
        loaded = load_events_jsonl(path, kind="session-events")
        assert loaded == self.events(3)

    def test_append_accumulates_single_header(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(2), path, kind="k")
        append_events_jsonl(self.events(2, start=2), path, kind="k")
        assert load_events_jsonl(path, kind="k") == self.events(4)
        assert len(path.read_text().splitlines()) == 5  # 1 header + 4

    def test_kind_mismatch_always_raises(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(1), path, kind="session-events")
        with pytest.raises(ExperimentError, match="session-events"):
            load_events_jsonl(path, kind="other")
        with pytest.raises(ExperimentError, match="session-events"):
            load_events_jsonl(path, kind="other", tolerate_partial=True)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-events", "kind": "k", "version": 99}\n'
        )
        from repro.core.storage import load_events_jsonl

        with pytest.raises(ExperimentError, match="version"):
            load_events_jsonl(path, kind="k")

    def test_tolerant_tail_discards_torn_write(self, tmp_path):
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(2), path, kind="k")
        with path.open("a") as fh:
            fh.write('{"event": "eval", "ste')  # killed mid-write
        assert load_events_jsonl(
            path, kind="k", tolerate_partial=True
        ) == self.events(2)
        with pytest.raises(ExperimentError, match="corrupt"):
            load_events_jsonl(path, kind="k")

    def test_unreadable_header_tolerant_is_empty(self, tmp_path):
        from repro.core.storage import load_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text('{"form')
        assert load_events_jsonl(path, kind="k", tolerate_partial=True) == []
        with pytest.raises(ExperimentError):
            load_events_jsonl(path, kind="k")

    def test_non_object_record_rejected(self, tmp_path):
        """A v1 record line that parses but is not an object is corrupt."""
        from repro.core.storage import load_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-events", "kind": "k", "version": 1}\n'
            "[1, 2, 3]\n"
        )
        with pytest.raises(ExperimentError, match="not an object"):
            load_events_jsonl(path, kind="k")

    def test_unframed_line_in_v2_rejected(self, tmp_path):
        """A raw (unframed) line inside a v2 journal fails verification."""
        from repro.core.storage import append_events_jsonl, load_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(self.events(1), path, kind="k")
        with path.open("a") as fh:
            fh.write("[1, 2, 3]\n")
        with pytest.raises(ExperimentError, match="corrupt"):
            load_events_jsonl(path, kind="k")
        loaded = load_events_jsonl(path, kind="k", tolerate_partial=True)
        assert loaded == self.events(1)
        assert loaded.report.records_quarantined == 1
