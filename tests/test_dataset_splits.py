"""Tests for train/test splits, disjoint ICL sets, curated neighbourhoods."""

import numpy as np
import pytest

from repro.dataset.splits import (
    curated_neighborhood,
    disjoint_example_sets,
    train_test_split,
)
from repro.errors import DatasetError


class TestTrainTestSplit:
    def test_partition(self, sm_dataset):
        train, test = train_test_split(sm_dataset, 0.8, seed=1)
        assert len(train) + len(test) == len(sm_dataset)
        assert set(train.indices) & set(test.indices) == set()

    def test_fraction_respected(self, sm_dataset):
        train, test = train_test_split(sm_dataset, 0.8, seed=1)
        assert len(train) == round(0.8 * len(sm_dataset))

    def test_deterministic(self, sm_dataset):
        t1, _ = train_test_split(sm_dataset, 0.5, seed=7)
        t2, _ = train_test_split(sm_dataset, 0.5, seed=7)
        np.testing.assert_array_equal(t1.indices, t2.indices)

    def test_seed_changes_split(self, sm_dataset):
        t1, _ = train_test_split(sm_dataset, 0.5, seed=1)
        t2, _ = train_test_split(sm_dataset, 0.5, seed=2)
        assert not np.array_equal(t1.indices, t2.indices)

    def test_bad_fraction(self, sm_dataset):
        with pytest.raises(DatasetError):
            train_test_split(sm_dataset, 1.0)

    def test_tiny_dataset(self):
        from repro.dataset.generate import generate_dataset

        ds = generate_dataset("SM", indices=[0])
        with pytest.raises(DatasetError):
            train_test_split(ds, 0.5)


class TestDisjointSets:
    def test_pairwise_disjoint(self, sm_dataset):
        sets, queries = disjoint_example_sets(sm_dataset, 5, 20, seed=3)
        all_rows = np.concatenate(sets + [queries])
        assert len(np.unique(all_rows)) == len(all_rows)

    def test_sizes(self, sm_dataset):
        sets, queries = disjoint_example_sets(
            sm_dataset, 3, 7, seed=0, n_queries=4
        )
        assert len(sets) == 3 and all(len(s) == 7 for s in sets)
        assert queries.shape == (4,)

    def test_deterministic(self, sm_dataset):
        a, qa = disjoint_example_sets(sm_dataset, 2, 5, seed=9)
        b, qb = disjoint_example_sets(sm_dataset, 2, 5, seed=9)
        np.testing.assert_array_equal(qa, qb)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_too_large_raises(self, sm_dataset):
        with pytest.raises(DatasetError):
            disjoint_example_sets(sm_dataset, 2, len(sm_dataset))

    def test_invalid_args(self, sm_dataset):
        with pytest.raises(DatasetError):
            disjoint_example_sets(sm_dataset, 0, 5)
        with pytest.raises(DatasetError):
            disjoint_example_sets(sm_dataset, 1, 5, n_queries=0)


class TestCuratedNeighborhood:
    def test_query_not_in_examples(self, sm_dataset):
        rows, query = curated_neighborhood(sm_dataset, 20, seed=4)
        assert query not in rows.tolist()
        assert rows.shape == (20,)

    def test_examples_are_nearest(self, sm_dataset):
        """Every selected example must be at least as close (weighted) as
        every non-selected row."""
        rows, query = curated_neighborhood(sm_dataset, 10, seed=5)
        dist = sm_dataset.space.pairwise_weighted_distances(
            int(sm_dataset.indices[query]), sm_dataset.indices
        )
        dist[query] = np.inf
        selected_max = dist[rows].max()
        unselected = np.setdiff1d(
            np.arange(len(sm_dataset)), np.append(rows, query)
        )
        assert selected_max <= dist[unselected].min() + 1e-12

    def test_minimal_distance_vs_random(self, sm_dataset, rng):
        """Curated sets have far smaller mean edit distance than random."""
        rows, query = curated_neighborhood(sm_dataset, 20, seed=6)
        qidx = int(sm_dataset.indices[query])
        d_curated = sm_dataset.space.pairwise_weighted_distances(
            qidx, sm_dataset.indices[rows]
        ).mean()
        random_rows = rng.choice(len(sm_dataset), 20, replace=False)
        d_random = sm_dataset.space.pairwise_weighted_distances(
            qidx, sm_dataset.indices[random_rows]
        ).mean()
        assert d_curated < d_random / 2

    def test_deterministic(self, sm_dataset):
        a = curated_neighborhood(sm_dataset, 5, seed=1)
        b = curated_neighborhood(sm_dataset, 5, seed=1)
        np.testing.assert_array_equal(a[0], b[0])
        assert a[1] == b[1]

    def test_too_large_raises(self, sm_dataset):
        with pytest.raises(DatasetError):
            curated_neighborhood(sm_dataset, len(sm_dataset))
