"""Tests for the syr2k task and space definition."""

import pytest

from repro.dataset.syr2k import (
    SIZE_DIMENSIONS,
    SIZE_NAMES,
    TILE_SIZES,
    Syr2kTask,
    syr2k_space,
)
from repro.errors import DatasetError


class TestSpace:
    def test_cardinality_matches_paper(self):
        """The paper evaluates all 10,648 unique configurations."""
        assert syr2k_space().size == 10648

    def test_parameter_names_match_figure1(self):
        names = syr2k_space().parameter_names
        assert names == (
            "first_array_packed",
            "second_array_packed",
            "interchange_first_two_loops",
            "outer_loop_tiling_factor",
            "middle_loop_tiling_factor",
            "inner_loop_tiling_factor",
        )

    def test_eleven_tile_choices(self):
        assert len(TILE_SIZES) == 11
        # Figure 1's example prompt shows these concrete sizes.
        for v in (64, 80, 100, 128):
            assert v in TILE_SIZES

    def test_tiles_ascending(self):
        assert list(TILE_SIZES) == sorted(TILE_SIZES)


class TestTask:
    def test_sm_dimensions_match_paper(self):
        """Figure 1: For size 'SM', M=130 and N=160."""
        task = Syr2kTask("SM")
        assert task.m == 130 and task.n == 160

    def test_all_sizes_defined(self):
        for size in SIZE_NAMES:
            assert size in SIZE_DIMENSIONS
            Syr2kTask(size)  # constructs without error

    def test_sizes_sorted_smallest_to_largest(self):
        areas = [
            SIZE_DIMENSIONS[s][0] * SIZE_DIMENSIONS[s][1] for s in SIZE_NAMES
        ]
        assert areas == sorted(areas)

    def test_unknown_size_rejected(self):
        with pytest.raises(DatasetError):
            Syr2kTask("XXL")

    def test_flops_monotone_in_size(self):
        flops = [Syr2kTask(s).flops for s in SIZE_NAMES]
        assert flops == sorted(flops)

    def test_str(self):
        assert "syr2k[SM]" in str(Syr2kTask("SM"))

    def test_space_shared(self):
        assert Syr2kTask("SM").space().size == Syr2kTask("XL").space().size
