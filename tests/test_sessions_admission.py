"""Tests for admission control: token buckets, quotas, shedding."""

import pytest

from repro.errors import SessionError
from repro.sessions import AdmissionController, TenantQuota, TokenBucket


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(1.0, 3, clock=FakeClock())
        assert bucket.tokens == 3.0
        assert bucket.try_take()
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 2, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 1 token at 2/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_burst_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 2, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 2.0

    def test_validation(self):
        with pytest.raises(SessionError):
            TokenBucket(0.0, 1)
        with pytest.raises(SessionError):
            TokenBucket(1.0, 0)


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(SessionError):
            TenantQuota(max_evaluations=-1)
        with pytest.raises(SessionError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(SessionError):
            TenantQuota(rate_per_s=0.0)

    def test_zero_quota_is_legal(self):
        """A zero lifetime quota is a valid way to block a tenant."""
        assert TenantQuota(max_evaluations=0).max_evaluations == 0


class TestAdmissionController:
    def test_admits_by_default(self):
        ctl = AdmissionController()
        decision = ctl.admit("a")
        assert decision.admitted
        assert ctl.inflight("a") == 1
        assert ctl.admitted("a") == 1

    def test_lifetime_quota_is_permanent(self):
        ctl = AdmissionController(
            {"a": TenantQuota(max_evaluations=2)}, clock=FakeClock()
        )
        assert ctl.admit("a") and ctl.admit("a")
        ctl.complete("a")
        ctl.complete("a")
        denied = ctl.admit("a")
        assert not denied.admitted
        assert denied.reason == "quota"
        assert not denied.retryable

    def test_zero_quota_tenant_denied_immediately(self):
        ctl = AdmissionController({"a": TenantQuota(max_evaluations=0)})
        denied = ctl.admit("a")
        assert not denied.admitted
        assert denied.reason == "quota"
        assert not denied.retryable
        # other tenants are unaffected
        assert ctl.admit("b").admitted

    def test_concurrency_cap_is_retryable(self):
        ctl = AdmissionController({"a": TenantQuota(max_concurrent=1)})
        assert ctl.admit("a").admitted
        denied = ctl.admit("a")
        assert denied.reason == "concurrency"
        assert denied.retryable
        ctl.complete("a")
        assert ctl.admit("a").admitted

    def test_saturation_sheds(self):
        ctl = AdmissionController(max_inflight=2)
        assert ctl.admit("a").admitted
        assert ctl.admit("b").admitted
        denied = ctl.admit("c")
        assert denied.reason == "saturated"
        assert denied.retryable
        assert ctl.n_shed == 1

    def test_rate_limit_checked_last(self):
        """A saturated denial must not consume the tenant's token."""
        clock = FakeClock()
        ctl = AdmissionController(
            {"a": TenantQuota(rate_per_s=1.0, burst=1.0)},
            max_inflight=1,
            clock=clock,
        )
        assert ctl.admit("b").admitted  # fills the global ceiling
        assert ctl.admit("a").reason == "saturated"
        ctl.complete("b")
        assert ctl.admit("a").admitted  # token still there
        ctl.complete("a")
        assert ctl.admit("a").reason == "rate"

    def test_refund_returns_quota_and_concurrency(self):
        ctl = AdmissionController(
            {"a": TenantQuota(max_evaluations=1, max_concurrent=1)}
        )
        assert ctl.admit("a").admitted
        ctl.refund("a")
        assert ctl.admitted("a") == 0
        assert ctl.inflight("a") == 0
        assert ctl.admit("a").admitted

    def test_unbalanced_complete_raises(self):
        ctl = AdmissionController()
        with pytest.raises(SessionError):
            ctl.complete("nobody")

    def test_snapshot(self):
        ctl = AdmissionController(max_inflight=4)
        ctl.admit("a")
        ctl.admit("a")
        ctl.complete("a")
        snap = ctl.snapshot()
        assert snap["total_inflight"] == 1
        assert snap["admitted"] == {"a": 2}
        assert snap["max_inflight"] == 4
