"""Tests for the generative (bucket-classification) surrogate mode."""

import numpy as np
import pytest

from repro.core.generative import GenerativeSurrogate, bucketize
from repro.dataset.splits import disjoint_example_sets
from repro.errors import AnalysisError


class TestBucketize:
    def test_labels_in_range(self, rng):
        values = rng.random(100) + 0.1
        labels, edges = bucketize(values, 5)
        assert labels.min() >= 0 and labels.max() <= 4
        assert edges.shape == (4,)

    def test_quantiles_balanced(self, rng):
        values = rng.random(1000)
        labels, _ = bucketize(values, 4)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() > 180  # roughly balanced quartiles

    def test_monotone_in_value(self, rng):
        values = np.sort(rng.random(50))
        labels, _ = bucketize(values, 5)
        assert (np.diff(labels) >= 0).all()

    def test_reuse_edges(self):
        labels, edges = bucketize([1.0, 2.0, 3.0, 4.0], 2)
        new_labels, _ = bucketize([1.5, 3.5], 2, edges=edges)
        assert new_labels.tolist() == [0, 1]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bucketize([], 3)
        with pytest.raises(AnalysisError):
            bucketize([1.0], 1)


class TestGenerativeSurrogate:
    @pytest.fixture(scope="class")
    def setup(self, sm_dataset, sm_task):
        sets, queries = disjoint_example_sets(
            sm_dataset, 1, 20, seed=4, n_queries=8
        )
        return GenerativeSurrogate(sm_task, n_buckets=5), sets[0], queries

    def test_predict_returns_bucket(self, setup, sm_dataset):
        surrogate, rows, queries = setup
        labels, _ = bucketize(sm_dataset.runtimes[rows], 5)
        examples = [
            (sm_dataset.config(int(r)), int(l))
            for r, l in zip(rows, labels)
        ]
        pred = surrogate.predict(
            examples, sm_dataset.config(int(queries[0])), seed=1
        )
        assert pred.parsed
        assert 0 <= pred.bucket < 5
        assert pred.icl_labels and all(l.isdigit() for l in pred.icl_labels)

    def test_deterministic(self, setup, sm_dataset):
        surrogate, rows, queries = setup
        labels, _ = bucketize(sm_dataset.runtimes[rows], 5)
        examples = [
            (sm_dataset.config(int(r)), int(l))
            for r, l in zip(rows, labels)
        ]
        a = surrogate.predict(examples, sm_dataset.config(int(queries[0])), 3)
        b = surrogate.predict(examples, sm_dataset.config(int(queries[0])), 3)
        assert a.generated_text == b.generated_text

    def test_evaluate_report(self, setup, sm_dataset):
        surrogate, rows, queries = setup
        out = surrogate.evaluate(sm_dataset, rows, queries, seed=1)
        assert out["n_queries"] == len(queries)
        assert 0.0 <= out["accuracy"] <= 1.0
        assert out["parse_rate"] > 0.8
        assert out["chance"] == pytest.approx(0.2)

    def test_evaluate_validates(self, setup, sm_dataset):
        surrogate, rows, _ = setup
        with pytest.raises(AnalysisError):
            surrogate.evaluate(sm_dataset, rows, [])

    def test_bucket_count_validated(self, sm_task):
        with pytest.raises(AnalysisError):
            GenerativeSurrogate(sm_task, n_buckets=1)
