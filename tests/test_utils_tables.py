"""Tests for ASCII table rendering and float formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.tables import Table, format_float, render_table


class TestFormatFloat:
    def test_none_and_nan(self):
        assert format_float(None) == "-"
        assert format_float(float("nan")) == "-"

    def test_inf(self):
        assert format_float(float("inf")) == "inf"
        assert format_float(float("-inf")) == "-inf"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_plain(self):
        assert format_float(0.44) == "0.44"
        assert format_float(1.0) == "1"

    def test_small_uses_scientific(self):
        assert "e" in format_float(1e-7)

    def test_large_uses_scientific(self):
        assert "e" in format_float(4.4e9)

    def test_trailing_zeros_trimmed(self):
        assert format_float(0.5000) == "0.5"

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_never_raises(self, x):
        out = format_float(x)
        assert isinstance(out, str) and out


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["n", "R2"], title="demo")
        t.add_row([100, 0.44])
        t.add_row([500, 0.67])
        out = t.render()
        assert "demo" in out
        assert "0.44" in out and "500" in out

    def test_row_width_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_alignment(self):
        t = Table(["col"], title="")
        t.add_row([1])
        t.add_row([1000])
        lines = t.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded equal

    def test_none_cell(self):
        t = Table(["x"])
        t.add_row([None])
        assert "-" in t.render()


class TestRenderTable:
    def test_header_separator(self):
        out = render_table(["a"], [["1"]])
        lines = out.splitlines()
        assert set(lines[1]) <= {"-", "+"}

    def test_title_underline(self):
        out = render_table(["a"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"
        assert out.splitlines()[1].startswith("=")
