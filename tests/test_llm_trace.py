"""Tests for generation traces."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.llm.trace import GenerationStep, GenerationTrace


def _step(ids, chosen):
    return GenerationStep(
        candidate_ids=np.asarray(ids),
        logits=np.zeros(len(ids)),
        chosen_position=chosen,
    )


class TestGenerationStep:
    def test_chosen_id(self):
        s = _step([5, 6, 7], 1)
        assert s.chosen_id == 6
        assert s.n_candidates == 3

    def test_out_of_range_chosen(self):
        with pytest.raises(GenerationError):
            _step([5], 1)

    def test_shape_mismatch(self):
        with pytest.raises(GenerationError):
            GenerationStep(np.array([1, 2]), np.zeros(3), 0)


class TestGenerationTrace:
    def _trace_for(self, tokenizer, token_strings):
        vocab = tokenizer.vocab
        trace = GenerationTrace(prompt_ids=np.array([1, 2, 3]), seed=7)
        for s in token_strings:
            tid = vocab.id_of(s)
            trace.steps.append(_step([tid, vocab.specials.eot], 0))
        return trace

    def test_generated_text(self, tokenizer):
        trace = self._trace_for(tokenizer, ["0", ".", "002"])
        assert trace.generated_text(tokenizer.vocab) == "0.002"

    def test_specials_skipped_in_text(self, tokenizer):
        vocab = tokenizer.vocab
        trace = GenerationTrace(prompt_ids=np.array([1]))
        trace.steps.append(_step([vocab.id_of("0")], 0))
        trace.steps.append(_step([vocab.specials.eot], 0))
        assert trace.generated_text(vocab) == "0"

    def test_value_region_starts_at_first_digit(self, tokenizer):
        trace = self._trace_for(tokenizer, ["Performance", ":", "0", "."])
        region = trace.value_region(tokenizer.vocab)
        assert len(region) == 2
        assert region[0].chosen_token == "0"

    def test_value_region_empty_without_digits(self, tokenizer):
        trace = self._trace_for(tokenizer, ["The", " answer"])
        assert trace.value_region(tokenizer.vocab) == []

    def test_step_candidates_preserve_logits(self, tokenizer):
        vocab = tokenizer.vocab
        trace = GenerationTrace(prompt_ids=np.array([1]))
        step = GenerationStep(
            np.array([vocab.id_of("0"), vocab.id_of("1")]),
            np.array([2.0, 1.0]),
            0,
        )
        trace.steps.append(step)
        sc = trace.step_candidates(vocab)[0]
        assert sc.tokens == ("0", "1")
        np.testing.assert_array_equal(sc.logits, [2.0, 1.0])

    def test_len_and_generated_ids(self, tokenizer):
        trace = self._trace_for(tokenizer, ["0", "."])
        assert len(trace) == 2
        assert len(trace.generated_ids) == 2
