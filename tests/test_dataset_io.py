"""Tests for CSV persistence."""

import numpy as np
import pytest

from repro.dataset.generate import generate_dataset
from repro.dataset.io import load_dataset_csv, save_dataset_csv
from repro.errors import DatasetError


@pytest.fixture()
def small_ds():
    return generate_dataset("SM", indices=range(25))


class TestRoundtrip:
    def test_exact_roundtrip(self, small_ds, tmp_path, space):
        path = tmp_path / "ds.csv"
        save_dataset_csv(small_ds, path)
        loaded = load_dataset_csv(path, space)
        assert loaded.size == small_ds.size
        np.testing.assert_array_equal(loaded.indices, small_ds.indices)
        np.testing.assert_array_equal(loaded.runtimes, small_ds.runtimes)

    def test_header_layout(self, small_ds, tmp_path):
        path = tmp_path / "ds.csv"
        save_dataset_csv(small_ds, path)
        header = path.read_text().splitlines()[0]
        assert header.startswith("size,")
        assert header.endswith(",objective")


class TestLoadErrors:
    def test_missing_column(self, tmp_path, space):
        path = tmp_path / "bad.csv"
        path.write_text("size,objective\nSM,0.5\n")
        with pytest.raises(DatasetError, match="missing columns"):
            load_dataset_csv(path, space)

    def test_empty_file(self, tmp_path, space, small_ds):
        path = tmp_path / "empty.csv"
        save_dataset_csv(small_ds.subset([]), path) if False else None
        # write header only
        header = (
            "size," + ",".join(space.parameter_names) + ",objective\n"
        )
        path.write_text(header)
        with pytest.raises(DatasetError, match="no data rows"):
            load_dataset_csv(path, space)

    def test_mixed_sizes(self, tmp_path, space, small_ds):
        path = tmp_path / "mixed.csv"
        save_dataset_csv(small_ds, path)
        lines = path.read_text().splitlines()
        lines.append(lines[1].replace("SM", "XL", 1))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetError, match="mixes sizes"):
            load_dataset_csv(path, space)

    def test_bad_objective(self, tmp_path, space, small_ds):
        path = tmp_path / "bad_obj.csv"
        save_dataset_csv(small_ds, path)
        text = path.read_text().splitlines()
        parts = text[1].split(",")
        parts[-1] = "not-a-number"
        text[1] = ",".join(parts)
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(DatasetError, match="unparsable objective"):
            load_dataset_csv(path, space)

    def test_out_of_domain_value(self, tmp_path, space, small_ds):
        path = tmp_path / "bad_val.csv"
        save_dataset_csv(small_ds, path)
        text = path.read_text().splitlines()
        parts = text[1].split(",")
        parts[4] = "999"  # outer tile not in domain
        text[1] = ",".join(parts)
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(DatasetError, match="not in the domain"):
            load_dataset_csv(path, space)
