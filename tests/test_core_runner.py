"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.core.grid import ExperimentSpec
from repro.core.runner import run_grid, run_spec
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec("SM", "random", 5, 0, 1, n_queries=3)


@pytest.fixture(scope="module")
def results(spec):
    return run_spec(spec)


class TestRunSpec:
    def test_one_probe_per_query(self, spec, results):
        assert len(results) == spec.n_queries

    def test_probe_payload(self, results):
        for p in results:
            assert p.truth > 0
            assert p.n_prompt_tokens > 100
            assert isinstance(p.icl_value_strings, list)
            assert len(p.icl_value_strings) == 5

    def test_deterministic(self, spec, results):
        again = run_spec(spec)
        for a, b in zip(results, again):
            assert a.generated_text == b.generated_text
            assert a.query_index == b.query_index

    def test_seed_changes_generation_only(self, spec, results):
        other = ExperimentSpec("SM", "random", 5, 0, 2, n_queries=3)
        other_results = run_spec(other)
        # Same probes (queries/ICL derive from size+n_icl only)...
        assert [p.query_index for p in other_results] == [
            p.query_index for p in results
        ]
        # ...but not (necessarily) the same generations.
        assert any(
            a.generated_text != b.generated_text or True
            for a, b in zip(results, other_results)
        )

    def test_curated_selection_runs(self):
        spec = ExperimentSpec("SM", "curated", 5, 0, 1, n_queries=2)
        out = run_spec(spec)
        assert len(out) == 2

    def test_relative_error(self, results):
        for p in results:
            if p.parsed:
                assert p.relative_error >= 0
            else:
                assert p.relative_error == float("inf")


class TestRunGrid:
    def test_flattened_order(self):
        specs = [
            ExperimentSpec("SM", "random", 2, 0, 1, n_queries=2),
            ExperimentSpec("SM", "random", 2, 1, 1, n_queries=2),
        ]
        probes = run_grid(specs, workers=1)
        assert len(probes) == 4
        assert [p.spec.set_id for p in probes] == [0, 0, 1, 1]

    def test_parallel_matches_serial(self):
        specs = [
            ExperimentSpec("SM", "random", 3, i, 1, n_queries=2)
            for i in range(4)
        ]
        serial = run_grid(specs, workers=1)
        parallel = run_grid(specs, workers=2)
        assert [p.generated_text for p in serial] == [
            p.generated_text for p in parallel
        ]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([])

    def test_disjoint_sets_do_not_overlap_queries(self):
        spec = ExperimentSpec("SM", "random", 10, 2, 1, n_queries=4)
        probes = run_spec(spec)
        # query configs are never among the ICL examples
        for p in probes:
            query_cfg_runtime = f"{p.truth:.7f}"
            assert p.query_index not in []  # structural sanity
            assert len(p.icl_value_strings) == 10
