"""Driver determinism pins: same seed, same traffic — any loop, any target.

The acceptance bar for ``repro.loadgen``: a spec's schedule and workload
are pure functions of the seed, so the *deterministic payload* of an SLO
report (spec echo, digests, outcome counts, goodput) is bit-identical
across repeated runs, across open vs closed loop, and across shard
counts.  Wall-clock fields (latency quantiles, achieved rps) are the
only thing allowed to differ.

The multi-shard pin spawns worker processes and is marked ``slow``; the
CI loadtest-smoke job runs this file with ``-m "not chaos"`` to include
it, while tier-1 keeps the fast in-process pins only.
"""

from __future__ import annotations

import json

import pytest

from repro.loadgen import DEFAULT_SLO, LoadDriver, LoadSpec, WorkloadMix
from repro.serve import PredictionService, make_service

MIX = WorkloadMix(n_unique=4, n_tenants=2, seed_lanes=2)

SPEC = LoadSpec(
    arrival="poisson",
    rps=60.0,
    duration_s=1.0,
    seed=7,
    mix=MIX,
    warmup=False,
)


def _canon(report) -> str:
    return json.dumps(report.deterministic_payload(), sort_keys=True)


def test_schedule_and_workload_cached_and_pure():
    d1, d2 = LoadDriver(SPEC), LoadDriver(SPEC)
    assert d1.schedule() is d1.schedule()
    assert d1.schedule().tobytes() == d2.schedule().tobytes()
    assert [i.request.seed for i in d1.workload()] == [
        i.request.seed for i in d2.workload()
    ]


def test_open_loop_deterministic_across_runs():
    with PredictionService() as service:
        a = LoadDriver(SPEC).run(service)
    with PredictionService() as service:
        b = LoadDriver(SPEC).run(service)
    assert _canon(a) == _canon(b)
    assert a.offered == len(LoadDriver(SPEC).schedule())
    assert a.ok == a.offered
    assert a.check(DEFAULT_SLO) == []


def test_closed_loop_matches_open_loop_payload():
    closed = LoadSpec(
        arrival=SPEC.arrival, rps=SPEC.rps, duration_s=SPEC.duration_s,
        seed=SPEC.seed, mode="closed", concurrency=4, mix=MIX, warmup=False,
    )
    with PredictionService() as service:
        a = LoadDriver(SPEC).run(service)
    with PredictionService() as service:
        b = LoadDriver(closed).run(service)
    pa, pb = a.deterministic_payload(), b.deterministic_payload()
    assert pa.pop("mode") == "open"
    assert pb.pop("mode") == "closed"
    assert json.dumps(pa, sort_keys=True) == json.dumps(pb, sort_keys=True)


def test_per_tenant_counts_sum_to_totals():
    with PredictionService() as service:
        report = LoadDriver(SPEC).run(service)
    assert sum(t.offered for t in report.tenants.values()) == report.offered
    assert sum(t.ok for t in report.tenants.values()) == report.ok


def test_request_timeouts_are_counted_not_raised():
    spec = LoadSpec(
        arrival="constant", rps=20.0, duration_s=0.25, seed=3, mode="closed",
        concurrency=2,
        mix=WorkloadMix(
            n_unique=2, n_tenants=1, seed_lanes=1, timeout_s=1e-6
        ),
        warmup=False,
    )
    with PredictionService() as service:
        report = LoadDriver(spec).run(service)
    assert report.offered == 5
    assert report.timeouts == 5
    assert report.ok == 0
    names = [v.name for v in report.check(DEFAULT_SLO)]
    assert "error_rate" in names and "goodput" in names


def test_warmup_leaves_measured_counts_unchanged():
    warm = LoadSpec(
        arrival=SPEC.arrival, rps=SPEC.rps, duration_s=SPEC.duration_s,
        seed=SPEC.seed, mix=MIX, warmup=True,
    )
    with PredictionService() as service:
        a = LoadDriver(warm).run(service)
    with PredictionService() as service:
        b = LoadDriver(SPEC).run(service)
    assert _canon(a) == _canon(b)


def test_sessions_ride_along_summary():
    report_like = None
    with PredictionService() as service:
        report_like = LoadDriver(SPEC).run(service).with_sessions(
            {"n_sessions": 2, "completed": 8, "fairness_jain": 0.99}
        )
    assert report_like.sessions["completed"] == 8
    assert "campaigns" in report_like.render()


@pytest.mark.slow
@pytest.mark.parametrize("shards", [1, 4])
def test_payload_invariant_across_shard_counts(shards):
    """Routing traffic across worker processes may move *where* requests
    are served, never what was offered or how outcomes count."""
    with PredictionService() as service:
        baseline = LoadDriver(SPEC).run(service)
    with make_service(shards=shards) as service:
        sharded = LoadDriver(
            LoadSpec(
                arrival=SPEC.arrival, rps=SPEC.rps,
                duration_s=SPEC.duration_s, seed=SPEC.seed, mix=MIX,
            )
        ).run(service)
    base = baseline.deterministic_payload()
    shard = sharded.deterministic_payload()
    assert json.dumps(base, sort_keys=True) == json.dumps(shard, sort_keys=True)
