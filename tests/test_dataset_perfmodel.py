"""Tests for the analytical performance model."""

import numpy as np
import pytest

from repro.dataset.perfmodel import PerfModelParams, Syr2kPerformanceModel
from repro.dataset.syr2k import Syr2kTask
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def sm_model():
    return Syr2kPerformanceModel(Syr2kTask("SM"))


@pytest.fixture(scope="module")
def xl_model():
    return Syr2kPerformanceModel(Syr2kTask("XL"))


class TestMagnitudes:
    def test_sm_all_subsecond(self, sm_model):
        """Section IV-B: all SM objective values are less than one."""
        r = sm_model.runtimes()
        assert (r < 1.0).all() and (r > 0).all()

    def test_xl_single_digit_seconds(self, xl_model):
        """Table II: whole-number magnitudes almost exclusively < 10 s,
        with nonzero integer parts (first-token variation exists)."""
        r = xl_model.runtimes()
        assert (r >= 1.0).all() and (r < 10.0).all()

    def test_sm_median_matches_paper_example_scale(self, sm_model):
        """Figure 1's example runtime is 0.0022155 — the dataset median
        should be on that order."""
        med = float(np.median(sm_model.runtimes()))
        assert 0.0005 < med < 0.01


class TestDeterminism:
    def test_repeatable(self, sm_model):
        a = sm_model.runtimes([1, 2, 3])
        b = sm_model.runtimes([1, 2, 3])
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_table(self):
        a = Syr2kPerformanceModel(Syr2kTask("SM"), seed=99).runtimes([5, 6])
        b = Syr2kPerformanceModel(Syr2kTask("SM"), seed=99).runtimes([5, 6])
        np.testing.assert_array_equal(a, b)

    def test_different_seed_differs(self):
        a = Syr2kPerformanceModel(Syr2kTask("SM"), seed=1).runtimes([5])
        b = Syr2kPerformanceModel(Syr2kTask("SM"), seed=2).runtimes([5])
        assert a[0] != b[0]

    def test_subset_consistent_with_full(self, sm_model):
        full = sm_model.runtimes()
        sub = sm_model.runtimes([10, 20, 30])
        np.testing.assert_array_equal(sub, full[[10, 20, 30]])


class TestPhysics:
    def test_runtime_scalar_api(self, sm_model):
        cfg = sm_model.space.from_index(123)
        assert sm_model.runtime(cfg) == pytest.approx(
            float(sm_model.runtimes([123])[0])
        )

    def test_tiny_tiles_slower_than_moderate(self, sm_model):
        """Loop-control overhead penalizes 4x4x4 tiling."""
        space = sm_model.space
        base = {
            "first_array_packed": False,
            "second_array_packed": False,
            "interchange_first_two_loops": False,
        }
        tiny = space.to_index(
            dict(
                base,
                outer_loop_tiling_factor=4,
                middle_loop_tiling_factor=4,
                inner_loop_tiling_factor=4,
            )
        )
        moderate = space.to_index(
            dict(
                base,
                outer_loop_tiling_factor=64,
                middle_loop_tiling_factor=64,
                inner_loop_tiling_factor=64,
            )
        )
        nl = sm_model.noiseless_runtimes([tiny, moderate])
        assert nl[0] > nl[1]

    def test_packing_helps_more_on_xl_than_sm(self):
        """Packing relieves cache pressure only when the working set is
        large; for SM it is pure overhead."""

        def pack_effect(size):
            """Geometric-mean packed/unpacked ratio over the whole space
            (the per-config rugged hash noise averages out)."""
            model = Syr2kPerformanceModel(Syr2kTask(size))
            nl = model.noiseless_runtimes()
            packed = model.space.ordinal_matrix()[:, 0] == 1
            return float(
                np.exp(np.log(nl[packed]).mean() - np.log(nl[~packed]).mean())
            )

        assert pack_effect("XL") < pack_effect("SM")

    def test_xl_smoother_than_sm(self):
        """The noise constants make XL more learnable (Table I)."""
        p = PerfModelParams()
        assert p.sigma_rugged["XL"] < p.sigma_rugged["SM"]
        assert p.sigma_noise["XL"] < p.sigma_noise["SM"]


class TestMeasure:
    def test_rep_zero_is_dataset(self, sm_model):
        np.testing.assert_array_equal(
            sm_model.measure([1, 2], rep=0), sm_model.runtimes([1, 2])
        )

    def test_reps_differ(self, sm_model):
        a = sm_model.measure([1, 2], rep=1)
        b = sm_model.measure([1, 2], rep=2)
        assert not np.array_equal(a, b)

    def test_rep_deterministic(self, sm_model):
        np.testing.assert_array_equal(
            sm_model.measure([3], rep=5), sm_model.measure([3], rep=5)
        )

    def test_noise_centered_on_noiseless(self, sm_model):
        """Averaging many measurement reps converges near the noiseless
        model value (lognormal, small sigma)."""
        idx = [100]
        reps = np.array(
            [float(sm_model.measure(idx, rep=r)[0]) for r in range(1, 200)]
        )
        noiseless = float(sm_model.noiseless_runtimes(idx)[0])
        assert abs(np.log(reps).mean() - np.log(noiseless)) < 0.02


class TestParams:
    def test_unknown_size_constants(self):
        with pytest.raises(DatasetError):
            PerfModelParams().for_size("nope")

    def test_with_overrides(self):
        p = PerfModelParams().with_overrides(peak_rate=1.0)
        assert p.peak_rate == 1.0
        assert PerfModelParams().peak_rate != 1.0
