"""Tests for the from-scratch Gaussian process."""

import numpy as np
import pytest

from repro.errors import ModelNotFittedError, TuningError
from repro.tuning.gp import GaussianProcess, GPParams


class TestParams:
    def test_invalid(self):
        with pytest.raises(TuningError):
            GPParams(lengthscale=0)
        with pytest.raises(TuningError):
            GPParams(signal_variance=0)
        with pytest.raises(TuningError):
            GPParams(noise_variance=-1)


class TestFitPredict:
    def test_interpolates_training_points(self, rng):
        x = rng.random((20, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        gp = GaussianProcess(GPParams(noise_variance=1e-8)).fit(x, y)
        pred = gp.predict(x)
        np.testing.assert_allclose(pred, y, atol=1e-4)

    def test_std_zero_at_training_points(self, rng):
        x = rng.random((10, 1))
        y = rng.random(10)
        gp = GaussianProcess(GPParams(noise_variance=1e-10)).fit(x, y)
        _, std = gp.predict(x, return_std=True)
        assert (std < 1e-3).all()

    def test_std_grows_away_from_data(self, rng):
        x = rng.random((10, 1))
        y = rng.random(10)
        gp = GaussianProcess(GPParams(lengthscale=0.2)).fit(x, y)
        _, near = gp.predict(x[:1] + 0.01, return_std=True)
        _, far = gp.predict(np.array([[10.0]]), return_std=True)
        assert far[0] > near[0]

    def test_reverts_to_mean_far_away(self, rng):
        x = rng.random((15, 1))
        y = 5.0 + rng.random(15)
        gp = GaussianProcess(GPParams(lengthscale=0.1)).fit(x, y)
        pred = gp.predict(np.array([[100.0]]))
        assert pred[0] == pytest.approx(y.mean(), abs=1e-6)

    def test_smooth_interpolation(self):
        """GP prediction between two close points lies between them."""
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        gp = GaussianProcess(GPParams(lengthscale=1.0, noise_variance=1e-8)).fit(x, y)
        mid = gp.predict(np.array([[0.5]]))[0]
        assert 0.2 < mid < 0.8

    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            GaussianProcess().predict(np.zeros((1, 1)))
        with pytest.raises(ModelNotFittedError):
            GaussianProcess().log_marginal_likelihood()

    def test_shape_validation(self):
        with pytest.raises(TuningError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_log_marginal_likelihood_finite(self, rng):
        x = rng.random((12, 2))
        y = rng.random(12)
        gp = GaussianProcess(GPParams(noise_variance=0.01)).fit(x, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_good_lengthscale_higher_evidence(self, rng):
        """A wildly mis-specified lengthscale yields lower evidence."""
        x = np.linspace(0, 1, 25)[:, None]
        y = np.sin(6 * x[:, 0])
        good = GaussianProcess(GPParams(lengthscale=0.3, noise_variance=0.01)).fit(x, y)
        bad = GaussianProcess(
            GPParams(lengthscale=1e-4, noise_variance=0.01)
        ).fit(x, y)
        assert good.log_marginal_likelihood() > bad.log_marginal_likelihood()
