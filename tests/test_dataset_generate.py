"""Tests for dataset generation and the PerformanceDataset container."""

import numpy as np
import pytest

from repro.dataset.generate import PerformanceDataset, generate_dataset
from repro.errors import DatasetError


class TestGenerate:
    def test_full_table(self, sm_dataset):
        assert len(sm_dataset) == 10648
        assert sm_dataset.size == "SM"

    def test_accepts_task_or_string(self, sm_task):
        a = generate_dataset("SM", indices=[0, 1])
        b = generate_dataset(sm_task, indices=[0, 1])
        np.testing.assert_array_equal(a.runtimes, b.runtimes)

    def test_subset_generation(self):
        ds = generate_dataset("SM", indices=[5, 10, 20])
        assert len(ds) == 3
        assert ds.indices.tolist() == [5, 10, 20]

    def test_deterministic(self):
        a = generate_dataset("XL", indices=range(50))
        b = generate_dataset("XL", indices=range(50))
        np.testing.assert_array_equal(a.runtimes, b.runtimes)


class TestContainer:
    def test_config_accessor(self, sm_dataset):
        cfg = sm_dataset.config(0)
        assert set(cfg) == set(sm_dataset.space.parameter_names)

    def test_iteration(self):
        ds = generate_dataset("SM", indices=[1, 2])
        rows = list(ds)
        assert len(rows) == 2
        cfg, rt = rows[0]
        assert isinstance(cfg, dict) and rt > 0

    def test_subset_rows(self, sm_dataset):
        sub = sm_dataset.subset([10, 20])
        assert len(sub) == 2
        assert sub.indices[0] == sm_dataset.indices[10]

    def test_row_of_index(self, sm_dataset):
        idx = int(sm_dataset.indices[42])
        assert sm_dataset.row_of_index(idx) == 42

    def test_row_of_missing_index(self):
        ds = generate_dataset("SM", indices=[1, 2])
        with pytest.raises(DatasetError):
            ds.row_of_index(9999)

    def test_best_row(self, sm_dataset):
        best = sm_dataset.best_row
        assert sm_dataset.runtimes[best] == sm_dataset.runtimes.min()
        assert sm_dataset.best_runtime == sm_dataset.runtimes.min()

    def test_ordinal_features_shape(self, sm_dataset):
        feats = sm_dataset.ordinal_features([0, 1, 2])
        assert feats.shape == (3, 6)

    def test_summary(self, sm_dataset):
        s = sm_dataset.summary()
        assert s["rows"] == 10648
        assert s["runtime_min"] <= s["runtime_median"] <= s["runtime_max"]


class TestValidation:
    def test_duplicate_rows_rejected(self, space):
        with pytest.raises(DatasetError, match="unique"):
            PerformanceDataset(space, "SM", [1, 1], [0.1, 0.2])

    def test_length_mismatch_rejected(self, space):
        with pytest.raises(DatasetError):
            PerformanceDataset(space, "SM", [1, 2], [0.1])

    def test_nonpositive_runtime_rejected(self, space):
        with pytest.raises(DatasetError, match="positive"):
            PerformanceDataset(space, "SM", [1], [0.0])

    def test_out_of_range_index_rejected(self, space):
        with pytest.raises(DatasetError):
            PerformanceDataset(space, "SM", [space.size], [0.1])

    def test_empty_best_row_raises(self, space):
        ds = PerformanceDataset(space, "SM", [], [])
        with pytest.raises(DatasetError):
            _ = ds.best_row
