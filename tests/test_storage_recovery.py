"""Exhaustive durability properties of the v2 storage format.

The contract (ISSUE 7 acceptance): for a v2 journal truncated at *every*
byte offset, and for *every* single-bit flip inside one record, a
tolerant load must yield either full recovery or a precise
:class:`RecoveryReport` — never an exception, never silently wrong data.
Strict mode may raise, but whatever it returns must be a verbatim prefix
of the true history.  These are plain exhaustive loops rather than
sampled property tests: the files are small enough to try every case.
"""

import json
import zlib

import pytest

from repro.core import quick_grid, run_grid
from repro.core.storage import (
    append_events_jsonl,
    load_events_jsonl,
    load_probes_jsonl,
    repair_artifact,
    save_probes_jsonl,
    verify_artifact,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def probes():
    return run_grid(
        quick_grid(
            sizes=("SM",), icl_counts=(3,), n_sets=1, seeds=(1,),
            n_queries=3,
        ),
        workers=1,
    )


EVENTS = [{"event": "eval", "step": i, "runtime": i / 3.0} for i in range(4)]


def write_events(path):
    append_events_jsonl(EVENTS, path, kind="recovery-test")
    return path.read_bytes()


class TestTruncationEveryOffset:
    def test_events_truncated_at_every_byte(self, tmp_path):
        """Cutting the journal anywhere yields a verbatim prefix and a
        report that accounts for whatever was cut mid-line."""
        path = tmp_path / "events.jsonl"
        blob = write_events(path)
        header_len = blob.index(b"\n") + 1
        # Byte offsets where a cut is indistinguishable from "fewer
        # appends": exactly at a line boundary.
        boundaries = {i + 1 for i, b in enumerate(blob) if b == 0x0A}
        for cut in range(len(blob) + 1):
            path.write_bytes(blob[:cut])
            loaded = load_events_jsonl(
                path, kind="recovery-test", tolerate_partial=True,
                quarantine=False,
            )
            assert list(loaded) == EVENTS[: len(loaded)], f"cut={cut}"
            rep = loaded.report
            if cut < header_len:
                # Header itself torn: nothing trustworthy, all bytes
                # accounted as dropped.
                assert loaded == []
                assert rep.bytes_dropped == cut, f"cut={cut}"
            elif cut in boundaries or cut + 1 in boundaries:
                # At a line boundary — or one byte short of one, which
                # drops only the trailing newline of a frame whose JSON
                # is complete and CRC-verified.  Either way no data was
                # lost.
                assert rep.clean, f"cut={cut}"
            else:
                # Mid-record cut: the partial line is reported.
                assert not rep.clean, f"cut={cut}"
                assert rep.records_quarantined == 1, f"cut={cut}"
                assert rep.bytes_dropped > 0, f"cut={cut}"
            assert len(loaded) + rep.records_quarantined <= len(EVENTS) + 1

    def test_events_truncated_strict_never_wrong(self, tmp_path):
        """Strict mode may raise on a torn file but must never return
        anything other than the verbatim full history."""
        path = tmp_path / "events.jsonl"
        blob = write_events(path)
        for cut in range(len(blob) + 1):
            path.write_bytes(blob[:cut])
            try:
                loaded = load_events_jsonl(path, kind="recovery-test")
            except ExperimentError:
                continue
            assert list(loaded) == EVENTS[: len(loaded)], f"cut={cut}"

    def test_probes_truncated_at_every_line(self, probes, tmp_path):
        """Probe snapshots: same property, per line (the probe file is
        too large for per-byte, and the framing is shared)."""
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        blob = path.read_bytes()
        offsets = [i + 1 for i, b in enumerate(blob) if b == 0x0A]
        for keep, boundary in enumerate(offsets):
            for cut in (boundary, boundary + 10):
                path.write_bytes(blob[: min(cut, len(blob))])
                loaded = load_probes_jsonl(
                    path, tolerate_partial=True, quarantine=False
                )
                n = min(keep, len(probes))
                got = min(len(loaded), n)
                assert [p.spec for p in loaded][:got] == [
                    p.spec for p in probes
                ][:got]
                assert len(loaded) <= len(probes)


class TestBitflipEveryByteOfOneRecord:
    def test_events_record_flip_always_detected(self, tmp_path):
        """Flip each bit position of every byte of record #1: the CRC
        must catch every flip; the journal truncates at the damage."""
        path = tmp_path / "events.jsonl"
        blob = write_events(path)
        lines = blob.split(b"\n")
        start = len(lines[0]) + 1 + len(lines[1]) + 1  # header + record 0
        end = start + len(lines[2]) + 1  # record 1 incl newline
        for pos in range(start, end):
            for bit in range(8):
                flipped = bytearray(blob)
                flipped[pos] ^= 1 << bit
                if bytes(flipped) == blob:
                    continue
                path.write_bytes(bytes(flipped))
                loaded = load_events_jsonl(
                    path, kind="recovery-test", tolerate_partial=True,
                    quarantine=False,
                )
                rep = loaded.report
                where = f"pos={pos} bit={bit}"
                # Never silently wrong: whatever loads is a verbatim
                # prefix that excludes the damaged record.
                assert list(loaded) == EVENTS[: len(loaded)], where
                assert len(loaded) <= 1, where
                assert not rep.clean, where
                assert rep.records_quarantined >= 1, where
                # Strict mode must refuse the file outright.
                with pytest.raises(ExperimentError):
                    load_events_jsonl(path, kind="recovery-test")

    def test_probes_record_flip_salvages_rest(self, probes, tmp_path):
        """Probe files salvage verified records *past* the flipped one
        (cell-completeness dedupe makes that safe); sample every byte,
        one bit each, of the middle record."""
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        blob = path.read_bytes()
        lines = blob.split(b"\n")
        start = len(lines[0]) + 1 + len(lines[1]) + 1
        end = start + len(lines[2]) + 1
        for pos in range(start, end, 7):  # stride: record is ~1KB
            flipped = bytearray(blob)
            flipped[pos] ^= 1 << (pos % 8)
            if bytes(flipped) == blob:
                continue
            path.write_bytes(bytes(flipped))
            loaded = load_probes_jsonl(
                path, tolerate_partial=True, quarantine=False
            )
            rep = loaded.report
            where = f"pos={pos}"
            assert len(loaded) == len(probes) - 1, where
            assert rep.records_quarantined == 1, where
            assert rep.records_salvaged_after_gap == len(probes) - 2, where
            specs = [p.spec for p in loaded]
            expect = [p.spec for p in probes]
            assert specs == expect[:1] + expect[2:], where

    def test_crc_catches_semantically_valid_tamper(self, tmp_path):
        """A record edited into *valid JSON with plausible content* still
        fails the checksum — corruption detection does not depend on the
        damage being syntactically visible."""
        path = tmp_path / "events.jsonl"
        write_events(path)
        lines = path.read_text().splitlines()
        frame = json.loads(lines[2])
        frame["rec"]["runtime"] = 99.0  # tampered value, crc untouched
        lines[2] = json.dumps(frame, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        loaded = load_events_jsonl(
            path, kind="recovery-test", tolerate_partial=True,
            quarantine=False,
        )
        assert list(loaded) == EVENTS[:1]
        assert loaded.report.records_quarantined >= 1


class TestRepairConvergence:
    def test_repair_then_verify_clean_for_any_single_flip(self, tmp_path):
        """fsck --repair after any one-byte flip leaves a file that
        verifies clean and holds exactly the undamaged prefix."""
        path = tmp_path / "events.jsonl"
        blob = write_events(path)
        header_len = blob.index(b"\n") + 1
        for pos in range(header_len, len(blob), 3):
            flipped = bytearray(blob)
            flipped[pos] ^= 0x10
            path.write_bytes(bytes(flipped))
            repair_artifact(path, kind="events", event_kind="recovery-test")
            report = verify_artifact(path, kind="events")
            assert report.clean, f"pos={pos}"
            loaded = load_events_jsonl(path, kind="recovery-test")
            assert list(loaded) == EVENTS[: len(loaded)], f"pos={pos}"

    def test_repair_is_idempotent(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(path)
        repair_artifact(path, kind="events", event_kind="recovery-test")
        first = path.read_bytes()
        repair_artifact(path, kind="events", event_kind="recovery-test")
        assert path.read_bytes() == first


class TestV1BackwardCompat:
    def test_v1_events_roundtrip_and_recovery(self, tmp_path):
        """Journals written before the CRC framing still load, tolerate
        torn tails, and report recovery the same way."""
        path = tmp_path / "v1.jsonl"
        with path.open("w") as fh:
            fh.write(
                '{"format": "repro-events", "kind": "recovery-test", '
                '"version": 1}\n'
            )
            for event in EVENTS:
                fh.write(json.dumps(event) + "\n")
        loaded = load_events_jsonl(path, kind="recovery-test")
        assert list(loaded) == EVENTS
        assert loaded.report.version == 1
        with path.open("a") as fh:
            fh.write('{"event": "eval", "st')  # torn tail
        partial = load_events_jsonl(
            path, kind="recovery-test", tolerate_partial=True,
            quarantine=False,
        )
        assert list(partial) == EVENTS
        assert partial.report.records_quarantined == 1

    def test_frame_crc_is_the_documented_construction(self, tmp_path):
        """Pin the on-disk frame layout: crc32 over the canonical JSON
        of {"rec", "seq"} with sorted keys and no whitespace."""
        path = tmp_path / "events.jsonl"
        append_events_jsonl([{"a": 1}], path, kind="k")
        frame = json.loads(path.read_text().splitlines()[1])
        payload = json.dumps(
            {"rec": frame["rec"], "seq": frame["seq"]},
            sort_keys=True, separators=(",", ":"),
        )
        assert frame["crc"] == zlib.crc32(payload.encode("utf-8"))
