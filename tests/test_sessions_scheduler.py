"""Tests for the deficit-round-robin fair-share scheduler."""

import pytest

from repro.errors import SessionError
from repro.sessions import DEFICIT_CAP, DeficitRoundRobin, jains_index


def serve_counts(drr, eligible, turns):
    counts = {sid: 0 for sid in eligible}
    for _ in range(turns):
        sid = drr.select(set(eligible))
        if sid is not None:
            counts[sid] += 1
    return counts


class TestBasics:
    def test_equal_weights_round_robin(self):
        drr = DeficitRoundRobin()
        for sid in "abc":
            drr.add(sid)
        counts = serve_counts(drr, {"a", "b", "c"}, 30)
        assert counts == {"a": 10, "b": 10, "c": 10}

    def test_empty_or_no_eligible(self):
        drr = DeficitRoundRobin()
        assert drr.select({"x"}) is None
        drr.add("a")
        assert drr.select(set()) is None

    def test_duplicate_add_rejected(self):
        drr = DeficitRoundRobin()
        drr.add("a")
        with pytest.raises(SessionError):
            drr.add("a")

    def test_invalid_weight_and_quantum(self):
        with pytest.raises(SessionError):
            DeficitRoundRobin(quantum=0)
        drr = DeficitRoundRobin()
        with pytest.raises(SessionError):
            drr.add("a", weight=0)

    def test_remove_is_idempotent(self):
        drr = DeficitRoundRobin()
        drr.add("a")
        drr.remove("a")
        drr.remove("a")
        assert "a" not in drr
        assert drr.select({"a"}) is None


class TestWeighted:
    def test_throughput_proportional_to_weight(self):
        drr = DeficitRoundRobin()
        drr.add("heavy", weight=3.0)
        drr.add("light", weight=1.0)
        counts = serve_counts(drr, {"heavy", "light"}, 200)
        ratio = counts["heavy"] / counts["light"]
        assert 2.5 <= ratio <= 3.5

    def test_equal_weight_fairness_jain(self):
        drr = DeficitRoundRobin()
        for i in range(5):
            drr.add(f"s{i}")
        counts = serve_counts(drr, {f"s{i}" for i in range(5)}, 500)
        assert jains_index(counts.values()) >= 0.99

    def test_ineligible_session_not_served(self):
        drr = DeficitRoundRobin()
        drr.add("a")
        drr.add("b")
        counts = serve_counts(drr, {"a"}, 10)
        assert counts == {"a": 10}

    def test_deficit_capped(self):
        """A long-ineligible session cannot bank an unbounded burst."""
        drr = DeficitRoundRobin()
        drr.add("a", weight=1.0)
        drr.add("b", weight=4.0)
        # 'a' is eligible but outweighed for many turns; its deficit
        # accrues fractionally and must stay <= the cap.
        for _ in range(100):
            drr.select({"a", "b"})
        assert drr.deficit("a") <= DEFICIT_CAP

    def test_refund_restores_a_turn(self):
        drr = DeficitRoundRobin()
        drr.add("a")
        assert drr.select({"a"}) == "a"
        drr.refund("a")
        # refunded credit means the next select serves immediately
        assert drr.select({"a"}) == "a"

    def test_snapshot(self):
        drr = DeficitRoundRobin()
        drr.add("a", weight=2.0)
        snap = drr.snapshot()
        assert snap["order"] == ["a"]
        assert snap["weights"] == {"a": 2.0}


class TestJainsIndex:
    def test_perfectly_fair(self):
        assert jains_index([5, 5, 5]) == pytest.approx(1.0)

    def test_monopoly(self):
        assert jains_index([12, 0, 0]) == pytest.approx(1 / 3)

    def test_empty_and_zero(self):
        assert jains_index([]) == 1.0
        assert jains_index([0, 0]) == 1.0
