"""Tests for input-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_1d,
    check_fraction,
    check_positive,
    check_probability_vector,
    check_same_length,
)


class TestCheck1d:
    def test_list_coerced(self):
        out = check_1d([1, 2, 3])
        assert out.dtype == float and out.shape == (3,)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            check_1d([[1, 2]])

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="myarr"):
            check_1d([[1]], "myarr")


class TestCheckSameLength:
    def test_ok(self):
        a, b = check_same_length([1, 2], [3, 4])
        assert a.shape == b.shape

    def test_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            check_same_length([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_same_length([], [])


class TestCheckPositive:
    def test_strict(self):
        assert check_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_non_strict_allows_zero(self):
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1, strict=False)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("nan"))


class TestCheckFraction:
    def test_open_interval(self):
        assert check_fraction(0.5) == 0.5
        with pytest.raises(ValueError):
            check_fraction(0.0)
        with pytest.raises(ValueError):
            check_fraction(1.0)

    def test_closed_interval(self):
        assert check_fraction(0.0, closed=True) == 0.0
        assert check_fraction(1.0, closed=True) == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.1, closed=True)


class TestCheckProbabilityVector:
    def test_valid(self):
        p = check_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector([-0.1, 1.1])

    def test_sum_enforced(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector([0.2, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector([])

    def test_tiny_negatives_clipped(self):
        p = check_probability_vector([1.0 + 1e-12, -1e-12])
        assert (p >= 0).all()
