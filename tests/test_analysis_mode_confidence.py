"""Tests for the mode-confidence analysis (Section IV-C claim)."""

import numpy as np
import pytest

from repro.analysis.decoding import StepCandidates, enumerate_value_decodings
from repro.analysis.distributions import mode_confidence
from repro.errors import AnalysisError


def _alts(first_tokens, first_logits):
    steps = [
        StepCandidates(tuple(first_tokens), np.asarray(first_logits, float), 0),
        StepCandidates((".",), np.zeros(1), 0),
        StepCandidates(("7",), np.zeros(1), 0),
        StepCandidates(("\n",), np.zeros(1), 0),
    ]
    return enumerate_value_decodings(steps)


class TestModeConfidence:
    def test_top_mode_closest(self):
        # mode '1.7' has more mass; truth 1.7 -> top mode is the closest
        alts = _alts(["1", "2"], [2.0, 0.0])
        is_top, margin = mode_confidence(alts, truth=1.7)
        assert is_top
        assert margin > 0

    def test_top_mode_not_closest(self):
        # mass favors '2.7' but truth is 1.7
        alts = _alts(["1", "2"], [0.0, 2.0])
        is_top, margin = mode_confidence(alts, truth=1.7)
        assert not is_top

    def test_unimodal(self):
        alts = _alts(["1"], [0.0])
        is_top, margin = mode_confidence(alts, truth=9.9)
        assert is_top and margin == 1.0

    def test_margin_shrinks_with_ambiguity(self):
        sharp = _alts(["1", "2"], [3.0, 0.0])
        vague = _alts(["1", "2"], [0.3, 0.0])
        assert mode_confidence(sharp, 1.7)[1] > mode_confidence(vague, 1.7)[1]

    def test_invalid_truth(self):
        alts = _alts(["1"], [0.0])
        with pytest.raises(AnalysisError):
            mode_confidence(alts, truth=0.0)

    def test_on_real_generations(self, engine, tokenizer):
        """On real LM generations the top mode is *often but not always*
        the closest one — the paper's 'not enough to resolve ambiguity'."""
        text = (
            "Performance: 1.7042\n\nPerformance: 2.7231\n\n"
            "Performance: 1.7198\n\nPerformance:"
        )
        ids = np.asarray(tokenizer.encode(text))
        hits = 0
        n = 0
        for seed in range(10):
            trace = engine.generate(ids, seed=seed)
            region = trace.value_region(tokenizer.vocab)
            if not region:
                continue
            alts = enumerate_value_decodings(region, max_candidates=100)
            if len(alts.candidates) < 2:
                continue
            is_top, _ = mode_confidence(alts, truth=1.71)
            hits += is_top
            n += 1
        assert n > 0
        assert hits >= n // 2  # often right...
