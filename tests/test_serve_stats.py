"""Tests for service metrics: percentiles, throughput, occupancy, render."""

import pytest

from repro.serve.stats import ServiceStats, StatsRecorder


def make_stats(**overrides) -> ServiceStats:
    base = dict(
        n_submitted=10, n_completed=10, n_failed=0, n_rejected=0,
        n_timeouts=0, n_batches=2, max_batch_size=8, mean_batch_size=5.0,
        p50_latency_s=0.010, p95_latency_s=0.050, throughput_rps=100.0,
        prepare_hits=3, prepare_misses=1, result_hits=6, result_misses=4,
    )
    base.update(overrides)
    return ServiceStats(**base)


class TestServiceStats:
    def test_batch_occupancy(self):
        assert make_stats().batch_occupancy == pytest.approx(5.0 / 8.0)

    def test_occupancy_guard(self):
        assert make_stats(max_batch_size=0).batch_occupancy == 0.0

    def test_hit_rates(self):
        s = make_stats()
        assert s.prepare_hit_rate == pytest.approx(0.75)
        assert s.result_hit_rate == pytest.approx(0.6)

    def test_hit_rates_no_traffic(self):
        s = make_stats(
            prepare_hits=0, prepare_misses=0, result_hits=0, result_misses=0
        )
        assert s.prepare_hit_rate == 0.0 and s.result_hit_rate == 0.0

    def test_render_contains_key_metrics(self):
        out = make_stats().render(title="svc")
        assert "svc" in out
        assert "p95 latency" in out
        assert "result-cache hit rate" in out
        assert "60%" in out
        assert "batch occupancy" in out

    def test_availability_no_traffic_is_perfect(self):
        s = make_stats()
        assert s.n_logical == 0
        assert s.availability == 1.0
        assert s.degraded_rate == 0.0

    def test_availability_counts_degraded_as_served(self):
        s = make_stats(n_logical=10, n_degraded=3, n_unavailable=1)
        assert s.availability == pytest.approx(0.9)
        assert s.degraded_rate == pytest.approx(0.3)

    def test_render_includes_resilience_rows_when_present(self):
        s = make_stats(
            n_logical=10, n_retries=4, n_breaker_trips=1,
            n_degraded=2, n_unavailable=0, n_late_discards=1,
        )
        out = s.render()
        assert "late completions discarded" in out
        assert "retries" in out
        assert "breaker trips" in out
        assert "degraded-serve rate" in out
        assert "availability" in out
        assert "100.00%" in out

    def test_render_omits_resilience_rows_without_logical_traffic(self):
        out = make_stats().render()
        assert "availability" not in out
        assert "breaker trips" not in out
        # The late-discard row is unconditional (it is a base-service
        # leak counter, not a resilience-wrapper one).
        assert "late completions discarded" in out


class TestStatsRecorder:
    def test_latency_percentiles_exact(self):
        r = StatsRecorder(max_batch_size=4)
        for ms in range(1, 101):      # 1..100 ms
            r.record_submit()
            r.record_done(ms / 1000.0)
        s = r.snapshot()
        assert s.n_completed == 100
        assert s.p50_latency_s == pytest.approx(0.0505, abs=1e-3)
        assert s.p95_latency_s == pytest.approx(0.09505, abs=1e-3)

    def test_counters(self):
        r = StatsRecorder(max_batch_size=8)
        r.record_submit()
        r.record_submit()
        r.record_reject()
        r.record_timeout()
        r.record_batch(2)
        r.record_done(0.01)
        r.record_failed()
        s = r.snapshot(prepare_hits=1, prepare_misses=2,
                       result_hits=3, result_misses=4)
        assert s.n_submitted == 2
        assert s.n_rejected == 1
        assert s.n_timeouts == 1
        assert s.n_completed == 1
        assert s.n_failed == 1
        assert s.n_batches == 1 and s.mean_batch_size == 2.0
        assert (s.prepare_hits, s.result_misses) == (1, 4)

    def test_closed_rejects_split_from_overload(self):
        r = StatsRecorder(max_batch_size=8)
        r.record_reject()
        r.record_closed_reject()
        r.record_closed_reject()
        s = r.snapshot()
        assert s.n_rejected == 1
        assert s.n_closed_rejects == 2
        out = s.render()
        assert "requests rejected (overload)" in out
        assert "requests rejected (closed)" in out

    def test_record_failed_leaves_latency_samples_clean(self):
        r = StatsRecorder(max_batch_size=8)
        r.record_submit()
        r.record_done(0.100)
        r.record_failed()
        r.record_failed()
        s = r.snapshot()
        assert s.n_completed == 1
        assert s.n_failed == 2
        # Failures used to force a bogus 0.0 latency sample through the
        # old record_done(0.0, failed=True) API; the percentiles must
        # reflect only genuine completions.
        assert s.p50_latency_s == pytest.approx(0.100)
        # Failures still advance the busy window, so throughput has a
        # denominator even when the last event was a failure.
        assert s.throughput_rps > 0.0

    def test_empty_snapshot(self):
        s = StatsRecorder(max_batch_size=8).snapshot()
        assert s.n_completed == 0
        assert s.p50_latency_s == 0.0 and s.p95_latency_s == 0.0
        assert s.throughput_rps == 0.0
        assert s.mean_batch_size == 0.0

    def test_throughput_positive_after_traffic(self):
        r = StatsRecorder(max_batch_size=1)
        r.record_submit()
        r.record_done(0.001)
        assert r.snapshot().throughput_rps > 0.0

    def test_resilience_counters(self):
        r = StatsRecorder(max_batch_size=8)
        for _ in range(5):
            r.record_logical()
        r.record_retry()
        r.record_retry()
        r.record_breaker_trip()
        r.record_degraded()
        r.record_unavailable()
        r.record_late_discard()
        s = r.snapshot()
        assert s.n_logical == 5
        assert s.n_retries == 2
        assert s.n_breaker_trips == 1
        assert s.n_degraded == 1
        assert s.n_unavailable == 1
        assert s.n_late_discards == 1
        assert s.availability == pytest.approx(0.8)
        assert s.degraded_rate == pytest.approx(0.2)
