"""Tests for the consolidated full-text report."""

import pytest

from repro.analysis.report import FullReport, analyze_grid
from repro.core import quick_grid, run_grid
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def probes():
    return run_grid(
        quick_grid(
            sizes=("SM",), icl_counts=(5, 20), n_sets=2, seeds=(1,),
            n_queries=3,
        ),
        workers=1,
    )


class TestAnalyzeGrid:
    def test_full_report(self, probes):
        report = analyze_grid(probes, max_candidates=100)
        assert isinstance(report, FullReport)
        assert report.quality.parse_rate > 0.8
        assert report.position_rows[1].mean_possibilities < 3
        assert report.haystack.n > 0

    def test_render_contains_sections(self, probes):
        text = analyze_grid(probes, max_candidates=100).render()
        assert "Prediction quality (IV-A)" in text
        assert "Table II" in text
        assert "Needles in a haystack" in text

    def test_optimal_dominates_sampled(self, probes):
        report = analyze_grid(probes, max_candidates=100)
        for b in report.haystack.bounds:
            assert report.haystack.optimal[b] >= report.haystack.sampled[b] - 1e-9

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_grid([])
